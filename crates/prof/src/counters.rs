//! Named event counters (errors, retries, fault events).
//!
//! The region timers in this crate answer "where did the time go"; the
//! counters answer "how often did X happen" — PCIe retry attempts,
//! corrupted transfers, exhausted backoff loops. Keys are ordered
//! (`BTreeMap`) so reports and JSON renders are deterministic.

use std::collections::BTreeMap;

/// A set of named monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    counts: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Fold another counter set into this one (summing shared keys).
    pub fn merge(&mut self, other: &Counters) {
        for (k, &v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Render as a stable JSON object (keys sorted).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", crate::value::escape_json(k)));
        }
        s.push('}');
        s
    }

    /// Parse the flat-object format produced by [`Counters::to_json`]
    /// (and embedded as the `"counters"` section of `check_report.json`).
    /// Strict: non-object input, non-integer values, or malformed JSON
    /// are an `Err` — consumers like `mcs-bench trend` must distinguish
    /// "no counters" from "corrupt counters".
    pub fn from_json(text: &str) -> Result<Counters, String> {
        Self::from_value(&crate::value::JsonValue::parse(text)?)
    }

    /// Build a counter set from an already-parsed JSON object node.
    pub fn from_value(v: &crate::value::JsonValue) -> Result<Counters, String> {
        let obj = v.as_object().ok_or("counters section is not an object")?;
        let mut c = Counters::new();
        for (k, v) in obj {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter {k:?} is not a non-negative integer"))?;
            c.add(k, n);
        }
        Ok(c)
    }

    /// Counters whose name starts with `prefix`, in key order.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("pcie.retries"), 0);
        c.incr("pcie.retries");
        c.add("pcie.retries", 2);
        assert_eq!(c.get("pcie.retries"), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 10);
        let mut b = Counters::new();
        b.add("y", 5);
        b.add("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 15);
        assert_eq!(a.get("z"), 7);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        assert_eq!(c.to_json(), "{\"a\": 1, \"b\": 2}");
        assert_eq!(Counters::new().to_json(), "{}");
    }

    #[test]
    fn json_round_trips() {
        let mut c = Counters::new();
        c.add("xs.lookups", 585_733);
        c.add("xs.gather_span_bytes", 22_478_806_592);
        let back = Counters::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
        assert_eq!(Counters::from_json("{}").unwrap(), Counters::new());
    }

    #[test]
    fn from_json_rejects_corruption() {
        assert!(Counters::from_json("not json").is_err());
        assert!(Counters::from_json("[1, 2]").is_err());
        assert!(Counters::from_json("{\"a\": -1}").is_err());
        assert!(Counters::from_json("{\"a\": 1.5}").is_err());
        assert!(Counters::from_json("{\"a\": 1").is_err());
    }

    #[test]
    fn prefix_filter_selects_namespace() {
        let mut c = Counters::new();
        c.add("xs.lookups", 1);
        c.add("xs.index_bytes", 2);
        c.add("pcie.retries", 3);
        let xs: Vec<&str> = c.with_prefix("xs.").map(|(k, _)| k).collect();
        assert_eq!(xs, vec!["xs.index_bytes", "xs.lookups"]);
    }

    #[test]
    fn iter_in_key_order() {
        let mut c = Counters::new();
        c.add("zz", 1);
        c.add("aa", 2);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["aa", "zz"]);
    }
}
