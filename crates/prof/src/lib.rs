//! TAU-like instrumentation for the transport engine.
//!
//! The paper attributes time to routines (`calculate_xs()` and friends)
//! with the TAU parallel performance system, then compares host and MIC
//! profiles side by side (Fig. 4). This crate provides the same mechanics:
//!
//! * [`ThreadProfiler`] — a per-thread timer with a region stack, so both
//!   *inclusive* and *exclusive* times are attributed correctly when
//!   regions nest (e.g. `calculate_xs` inside `transport_history`).
//! * [`Profile`] — merged statistics across threads, sorted reports.
//! * [`ProfileCompare`] — the two-column comparison view used by the
//!   Fig. 4 harness.
//!
//! Instrumentation is intentionally coarse-grained (whole routines, not
//! inner loops); a start/stop pair costs two `Instant::now()` calls.

//! ```
//! use mcs_prof::ThreadProfiler;
//!
//! let prof = ThreadProfiler::new();
//! {
//!     let _outer = prof.enter("transport");
//!     let _inner = prof.enter("calculate_xs");
//! }
//! let profile = prof.finish();
//! assert_eq!(profile.get("calculate_xs").unwrap().calls, 1);
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod report;
pub mod timer;
pub mod value;

pub use counters::Counters;
pub use json::ProfileSnapshot;
pub use report::{Profile, ProfileCompare, RegionStats};
pub use timer::{RegionGuard, ThreadProfiler};
pub use value::JsonValue;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nested_regions_attribute_exclusive_time() {
        let tp = ThreadProfiler::new();
        {
            let _outer = tp.enter("outer");
            std::thread::sleep(Duration::from_millis(20));
            {
                let _inner = tp.enter("inner");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        let p = tp.finish();
        let outer = p.get("outer").unwrap();
        let inner = p.get("inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.inclusive >= inner.inclusive);
        // Outer's exclusive time should be ~20ms, roughly half its
        // inclusive time; allow broad scheduling slack.
        assert!(outer.exclusive < outer.inclusive);
        assert!(outer.exclusive.as_millis() >= 10);
    }

    #[test]
    fn merged_profiles_sum_calls() {
        let a = ThreadProfiler::new();
        {
            let _g = a.enter("xs");
        }
        let b = ThreadProfiler::new();
        {
            let _g = b.enter("xs");
        }
        {
            let _g = b.enter("xs");
        }
        let mut p = a.finish();
        p.merge(&b.finish());
        assert_eq!(p.get("xs").unwrap().calls, 3);
    }
}
