//! Merged profiles and report formatting.

use std::collections::HashMap;
use std::time::Duration;

/// Accumulated statistics for one named region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Number of times the region was entered.
    pub calls: u64,
    /// Wall time including children.
    pub inclusive: Duration,
    /// Wall time excluding children.
    pub exclusive: Duration,
}

/// A merged, thread-summed profile.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    stats: HashMap<&'static str, RegionStats>,
    path_stats: HashMap<String, RegionStats>,
}

impl Profile {
    #[cfg(test)]
    pub(crate) fn from_stats(stats: HashMap<&'static str, RegionStats>) -> Self {
        Self {
            stats,
            path_stats: HashMap::new(),
        }
    }

    pub(crate) fn from_stats_with_paths(
        stats: HashMap<&'static str, RegionStats>,
        path_stats: HashMap<String, RegionStats>,
    ) -> Self {
        Self { stats, path_stats }
    }

    /// Call-path statistics ("a => b => c"), TAU's callpath view.
    pub fn path(&self, path: &str) -> Option<&RegionStats> {
        self.path_stats.get(path)
    }

    /// All call paths sorted by descending inclusive time.
    pub fn sorted_paths(&self) -> Vec<(&str, RegionStats)> {
        let mut v: Vec<_> = self
            .path_stats
            .iter()
            .map(|(k, s)| (k.as_str(), *s))
            .collect();
        v.sort_by_key(|(_, s)| std::cmp::Reverse(s.inclusive));
        v
    }

    /// Statistics for one region, if recorded.
    pub fn get(&self, name: &str) -> Option<&RegionStats> {
        self.stats.get(name)
    }

    /// Iterate all regions in unspecified order.
    pub fn regions(&self) -> impl Iterator<Item = (&'static str, &RegionStats)> {
        self.stats.iter().map(|(k, v)| (*k, v))
    }

    /// Fold another profile (e.g. another thread's) into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (name, s) in &other.stats {
            let e = self.stats.entry(name).or_default();
            e.calls += s.calls;
            e.inclusive += s.inclusive;
            e.exclusive += s.exclusive;
        }
        for (path, s) in &other.path_stats {
            let e = self.path_stats.entry(path.clone()).or_default();
            e.calls += s.calls;
            e.inclusive += s.inclusive;
            e.exclusive += s.exclusive;
        }
    }

    /// Regions sorted by descending exclusive time (TAU's default view).
    pub fn sorted_by_exclusive(&self) -> Vec<(&'static str, RegionStats)> {
        let mut v: Vec<_> = self.stats.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by_key(|(_, s)| std::cmp::Reverse(s.exclusive));
        v
    }

    /// Render a TAU-style flat profile table.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== profile: {title} ===\n"));
        out.push_str(&format!(
            "{:<32} {:>10} {:>14} {:>14}\n",
            "region", "calls", "excl (ms)", "incl (ms)"
        ));
        for (name, s) in self.sorted_by_exclusive() {
            out.push_str(&format!(
                "{:<32} {:>10} {:>14.3} {:>14.3}\n",
                name,
                s.calls,
                s.exclusive.as_secs_f64() * 1e3,
                s.inclusive.as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

/// Side-by-side comparison of two profiles (the Fig. 4 view: host CPU vs
/// MIC native).
#[derive(Debug, Clone)]
pub struct ProfileCompare {
    label_a: String,
    label_b: String,
    a: Profile,
    b: Profile,
}

impl ProfileCompare {
    /// Pair two profiles under display labels.
    pub fn new(label_a: &str, a: Profile, label_b: &str, b: Profile) -> Self {
        Self {
            label_a: label_a.to_string(),
            label_b: label_b.to_string(),
            a,
            b,
        }
    }

    /// Rows: (region, exclusive_a, exclusive_b, ratio b/a), union of both
    /// profiles, sorted by descending `exclusive_a`.
    pub fn rows(&self) -> Vec<(&'static str, Duration, Duration, f64)> {
        let mut names: Vec<&'static str> = self
            .a
            .regions()
            .map(|(n, _)| n)
            .chain(self.b.regions().map(|(n, _)| n))
            .collect();
        names.sort_unstable();
        names.dedup();
        let mut rows: Vec<_> = names
            .into_iter()
            .map(|n| {
                let ta = self.a.get(n).map(|s| s.exclusive).unwrap_or_default();
                let tb = self.b.get(n).map(|s| s.exclusive).unwrap_or_default();
                let ratio = if ta.as_nanos() > 0 {
                    tb.as_secs_f64() / ta.as_secs_f64()
                } else {
                    f64::INFINITY
                };
                (n, ta, tb, ratio)
            })
            .collect();
        rows.sort_by_key(|&(_, ta, _, _)| std::cmp::Reverse(ta));
        rows
    }

    /// Render the two-column comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>14} {:>14} {:>8}\n",
            "region",
            format!("{} (ms)", self.label_a),
            format!("{} (ms)", self.label_b),
            "ratio"
        ));
        for (name, ta, tb, ratio) in self.rows() {
            out.push_str(&format!(
                "{:<32} {:>14.3} {:>14.3} {:>8.3}\n",
                name,
                ta.as_secs_f64() * 1e3,
                tb.as_secs_f64() * 1e3,
                ratio
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(entries: &[(&'static str, u64, u64)]) -> Profile {
        // (name, exclusive_ms, inclusive_ms)
        let mut m = HashMap::new();
        for &(n, e, i) in entries {
            m.insert(
                n,
                RegionStats {
                    calls: 1,
                    exclusive: Duration::from_millis(e),
                    inclusive: Duration::from_millis(i),
                },
            );
        }
        Profile::from_stats(m)
    }

    #[test]
    fn sort_by_exclusive_descends() {
        let p = profile_with(&[("a", 5, 5), ("b", 50, 50), ("c", 1, 1)]);
        let v = p.sorted_by_exclusive();
        assert_eq!(v[0].0, "b");
        assert_eq!(v[2].0, "c");
    }

    #[test]
    fn merge_sums_fields() {
        let mut p = profile_with(&[("a", 5, 10)]);
        p.merge(&profile_with(&[("a", 7, 14), ("b", 1, 1)]));
        let a = p.get("a").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.exclusive, Duration::from_millis(12));
        assert_eq!(a.inclusive, Duration::from_millis(24));
        assert!(p.get("b").is_some());
    }

    #[test]
    fn merge_is_associative() {
        let a = profile_with(&[("xs", 5, 10), ("tally", 1, 1)]);
        let b = profile_with(&[("xs", 7, 14), ("geom", 2, 3)]);
        let c = profile_with(&[("geom", 4, 4), ("rng", 9, 9)]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        let mut ls = left.snapshot();
        let mut rs = right.snapshot();
        ls.regions.sort_by(|x, y| x.0.cmp(&y.0));
        rs.regions.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(ls, rs);
        assert_eq!(left.get("geom").unwrap().calls, 2);
        assert_eq!(left.get("xs").unwrap().exclusive, Duration::from_millis(12));
    }

    #[test]
    fn merge_identity_is_empty_profile() {
        let a = profile_with(&[("xs", 5, 10)]);
        let mut merged = a.clone();
        merged.merge(&Profile::default());
        assert_eq!(merged.snapshot(), a.snapshot());
    }

    #[test]
    fn sorted_by_exclusive_is_total_descending_order() {
        let p = profile_with(&[("a", 3, 3), ("b", 50, 50), ("c", 1, 1), ("d", 17, 17)]);
        let v = p.sorted_by_exclusive();
        assert_eq!(v.len(), 4);
        for w in v.windows(2) {
            assert!(
                w[0].1.exclusive >= w[1].1.exclusive,
                "{} before {} but {:?} < {:?}",
                w[0].0,
                w[1].0,
                w[0].1.exclusive,
                w[1].1.exclusive
            );
        }
        assert_eq!(v[0].0, "b");
        assert_eq!(v[3].0, "c");
    }

    #[test]
    fn compare_rows_union_and_ratio() {
        let a = profile_with(&[("xs", 100, 100), ("tally", 10, 10)]);
        let b = profile_with(&[("xs", 50, 50), ("new_region", 5, 5)]);
        let cmp = ProfileCompare::new("cpu", a, "mic", b);
        let rows = cmp.rows();
        assert_eq!(rows.len(), 3);
        let xs = rows.iter().find(|r| r.0 == "xs").unwrap();
        assert!((xs.3 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn render_contains_regions() {
        let p = profile_with(&[("calculate_xs", 10, 10)]);
        let s = p.render("host");
        assert!(s.contains("calculate_xs"));
        assert!(s.contains("host"));
    }
}
