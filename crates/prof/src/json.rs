//! JSON serialization of profiles.
//!
//! `mcs-check` embeds measured profiles in its machine-readable
//! `check_report.json`, so [`crate::Profile`] needs a stable,
//! dependency-free wire format. [`ProfileSnapshot`] is the owned
//! (String-keyed) mirror of a `Profile`; it serializes to a small JSON
//! object and parses back exactly, so round-tripping is lossless:
//!
//! ```
//! use mcs_prof::{ProfileSnapshot, ThreadProfiler};
//!
//! let tp = ThreadProfiler::new();
//! {
//!     let _g = tp.enter("xs");
//! }
//! let snap = tp.finish().snapshot();
//! let back = ProfileSnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(snap, back);
//! ```
//!
//! Durations travel as integer nanoseconds (`u128` in memory, emitted as
//! a JSON number), which keeps the round trip bit-exact.

use std::time::Duration;

use crate::report::{Profile, RegionStats};

/// An owned, serializable snapshot of a [`Profile`].
///
/// Region and call-path entries are sorted by name so the JSON output is
/// deterministic across runs and platforms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Flat per-region statistics, sorted by region name.
    pub regions: Vec<(String, RegionStats)>,
    /// Call-path ("a => b") statistics, sorted by path.
    pub paths: Vec<(String, RegionStats)>,
}

impl Profile {
    /// An owned snapshot suitable for serialization.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut regions: Vec<(String, RegionStats)> = self
            .regions()
            .map(|(name, s)| (name.to_string(), *s))
            .collect();
        regions.sort_by(|a, b| a.0.cmp(&b.0));
        let mut paths: Vec<(String, RegionStats)> = self
            .sorted_paths()
            .into_iter()
            .map(|(p, s)| (p.to_string(), s))
            .collect();
        paths.sort_by(|a, b| a.0.cmp(&b.0));
        ProfileSnapshot { regions, paths }
    }

    /// Serialize to the snapshot JSON format.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stats_json(s: &RegionStats) -> String {
    format!(
        "{{\"calls\": {}, \"exclusive_ns\": {}, \"inclusive_ns\": {}}}",
        s.calls,
        s.exclusive.as_nanos(),
        s.inclusive.as_nanos()
    )
}

fn section_json(entries: &[(String, RegionStats)], indent: &str) -> String {
    if entries.is_empty() {
        return "{}".to_string();
    }
    let body: Vec<String> = entries
        .iter()
        .map(|(name, s)| format!("{indent}  \"{}\": {}", escape(name), stats_json(s)))
        .collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

impl ProfileSnapshot {
    /// Serialize as a two-section JSON object (`regions`, `paths`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"regions\": {},\n  \"paths\": {}\n}}",
            section_json(&self.regions, "  "),
            section_json(&self.paths, "  ")
        )
    }

    /// Parse the format produced by [`ProfileSnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<ProfileSnapshot, String> {
        let mut p = Parser::new(text);
        p.skip_ws();
        p.expect('{')?;
        let mut snap = ProfileSnapshot::default();
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            let entries = p.stats_map()?;
            match key.as_str() {
                "regions" => snap.regions = entries,
                "paths" => snap.paths = entries,
                other => return Err(format!("unknown section {other:?}")),
            }
            p.skip_ws();
            if !p.eat(',') {
                p.skip_ws();
                p.expect('}')?;
                break;
            }
        }
        snap.regions.sort_by(|a, b| a.0.cmp(&b.0));
        snap.paths.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(snap)
    }
}

/// Minimal recursive-descent parser for the snapshot's own JSON subset
/// (string keys, unsigned-integer values, no nesting beyond two levels).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at byte {} (found {:?})",
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("bad escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<u128, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }

    fn stats(&mut self) -> Result<RegionStats, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut s = RegionStats::default();
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let v = self.number()?;
            match key.as_str() {
                "calls" => s.calls = v as u64,
                "exclusive_ns" => s.exclusive = duration_from_nanos(v),
                "inclusive_ns" => s.inclusive = duration_from_nanos(v),
                other => return Err(format!("unknown stats field {other:?}")),
            }
            self.skip_ws();
            if !self.eat(',') {
                self.skip_ws();
                self.expect('}')?;
                break;
            }
        }
        Ok(s)
    }

    fn stats_map(&mut self) -> Result<Vec<(String, RegionStats)>, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let name = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let s = self.stats()?;
            out.push((name, s));
            self.skip_ws();
            if !self.eat(',') {
                self.skip_ws();
                self.expect('}')?;
                break;
            }
        }
        Ok(out)
    }
}

fn duration_from_nanos(n: u128) -> Duration {
    let secs = (n / 1_000_000_000) as u64;
    let nanos = (n % 1_000_000_000) as u32;
    Duration::new(secs, nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> ProfileSnapshot {
        ProfileSnapshot {
            regions: vec![
                (
                    "calculate_xs".to_string(),
                    RegionStats {
                        calls: 42,
                        exclusive: Duration::new(3, 141_592_653),
                        inclusive: Duration::new(4, 0),
                    },
                ),
                (
                    "weird \"name\"\n".to_string(),
                    RegionStats {
                        calls: 1,
                        exclusive: Duration::from_nanos(7),
                        inclusive: Duration::from_nanos(9),
                    },
                ),
            ],
            paths: vec![(
                "transport => calculate_xs".to_string(),
                RegionStats {
                    calls: 42,
                    exclusive: Duration::from_millis(5),
                    inclusive: Duration::from_millis(5),
                },
            )],
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let s = snap();
        let back = ProfileSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn empty_profile_round_trips() {
        let s = ProfileSnapshot::default();
        assert_eq!(ProfileSnapshot::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn live_profile_serializes() {
        let tp = crate::ThreadProfiler::new();
        {
            let _outer = tp.enter("outer");
            let _inner = tp.enter("inner");
        }
        let p = tp.finish();
        let back = ProfileSnapshot::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p.snapshot());
        assert_eq!(back.regions.len(), 2);
        assert!(back.paths.iter().any(|(p, _)| p.contains("=>")));
    }

    #[test]
    fn rejects_garbage() {
        assert!(ProfileSnapshot::from_json("not json").is_err());
        assert!(ProfileSnapshot::from_json("{\"regions\": {\"a\": {\"calls\": }}}").is_err());
        assert!(ProfileSnapshot::from_json("{\"bogus\": {}}").is_err());
    }
}
