//! A minimal generic JSON value tree and strict parser.
//!
//! The workspace's machine-readable artifacts (`results/BENCH_*.json`,
//! `check_report.json`, the trend history/report) are all hand-rolled
//! JSON written without serde, and the consumers that read them back
//! (`mcs-bench trend`, tests) need a real parser rather than string
//! scraping. [`JsonValue::parse`] accepts standard JSON and is *strict*:
//! trailing garbage, truncated input, unknown escapes, or malformed
//! numbers are an `Err`, never a panic — corrupt trend history must
//! surface as a hard failure.
//!
//! Numbers are held as `f64` (every producer in this workspace emits
//! counts well under 2^53, where `f64` is exact); [`JsonValue::as_u64`]
//! re-checks integrality on the way out.

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys are held sorted (`BTreeMap`) so traversal is
    /// deterministic regardless of wire order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member by key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Object(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(JsonValue::Object(m));
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Array(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(JsonValue::Array(v));
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("bad escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        self.eat(b'-');
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.peek().is_some_and(|b| b == b'e' || b == b'E') {
            self.pos += 1;
            if self.peek().is_some_and(|b| b == b'+' || b == b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(JsonValue::Num(n))
    }
}

/// Escape a string for embedding in hand-rolled JSON output.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let v = JsonValue::parse(
            r#"{"bench": "grid_backend", "mcs_scale": 0.1, "ok": true,
               "samples": [{"backend": "hash", "bank": 1000,
                            "rate": 5.8856e5, "neg": -2}], "none": null}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("bench").and_then(JsonValue::as_str),
            Some("grid_backend")
        );
        assert_eq!(v.get("mcs_scale").and_then(JsonValue::as_f64), Some(0.1));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        let s = &v.get("samples").and_then(JsonValue::as_array).unwrap()[0];
        assert_eq!(s.get("bank").and_then(JsonValue::as_u64), Some(1000));
        assert_eq!(s.get("rate").and_then(JsonValue::as_f64), Some(588560.0));
        assert_eq!(s.get("neg").and_then(JsonValue::as_f64), Some(-2.0));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_truncated_and_trailing() {
        assert!(JsonValue::parse("{\"a\": 1").is_err());
        assert!(JsonValue::parse("{\"a\": 1} extra").is_err());
        assert!(JsonValue::parse("[1, 2,").is_err());
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{\"a\": tru}").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn u64_integrality_is_checked() {
        assert_eq!(JsonValue::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(JsonValue::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-7").unwrap().as_u64(), None);
        // Counter-scale values stay exact.
        assert_eq!(
            JsonValue::parse("22478806592").unwrap().as_u64(),
            Some(22_478_806_592)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = JsonValue::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }

    #[test]
    fn object_keys_sorted_deterministically() {
        let v = JsonValue::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["a", "z"]);
    }
}
