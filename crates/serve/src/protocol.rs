//! The newline-delimited line protocol.
//!
//! One JSON object per line, both directions. Requests carry the plan
//! as an embedded TOML string (the `mcs run --plan` format — the
//! service speaks exactly the serialization the CLI already writes);
//! responses are tagged by an `event` field. All full-width 64-bit
//! values (plan hashes, float bit patterns) travel as fixed-width hex
//! strings because JSON numbers cannot represent a full `u64`; counter
//! fields (ids, tallies, statistics) ride as plain JSON numbers and
//! are exact below 2^53, far beyond any real session.
//!
//! Decoding never panics: any malformed frame — truncated JSON,
//! garbage bytes, a well-formed object missing fields, an embedded
//! plan that fails TOML validation — maps to a typed [`ProtoError`],
//! mirroring the trend pipeline's `TrendError::Corrupt` discipline.

use mcs_core::engine::RunPlan;
use mcs_prof::value::{escape_json, JsonValue};

use std::fmt;
use std::sync::Arc;

use crate::hash::{hash_hex, parse_hash_hex};
use crate::result::ServedResult;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line is not valid JSON at all (truncated frame, garbage).
    Corrupt {
        /// Parser diagnostic.
        detail: String,
    },
    /// Valid JSON, but not a valid message (unknown command/event,
    /// missing or mistyped field).
    Invalid {
        /// What was wrong.
        detail: String,
    },
    /// The embedded plan TOML failed to parse or validate.
    BadPlan {
        /// The plan parser's diagnostic.
        detail: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
            ProtoError::Invalid { detail } => write!(f, "invalid message: {detail}"),
            ProtoError::BadPlan { detail } => write!(f, "bad plan: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Submission priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Default class; scheduled after every queued high-priority job.
    Normal,
    /// Jumps the normal queue (but never preempts a running job).
    High,
}

impl Priority {
    /// Wire keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a plan for execution (or cache/coalesce service).
    Submit {
        /// The plan to run.
        plan: Box<RunPlan>,
        /// Scheduling class.
        priority: Priority,
        /// Stream per-batch progress events for this submission.
        progress: bool,
    },
    /// Ask for a scheduler statistics snapshot.
    Stats,
}

impl Request {
    /// Encode as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit {
                plan,
                priority,
                progress,
            } => format!(
                "{{\"cmd\":\"submit\",\"plan_toml\":\"{}\",\"priority\":\"{}\",\"progress\":{}}}",
                escape_json(&plan.to_toml()),
                priority.keyword(),
                progress
            ),
            Request::Stats => "{\"cmd\":\"stats\"}".to_string(),
        }
    }

    /// Decode one line. Never panics.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = JsonValue::parse(line).map_err(|e| ProtoError::Corrupt { detail: e })?;
        let cmd = v
            .get("cmd")
            .and_then(|c| c.as_str())
            .ok_or_else(|| ProtoError::Invalid {
                detail: "missing string field `cmd`".to_string(),
            })?;
        match cmd {
            "submit" => {
                let toml = v.get("plan_toml").and_then(|p| p.as_str()).ok_or_else(|| {
                    ProtoError::Invalid {
                        detail: "submit: missing string field `plan_toml`".to_string(),
                    }
                })?;
                let plan = RunPlan::from_toml(toml).map_err(|e| ProtoError::BadPlan {
                    detail: e.to_string(),
                })?;
                let priority = match v.get("priority").and_then(|p| p.as_str()) {
                    None | Some("normal") => Priority::Normal,
                    Some("high") => Priority::High,
                    Some(other) => {
                        return Err(ProtoError::Invalid {
                            detail: format!("submit: unknown priority \"{other}\""),
                        })
                    }
                };
                let progress = match v.get("progress") {
                    None => false,
                    Some(p) => p.as_bool().ok_or_else(|| ProtoError::Invalid {
                        detail: "submit: `progress` must be a boolean".to_string(),
                    })?,
                };
                Ok(Request::Submit {
                    plan: Box::new(plan),
                    priority,
                    progress,
                })
            }
            "stats" => Ok(Request::Stats),
            other => Err(ProtoError::Invalid {
                detail: format!("unknown cmd \"{other}\""),
            }),
        }
    }
}

/// How an accepted submission will be (or was) served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Answered from the result cache; no execution.
    Cache,
    /// Attached to an identical in-flight job; no new execution.
    Coalesced,
    /// Queued for a cold run.
    Scheduled,
    /// The result of a cold run this submission triggered or joined.
    Run,
}

impl Source {
    /// Wire keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Source::Cache => "cache",
            Source::Coalesced => "coalesced",
            Source::Scheduled => "scheduled",
            Source::Run => "run",
        }
    }

    fn from_keyword(s: &str) -> Option<Source> {
        match s {
            "cache" => Some(Source::Cache),
            "coalesced" => Some(Source::Coalesced),
            "scheduled" => Some(Source::Scheduled),
            "run" => Some(Source::Run),
            _ => None,
        }
    }
}

/// Why a submission was refused. Typed — admission control is part of
/// the API, not an error string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is full; resubmit later.
    QueueFull {
        /// Jobs queued at decision time.
        queued: u64,
        /// The configured admission cap.
        cap: u64,
    },
    /// The scheduler is draining for shutdown; only cache hits are
    /// still served.
    Draining,
    /// The service cannot run this plan (e.g. fixed-source mode).
    Unsupported {
        /// What was unsupported.
        detail: String,
    },
}

impl RejectReason {
    fn keyword(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::Draining => "draining",
            RejectReason::Unsupported { .. } => "unsupported",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { queued, cap } => {
                write!(f, "queue full ({queued} queued, cap {cap})")
            }
            RejectReason::Draining => write!(f, "scheduler draining"),
            RejectReason::Unsupported { detail } => write!(f, "unsupported: {detail}"),
        }
    }
}

/// A point-in-time scheduler statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total submissions seen (accepted or rejected).
    pub submitted: u64,
    /// Submissions answered straight from the cache.
    pub cache_hits: u64,
    /// Submissions attached to an identical in-flight job.
    pub coalesced: u64,
    /// Cold engine executions started.
    pub cold_runs: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Jobs queued right now.
    pub queued: u64,
    /// Jobs executing right now.
    pub running: u64,
    /// Results resident in the cache.
    pub cache_entries: u64,
    /// Cross-section lookups performed by the service's shared
    /// `XsContext`s (cumulative; evicted problems keep their count).
    pub xs_lookups: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submission was admitted; a `Result` event will follow.
    Accepted {
        /// Connection-local submission id (assigned in submit order).
        id: u64,
        /// Canonical plan hash.
        plan_hash: u64,
        /// How it will be served.
        source: Source,
    },
    /// The submission was refused; no further events for this id.
    Rejected {
        /// Connection-local submission id.
        id: u64,
        /// Typed refusal.
        reason: RejectReason,
    },
    /// One batch of the job backing this submission completed.
    Progress {
        /// Connection-local submission id.
        id: u64,
        /// Batches completed so far.
        completed: u64,
        /// Total batches of the plan.
        total: u64,
        /// Whether the batch was active (tallied).
        active: bool,
        /// Track-length k of the batch, as IEEE-754 bits.
        k_bits: u64,
        /// Shannon entropy of the batch, as bits.
        entropy_bits: u64,
    },
    /// The submission's final result.
    Result {
        /// Connection-local submission id.
        id: u64,
        /// `Cache` for a hit, `Run` for a fresh (or joined) execution.
        source: Source,
        /// The deterministic result record.
        result: Arc<ServedResult>,
    },
    /// Statistics snapshot (answers a `stats` request).
    Stats(StatsSnapshot),
    /// The previous line could not be decoded.
    Error {
        /// Diagnostic.
        detail: String,
    },
}

impl Response {
    /// Encode as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Accepted {
                id,
                plan_hash,
                source,
            } => format!(
                "{{\"event\":\"accepted\",\"id\":{},\"plan_hash\":\"{}\",\"source\":\"{}\"}}",
                id,
                hash_hex(*plan_hash),
                source.keyword()
            ),
            Response::Rejected { id, reason } => {
                let extra = match reason {
                    RejectReason::QueueFull { queued, cap } => {
                        format!(",\"queued\":{queued},\"cap\":{cap}")
                    }
                    RejectReason::Draining => String::new(),
                    RejectReason::Unsupported { detail } => {
                        format!(",\"detail\":\"{}\"", escape_json(detail))
                    }
                };
                format!(
                    "{{\"event\":\"rejected\",\"id\":{},\"reason\":\"{}\"{}}}",
                    id,
                    reason.keyword(),
                    extra
                )
            }
            Response::Progress {
                id,
                completed,
                total,
                active,
                k_bits,
                entropy_bits,
            } => format!(
                concat!(
                    "{{\"event\":\"progress\",\"id\":{},\"completed\":{},",
                    "\"total\":{},\"active\":{},\"k\":\"{}\",\"entropy\":\"{}\"}}"
                ),
                id,
                completed,
                total,
                active,
                hash_hex(*k_bits),
                hash_hex(*entropy_bits)
            ),
            Response::Result { id, source, result } => format!(
                "{{\"event\":\"result\",\"id\":{},\"source\":\"{}\",\"result\":{}}}",
                id,
                source.keyword(),
                result.to_json()
            ),
            Response::Stats(s) => format!(
                concat!(
                    "{{\"event\":\"stats\",\"submitted\":{},\"cache_hits\":{},",
                    "\"coalesced\":{},\"cold_runs\":{},\"rejected\":{},",
                    "\"queued\":{},\"running\":{},\"cache_entries\":{},",
                    "\"xs_lookups\":{}}}"
                ),
                s.submitted,
                s.cache_hits,
                s.coalesced,
                s.cold_runs,
                s.rejected,
                s.queued,
                s.running,
                s.cache_entries,
                s.xs_lookups
            ),
            Response::Error { detail } => format!(
                "{{\"event\":\"error\",\"detail\":\"{}\"}}",
                escape_json(detail)
            ),
        }
    }

    /// Decode one line. Never panics.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let v = JsonValue::parse(line).map_err(|e| ProtoError::Corrupt { detail: e })?;
        let event = v
            .get("event")
            .and_then(|e| e.as_str())
            .ok_or_else(|| ProtoError::Invalid {
                detail: "missing string field `event`".to_string(),
            })?;
        let int = |key: &str| -> Result<u64, ProtoError> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| ProtoError::Invalid {
                    detail: format!("{event}: bad or missing integer field `{key}`"),
                })
        };
        let hex = |key: &str| -> Result<u64, ProtoError> {
            v.get(key)
                .and_then(|x| x.as_str())
                .and_then(parse_hash_hex)
                .ok_or_else(|| ProtoError::Invalid {
                    detail: format!("{event}: bad or missing hex field `{key}`"),
                })
        };
        let word = |key: &str| -> Result<&str, ProtoError> {
            v.get(key)
                .and_then(|x| x.as_str())
                .ok_or_else(|| ProtoError::Invalid {
                    detail: format!("{event}: bad or missing string field `{key}`"),
                })
        };
        match event {
            "accepted" => Ok(Response::Accepted {
                id: int("id")?,
                plan_hash: hex("plan_hash")?,
                source: Source::from_keyword(word("source")?).ok_or_else(|| {
                    ProtoError::Invalid {
                        detail: "accepted: unknown source".to_string(),
                    }
                })?,
            }),
            "rejected" => {
                let reason = match word("reason")? {
                    "queue-full" => RejectReason::QueueFull {
                        queued: int("queued")?,
                        cap: int("cap")?,
                    },
                    "draining" => RejectReason::Draining,
                    "unsupported" => RejectReason::Unsupported {
                        detail: word("detail")?.to_string(),
                    },
                    other => {
                        return Err(ProtoError::Invalid {
                            detail: format!("rejected: unknown reason \"{other}\""),
                        })
                    }
                };
                Ok(Response::Rejected {
                    id: int("id")?,
                    reason,
                })
            }
            "progress" => Ok(Response::Progress {
                id: int("id")?,
                completed: int("completed")?,
                total: int("total")?,
                active: v.get("active").and_then(|a| a.as_bool()).ok_or_else(|| {
                    ProtoError::Invalid {
                        detail: "progress: `active` must be a boolean".to_string(),
                    }
                })?,
                k_bits: hex("k")?,
                entropy_bits: hex("entropy")?,
            }),
            "result" => {
                let rv = v.get("result").ok_or_else(|| ProtoError::Invalid {
                    detail: "result: missing `result` object".to_string(),
                })?;
                Ok(Response::Result {
                    id: int("id")?,
                    source: Source::from_keyword(word("source")?).ok_or_else(|| {
                        ProtoError::Invalid {
                            detail: "result: unknown source".to_string(),
                        }
                    })?,
                    result: Arc::new(
                        ServedResult::from_value(rv)
                            .map_err(|detail| ProtoError::Invalid { detail })?,
                    ),
                })
            }
            "stats" => Ok(Response::Stats(StatsSnapshot {
                submitted: int("submitted")?,
                cache_hits: int("cache_hits")?,
                coalesced: int("coalesced")?,
                cold_runs: int("cold_runs")?,
                rejected: int("rejected")?,
                queued: int("queued")?,
                running: int("running")?,
                cache_entries: int("cache_entries")?,
                xs_lookups: int("xs_lookups")?,
            })),
            "error" => Ok(Response::Error {
                detail: word("detail")?.to_string(),
            }),
            other => Err(ProtoError::Invalid {
                detail: format!("unknown event \"{other}\""),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::plan_hash;
    use crate::result::tests::sample;

    #[test]
    fn submit_round_trips_with_plan_intact() {
        let req = Request::Submit {
            plan: Box::new(RunPlan::default()),
            priority: Priority::High,
            progress: true,
        };
        let back = Request::parse(&req.to_line()).expect("decode");
        match (&req, &back) {
            (Request::Submit { plan: a, .. }, Request::Submit { plan: b, .. }) => {
                assert_eq!(plan_hash(a), plan_hash(b));
            }
            _ => panic!("variant changed in transit"),
        }
        assert_eq!(req, back);
    }

    #[test]
    fn every_response_round_trips() {
        let responses = [
            Response::Accepted {
                id: 3,
                plan_hash: u64::MAX,
                source: Source::Coalesced,
            },
            Response::Rejected {
                id: 9,
                reason: RejectReason::QueueFull {
                    queued: 64,
                    cap: 64,
                },
            },
            Response::Rejected {
                id: 10,
                reason: RejectReason::Draining,
            },
            Response::Rejected {
                id: 11,
                reason: RejectReason::Unsupported {
                    detail: "fixed-source mode".to_string(),
                },
            },
            Response::Progress {
                id: 0,
                completed: 2,
                total: 8,
                active: false,
                k_bits: 1.0123_f64.to_bits(),
                entropy_bits: 5.5_f64.to_bits(),
            },
            Response::Result {
                id: 1,
                source: Source::Cache,
                result: Arc::new(sample(42)),
            },
            Response::Stats(StatsSnapshot {
                submitted: 10,
                cache_hits: 4,
                coalesced: 3,
                cold_runs: 3,
                rejected: 0,
                queued: 1,
                running: 2,
                cache_entries: 3,
                xs_lookups: 123_456,
            }),
            Response::Error {
                detail: "corrupt frame: line 1: bad token".to_string(),
            },
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.to_line()).expect("decode"), r);
        }
    }

    #[test]
    fn garbage_and_truncation_yield_typed_errors() {
        for junk in [
            "",
            "not json",
            "{\"cmd\":",
            "\u{1}\u{2}\u{3}",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"submit\",\"plan_toml\":\"[plan]\\nparticles = 0\\n\"}",
            "{\"event\":\"result\",\"id\":1}",
            "{\"event\":\"warp\"}",
            "{\"cmd\":\"warp\"}",
            "{}",
        ] {
            assert!(Request::parse(junk).is_err(), "request: {junk:?}");
            assert!(Response::parse(junk).is_err(), "response: {junk:?}");
        }
        // Truncations of a valid frame must error, never panic.
        let line = Request::Submit {
            plan: Box::new(RunPlan::default()),
            priority: Priority::Normal,
            progress: false,
        }
        .to_line();
        for cut in 0..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            let _ = Request::parse(&line[..cut]);
        }
    }
}
