//! Canonical plan hashing — the memoization key of the service.
//!
//! The repo's signature contract (every [`RunPlan`] yields a
//! `to_bits`-identical `EigenvalueResult` under any `ExecutionPolicy`)
//! means the *physics* of a plan fully determines its result. The
//! canonical hash therefore digests the plan's `[plan]` TOML section —
//! a stable, field-ordered serialization owned by `mcs_core` — with two
//! normalizations applied first:
//!
//! 1. **`policy` is excluded.** Serial, threaded, and distributed
//!    submissions of the same physics coalesce onto one cache entry;
//!    the determinism contract is what makes that sound.
//! 2. **`seed` is resolved.** `seed = None` and an explicit override
//!    equal to the model default are the same run, so the canonical
//!    text always carries the resolved seed.
//!
//! Every other field is kept, conservatively: `queueing` is
//! bitwise-invisible and `checkpoint_every` only changes statepoint
//! cadence, but excluding a field that later grows a result-visible
//! effect would silently poison the cache, while including one that
//! doesn't only costs a few redundant cold runs.

use mcs_core::engine::{PolicySpec, RunPlan};

/// Domain-separation prefix folded into every plan hash, versioned so a
/// canonicalization change invalidates old caches instead of colliding
/// with them.
pub const HASH_DOMAIN: &str = "mcs-plan-hash/1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical text a plan's hash digests: the `[plan]` section of
/// [`RunPlan::to_toml`] after normalizing `policy` to `Serial` and
/// `seed` to [`RunPlan::resolved_seed`]. The `[policy]` section is cut
/// off entirely so the digest cannot depend on it even if the policy
/// serialization grows fields.
pub fn canonical_text(plan: &RunPlan) -> String {
    let mut canon = plan.clone();
    canon.policy = PolicySpec::Serial;
    canon.seed = Some(plan.resolved_seed());
    let toml = canon.to_toml();
    match toml.split_once("\n[policy]") {
        Some((physics, _)) => physics.to_string(),
        None => toml,
    }
}

/// Canonical 64-bit plan hash: FNV-1a over [`HASH_DOMAIN`] plus
/// [`canonical_text`]. Stable across policies, field-order stable (the
/// serializer emits fields in declaration order), and stable through a
/// `to_toml`/`from_toml` round trip.
pub fn plan_hash(plan: &RunPlan) -> u64 {
    let h = fnv1a(FNV_OFFSET, HASH_DOMAIN.as_bytes());
    fnv1a(h, canonical_text(plan).as_bytes())
}

/// Wire form of a plan hash: fixed-width lowercase hex.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parse the wire form back ([`hash_hex`] inverse).
pub fn parse_hash_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Key under which the scheduler shares one built [`mcs_core::Problem`]
/// across jobs: the fields `RunPlan::build_problem` actually consumes
/// (full model spec with overrides, traversal treatment, survival
/// treatment, resolved seed). Two plans with equal problem keys run
/// against the same `Arc<Problem>` — and therefore the same PR-6
/// Arc-cached `XsContext`, whose instrumentation counters then
/// aggregate lookups across all of them.
pub fn problem_key(plan: &RunPlan) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"mcs-problem-key/2");
    h = fnv1a(h, plan.model.spec_string().as_bytes());
    h = fnv1a(h, plan.traversal.name().as_bytes());
    h = fnv1a(h, &[plan.survival as u8]);
    // The device selection joins the digest only when off-default (the
    // sparse-emission discipline): every pre-catalog plan hashes exactly
    // as it always did, so historic cache entries stay valid.
    if !plan.device.is_default() {
        h = fnv1a(h, b";device=");
        h = fnv1a(h, plan.device.spec_string().as_bytes());
    }
    fnv1a(h, &plan.resolved_seed().to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::engine::RunPlan;

    #[test]
    fn policy_never_reaches_the_digest() {
        let mut plan = RunPlan::default();
        let base = plan_hash(&plan);
        for policy in [
            PolicySpec::Serial,
            PolicySpec::Threaded { threads: 7 },
            PolicySpec::Distributed { ranks: 3 },
        ] {
            plan.policy = policy;
            assert_eq!(plan_hash(&plan), base);
        }
    }

    #[test]
    fn default_seed_and_explicit_default_coalesce() {
        let implicit = RunPlan::default();
        let explicit = RunPlan {
            seed: Some(implicit.resolved_seed()),
            ..RunPlan::default()
        };
        assert_eq!(plan_hash(&implicit), plan_hash(&explicit));
        let other = RunPlan {
            seed: Some(implicit.resolved_seed() ^ 1),
            ..RunPlan::default()
        };
        assert_ne!(plan_hash(&implicit), plan_hash(&other));
    }

    #[test]
    fn hex_round_trips() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_hash_hex(&hash_hex(h)), Some(h));
        }
        assert_eq!(parse_hash_hex("xyz"), None);
        assert_eq!(parse_hash_hex("00"), None);
    }

    #[test]
    fn device_selection_is_hashed_only_off_default() {
        use mcs_core::engine::{DeviceOverrides, DeviceRef, DEFAULT_DEVICE};
        // Explicitly naming the default device is the same run as not
        // naming one: identical plan hash, problem key, and plan text.
        let implicit = RunPlan::default();
        let explicit = RunPlan {
            device: DeviceRef::named(DEFAULT_DEVICE),
            ..RunPlan::default()
        };
        assert_eq!(implicit.to_toml(), explicit.to_toml());
        assert_eq!(plan_hash(&implicit), plan_hash(&explicit));
        assert_eq!(problem_key(&implicit), problem_key(&explicit));

        // An off-default device changes both hashes...
        let gpu = RunPlan {
            device: DeviceRef::named("a100"),
            ..RunPlan::default()
        };
        assert_ne!(plan_hash(&implicit), plan_hash(&gpu));
        assert_ne!(problem_key(&implicit), problem_key(&gpu));
        // ...and overrides on the default device do too.
        let tweaked = RunPlan {
            device: DeviceRef {
                name: DEFAULT_DEVICE.into(),
                overrides: DeviceOverrides {
                    clock_ghz: Some(2.9),
                    ..Default::default()
                },
            },
            ..RunPlan::default()
        };
        assert_ne!(problem_key(&implicit), problem_key(&tweaked));
        assert_ne!(plan_hash(&implicit), plan_hash(&tweaked));
        assert_ne!(problem_key(&gpu), problem_key(&tweaked));
    }

    #[test]
    fn canonical_text_has_no_policy_section() {
        let text = canonical_text(&RunPlan::default());
        assert!(text.starts_with("[plan]\n"));
        assert!(!text.contains("[policy]"));
        assert!(text.contains("seed = "));
    }
}
