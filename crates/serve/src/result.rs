//! The bit-exact result record the service caches and serves.
//!
//! [`ServedResult`] is a fully *integer* view of an eigenvalue run:
//! every float is carried as its IEEE-754 bit pattern (`to_bits`), so
//! `PartialEq` on the struct **is** the repo's bitwise-determinism
//! contract, and the wire encoding (hex strings — JSON numbers cannot
//! carry a full `u64`) round-trips exactly. Wall-clock fields of the
//! engine report (`wall`, `rate`, `total_time`) are deliberately
//! dropped: they are the only nondeterministic parts of a run and have
//! no place in a cache that promises bit-identical replays.

use mcs_core::engine::RunReport;
use mcs_core::Tallies;
use mcs_prof::value::JsonValue;

use crate::hash::{hash_hex, parse_hash_hex};

/// Integer-only snapshot of the merged [`Tallies`] of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TallySummary {
    /// Transported particle count (active batches).
    pub n_particles: u64,
    /// Track segments.
    pub segments: u64,
    /// Collisions / absorptions / fissions / leaks.
    pub collisions: u64,
    /// Absorptions.
    pub absorptions: u64,
    /// Fissions.
    pub fissions: u64,
    /// Leaks.
    pub leaks: u64,
    /// Per-material segment counts.
    pub segments_by_material: [u64; 8],
    /// Per-material collision counts.
    pub collisions_by_material: [u64; 8],
    /// Total track length, as IEEE-754 bits.
    pub track_length_bits: u64,
    /// Track-length k accumulator, as bits.
    pub k_track_bits: u64,
    /// Collision k accumulator, as bits.
    pub k_collision_bits: u64,
    /// Absorption k accumulator, as bits.
    pub k_absorption_bits: u64,
}

impl From<&Tallies> for TallySummary {
    fn from(t: &Tallies) -> Self {
        TallySummary {
            n_particles: t.n_particles,
            segments: t.segments,
            collisions: t.collisions,
            absorptions: t.absorptions,
            fissions: t.fissions,
            leaks: t.leaks,
            segments_by_material: t.segments_by_material,
            collisions_by_material: t.collisions_by_material,
            track_length_bits: t.track_length.to_bits(),
            k_track_bits: t.k_track.to_bits(),
            k_collision_bits: t.k_collision.to_bits(),
            k_absorption_bits: t.k_absorption.to_bits(),
        }
    }
}

/// The deterministic summary of one eigenvalue run, keyed by its
/// canonical plan hash. Equality is bitwise by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedResult {
    /// Canonical plan hash this result answers for.
    pub plan_hash: u64,
    /// Batches executed (inactive + active).
    pub batches: u64,
    /// Mean active-batch k, as bits.
    pub k_mean_bits: u64,
    /// Standard error of k, as bits.
    pub k_std_bits: u64,
    /// Track-length k of every batch, as bits.
    pub k_history_bits: Vec<u64>,
    /// Shannon entropy of every batch, as bits.
    pub entropy_bits: Vec<u64>,
    /// Merged active-batch tallies.
    pub tallies: TallySummary,
}

impl ServedResult {
    /// Capture the deterministic parts of a finished engine report.
    pub fn from_report(plan_hash: u64, report: &RunReport) -> ServedResult {
        ServedResult {
            plan_hash,
            batches: report.k_history.len() as u64,
            k_mean_bits: report.result.k_mean.to_bits(),
            k_std_bits: report.result.k_std.to_bits(),
            k_history_bits: report.k_history.iter().map(|k| k.to_bits()).collect(),
            entropy_bits: report.batches.iter().map(|b| b.entropy.to_bits()).collect(),
            tallies: TallySummary::from(&report.result.tallies),
        }
    }

    /// Mean k as a float (exactly the engine's value).
    pub fn k_mean(&self) -> f64 {
        f64::from_bits(self.k_mean_bits)
    }

    /// k standard error as a float.
    pub fn k_std(&self) -> f64 {
        f64::from_bits(self.k_std_bits)
    }

    /// Serialize to the wire JSON object (one line, no spaces).
    pub fn to_json(&self) -> String {
        let hexes = |v: &[u64]| {
            v.iter()
                .map(|b| format!("\"{}\"", hash_hex(*b)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let ints = |v: &[u64]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let t = &self.tallies;
        format!(
            concat!(
                "{{\"plan_hash\":\"{}\",\"batches\":{},",
                "\"k_mean\":\"{}\",\"k_std\":\"{}\",",
                "\"k_history\":[{}],\"entropy\":[{}],",
                "\"tallies\":{{\"n_particles\":{},\"segments\":{},",
                "\"collisions\":{},\"absorptions\":{},\"fissions\":{},",
                "\"leaks\":{},\"segments_by_material\":[{}],",
                "\"collisions_by_material\":[{}],\"track_length\":\"{}\",",
                "\"k_track\":\"{}\",\"k_collision\":\"{}\",",
                "\"k_absorption\":\"{}\"}}}}"
            ),
            hash_hex(self.plan_hash),
            self.batches,
            hash_hex(self.k_mean_bits),
            hash_hex(self.k_std_bits),
            hexes(&self.k_history_bits),
            hexes(&self.entropy_bits),
            t.n_particles,
            t.segments,
            t.collisions,
            t.absorptions,
            t.fissions,
            t.leaks,
            ints(&t.segments_by_material),
            ints(&t.collisions_by_material),
            hash_hex(t.track_length_bits),
            hash_hex(t.k_track_bits),
            hash_hex(t.k_collision_bits),
            hash_hex(t.k_absorption_bits),
        )
    }

    /// Decode the wire JSON object produced by [`ServedResult::to_json`].
    pub fn from_value(v: &JsonValue) -> Result<ServedResult, String> {
        let hex = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .and_then(parse_hash_hex)
                .ok_or_else(|| format!("result: bad or missing hex field `{key}`"))
        };
        let int = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("result: bad or missing integer field `{key}`"))
        };
        let hex_vec = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(|x| x.as_array())
                .ok_or_else(|| format!("result: missing array `{key}`"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .and_then(parse_hash_hex)
                        .ok_or_else(|| format!("result: bad hex element in `{key}`"))
                })
                .collect()
        };
        let t = v
            .get("tallies")
            .ok_or_else(|| "result: missing `tallies`".to_string())?;
        let int8 = |key: &str| -> Result<[u64; 8], String> {
            let items = t
                .get(key)
                .and_then(|x| x.as_array())
                .ok_or_else(|| format!("result: missing array `tallies.{key}`"))?;
            if items.len() != 8 {
                return Err(format!("result: `tallies.{key}` must have 8 elements"));
            }
            let mut out = [0u64; 8];
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = item
                    .as_u64()
                    .ok_or_else(|| format!("result: bad element in `tallies.{key}`"))?;
            }
            Ok(out)
        };
        Ok(ServedResult {
            plan_hash: hex(v, "plan_hash")?,
            batches: int(v, "batches")?,
            k_mean_bits: hex(v, "k_mean")?,
            k_std_bits: hex(v, "k_std")?,
            k_history_bits: hex_vec("k_history")?,
            entropy_bits: hex_vec("entropy")?,
            tallies: TallySummary {
                n_particles: int(t, "n_particles")?,
                segments: int(t, "segments")?,
                collisions: int(t, "collisions")?,
                absorptions: int(t, "absorptions")?,
                fissions: int(t, "fissions")?,
                leaks: int(t, "leaks")?,
                segments_by_material: int8("segments_by_material")?,
                collisions_by_material: int8("collisions_by_material")?,
                track_length_bits: hex(t, "track_length")?,
                k_track_bits: hex(t, "k_track")?,
                k_collision_bits: hex(t, "k_collision")?,
                k_absorption_bits: hex(t, "k_absorption")?,
            },
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub fn sample(plan_hash: u64) -> ServedResult {
        ServedResult {
            plan_hash,
            batches: 3,
            k_mean_bits: 1.0234_f64.to_bits(),
            k_std_bits: 0.001_f64.to_bits(),
            k_history_bits: vec![1.0_f64.to_bits(), 1.01_f64.to_bits(), 1.02_f64.to_bits()],
            entropy_bits: vec![5.5_f64.to_bits(), 5.4_f64.to_bits(), 5.3_f64.to_bits()],
            tallies: TallySummary {
                n_particles: 400,
                segments: 9000,
                collisions: 7000,
                absorptions: 300,
                fissions: 120,
                leaks: 80,
                segments_by_material: [1, 2, 3, 4, 5, 6, 7, 8],
                collisions_by_material: [8, 7, 6, 5, 4, 3, 2, 1],
                track_length_bits: 123.456_f64.to_bits(),
                k_track_bits: 1.02_f64.to_bits(),
                k_collision_bits: 1.03_f64.to_bits(),
                k_absorption_bits: 1.04_f64.to_bits(),
            },
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let r = sample(0xfeed_face_dead_beef);
        let v = JsonValue::parse(&r.to_json()).expect("valid json");
        assert_eq!(ServedResult::from_value(&v).expect("decode"), r);
    }

    #[test]
    fn negative_zero_and_nan_bits_survive() {
        let mut r = sample(1);
        r.k_mean_bits = (-0.0_f64).to_bits();
        r.k_std_bits = f64::NAN.to_bits();
        let v = JsonValue::parse(&r.to_json()).expect("valid json");
        let back = ServedResult::from_value(&v).expect("decode");
        assert_eq!(back, r);
    }
}
