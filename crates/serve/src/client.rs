//! A small blocking client for the line protocol.
//!
//! Shared by the integration tests, the load harness, and the README's
//! example session. The client mirrors the server's id assignment
//! (connection-local, dense, in submission order), supports pipelining
//! (submit many, then read events), and buffers out-of-interest events
//! so interleaved streams can be consumed selectively.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use mcs_core::engine::RunPlan;

use crate::protocol::{
    Priority, ProtoError, RejectReason, Request, Response, Source, StatsSnapshot,
};
use crate::result::ServedResult;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (or server hangup mid-stream).
    Io(std::io::Error),
    /// The server sent a frame this client cannot decode.
    Proto(ProtoError),
    /// The server reported a decode failure for one of our frames.
    Remote(String),
    /// The awaited submission was refused.
    Rejected(RejectReason),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Remote(d) => write!(f, "server error: {d}"),
            ClientError::Rejected(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to an `mcs serve` instance.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    pending: VecDeque<Response>,
    next_id: u64,
}

impl Client {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            writer: BufWriter::new(write_half),
            reader: BufReader::new(stream),
            pending: VecDeque::new(),
            next_id: 0,
        })
    }

    fn send(&mut self, req: &Request) -> std::io::Result<()> {
        writeln!(self.writer, "{}", req.to_line())?;
        self.writer.flush()
    }

    /// Submit a plan; returns the connection-local id its events will
    /// carry. Pipelines freely — read events later.
    pub fn submit(
        &mut self,
        plan: &RunPlan,
        priority: Priority,
        progress: bool,
    ) -> std::io::Result<u64> {
        self.send(&Request::Submit {
            plan: Box::new(plan.clone()),
            priority,
            progress,
        })?;
        let id = self.next_id;
        self.next_id += 1;
        Ok(id)
    }

    /// Next event from the server (buffered events first).
    pub fn next_event(&mut self) -> Result<Response, ClientError> {
        if let Some(r) = self.pending.pop_front() {
            return Ok(r);
        }
        self.read_event()
    }

    /// Next event straight off the socket, never consulting `pending`.
    /// `wait_event` loops on this: anything it buffers must stay
    /// buffered until a *matching* wait, or the loop would pop and
    /// re-buffer the same event forever.
    fn read_event(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Response::parse(line.trim_end()).map_err(ClientError::Proto);
        }
    }

    /// Read events until one matches `pred`, buffering unrelated
    /// terminal events (`Result`/`Rejected`/`Stats`) for later waits.
    /// Status events (`Accepted`, `Progress`) that don't match are
    /// discarded — observe those through [`Client::next_event`].
    fn wait_event<F: Fn(&Response) -> bool>(&mut self, pred: F) -> Result<Response, ClientError> {
        if let Some(pos) = self.pending.iter().position(&pred) {
            return Ok(self.pending.remove(pos).expect("position just found"));
        }
        loop {
            let event = self.read_event()?;
            if pred(&event) {
                return Ok(event);
            }
            match event {
                Response::Error { detail } => return Err(ClientError::Remote(detail)),
                Response::Accepted { .. } | Response::Progress { .. } => {}
                other => self.pending.push_back(other),
            }
        }
    }

    /// Read events until submission `id`'s terminal event, buffering
    /// terminal events of other submissions.
    pub fn wait_result(&mut self, id: u64) -> Result<(Source, Arc<ServedResult>), ClientError> {
        let event = self.wait_event(|e| {
            matches!(
                e,
                Response::Result { id: rid, .. } | Response::Rejected { id: rid, .. }
                if *rid == id
            )
        })?;
        match event {
            Response::Result { source, result, .. } => Ok((source, result)),
            Response::Rejected { reason, .. } => Err(ClientError::Rejected(reason)),
            _ => unreachable!("wait_event predicate admits only result/rejected"),
        }
    }

    /// Submit and block for the result (the one-shot path).
    pub fn run(
        &mut self,
        plan: &RunPlan,
        priority: Priority,
    ) -> Result<(Source, Arc<ServedResult>), ClientError> {
        let id = self.submit(plan, priority, false)?;
        self.wait_result(id)
    }

    /// Fetch a statistics snapshot (buffers unrelated events).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Request::Stats)?;
        match self.wait_event(|e| matches!(e, Response::Stats(_)))? {
            Response::Stats(s) => Ok(s),
            _ => unreachable!("wait_event predicate admits only stats"),
        }
    }
}
