//! Bounded hash-keyed result cache.
//!
//! A plain FIFO-evicting map from canonical plan hash to
//! `Arc<ServedResult>`. It is *not* internally synchronized — it lives
//! inside the scheduler's state mutex, which already serializes every
//! cache touch with the in-flight dedupe bookkeeping (a lookup and a
//! coalesce decision must be atomic together, so a cache-level lock
//! would be redundant).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::result::ServedResult;

/// FIFO-bounded `plan_hash -> Arc<ServedResult>` map.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u64, Arc<ServedResult>>,
    order: VecDeque<u64>,
    cap: usize,
}

impl ResultCache {
    /// An empty cache holding at most `cap` results (`cap == 0` caches
    /// nothing — every submission is a cold run or a coalesce).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Cached result for `hash`, if present.
    pub fn get(&self, hash: u64) -> Option<Arc<ServedResult>> {
        self.map.get(&hash).cloned()
    }

    /// Insert a finished result, evicting the oldest entry at capacity.
    /// Re-inserting an existing hash refreshes the value without
    /// consuming a slot.
    pub fn insert(&mut self, hash: u64, result: Arc<ServedResult>) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(hash, result).is_none() {
            self.order.push_back(hash);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::tests::sample;

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = ResultCache::new(2);
        c.insert(1, Arc::new(sample(1)));
        c.insert(2, Arc::new(sample(2)));
        c.insert(3, Arc::new(sample(3)));
        assert!(c.get(1).is_none(), "oldest entry evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_slots() {
        let mut c = ResultCache::new(2);
        c.insert(1, Arc::new(sample(1)));
        c.insert(1, Arc::new(sample(1)));
        c.insert(2, Arc::new(sample(2)));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = ResultCache::new(0);
        c.insert(1, Arc::new(sample(1)));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
