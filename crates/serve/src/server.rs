//! The TCP front end: a hand-rolled `std::net` accept loop speaking
//! the newline-delimited protocol.
//!
//! Each connection gets a reader thread (parses request lines, submits
//! to the shared scheduler) and a writer thread (serializes every
//! [`Response`] from a per-connection channel to the socket). The
//! channel is the serialization point: scheduler workers, the fanout
//! progress observer, and the reader all send into it, so response
//! lines never interleave mid-frame no matter how many jobs stream
//! progress to one pipelined connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::protocol::{Request, Response};
use crate::scheduler::{Scheduler, ServeConfig, Subscriber};

/// A running plan-execution service.
pub struct Server {
    scheduler: Arc<Scheduler>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral test port) and start
    /// accepting connections over a fresh scheduler.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let scheduler = Arc::new(Scheduler::new(cfg));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let scheduler = scheduler.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let scheduler = scheduler.clone();
                    // Connection threads are detached: they exit when
                    // the peer hangs up, and the scheduler they share
                    // outlives them through the Arc.
                    std::thread::spawn(move || handle_connection(stream, &scheduler));
                }
            })
        };
        Ok(Server {
            scheduler,
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared scheduler (tests drive `pause`/`resume`/`stats`
    /// through this; the CLI prints its snapshot).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Block forever serving requests (the CLI foreground mode).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting, drain the scheduler (in-flight jobs complete),
    /// and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(stream: TcpStream, scheduler: &Arc<Scheduler>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for resp in rx {
            if writeln!(out, "{}", resp.to_line()).is_err() || out.flush().is_err() {
                return;
            }
        }
    });

    let reader = BufReader::new(stream);
    let mut next_id: u64 = 0;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(e) => {
                // Typed decode failure: report and keep the
                // connection alive — one bad frame must not kill a
                // pipelined stream of good ones.
                let _ = tx.send(Response::Error {
                    detail: e.to_string(),
                });
            }
            Ok(Request::Stats) => {
                let _ = tx.send(Response::Stats(scheduler.stats()));
            }
            Ok(Request::Submit {
                plan,
                priority,
                progress,
            }) => {
                let id = next_id;
                next_id += 1;
                let sub = Subscriber {
                    id,
                    progress,
                    tx: tx.clone(),
                };
                // All Accepted/Rejected/Result responses are sent by
                // the scheduler itself, ordered under its state lock.
                let _ = scheduler.submit(*plan, priority, sub);
            }
        }
    }
    // Reader done: drop our sender; the writer drains pending events
    // (workers may still hold subscriber senders for in-flight jobs —
    // the writer exits once the last one resolves or the socket dies).
    drop(tx);
    let _ = writer.join();
}

/// Convenience for `mcs serve`: bind, announce, and serve forever.
pub fn serve_forever<A: ToSocketAddrs>(addr: A, cfg: ServeConfig) -> std::io::Result<()> {
    let server = Server::bind(addr, cfg)?;
    println!(
        "mcs-serve listening on {} ({} workers, queue cap {}, cache cap {})",
        server.local_addr(),
        cfg.workers.max(1),
        cfg.queue_cap,
        cfg.cache_cap
    );
    server.join();
    Ok(())
}
