//! `mcs-serve`: a deterministic plan-execution service.
//!
//! The repo's signature contract — every [`RunPlan`] yields a
//! `to_bits`-identical result under any execution policy — turns a
//! canonical plan hash into a *perfect* memoization key. This crate
//! exploits that end to end:
//!
//! - [`hash`]: the canonical, policy-excluded plan digest.
//! - [`result`]: [`ServedResult`], the bit-exact (all-integer) cached
//!   result record; `PartialEq` on it *is* the determinism contract.
//! - [`cache`]: the bounded hash-keyed result cache.
//! - [`scheduler`]: in-flight dedupe (identical concurrent plans run
//!   once, every subscriber gets the result), two priority classes,
//!   admission control with typed rejects, per-batch progress fanout,
//!   pause/drain control, and `Arc<Problem>`/`XsContext` sharing
//!   across jobs.
//! - [`protocol`]: the newline-delimited JSON line protocol; malformed
//!   frames decode to typed errors, never panics.
//! - [`server`] / [`client`]: the `std::net` TCP front end and the
//!   blocking client used by the tests, the load harness, and the
//!   README example.
//!
//! ```no_run
//! use mcs_core::engine::RunPlan;
//! use mcs_serve::client::Client;
//! use mcs_serve::protocol::Priority;
//! use mcs_serve::scheduler::ServeConfig;
//! use mcs_serve::server::Server;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let (source, result) = client.run(&RunPlan::default(), Priority::Normal).unwrap();
//! println!("k = {:.5} (served from {})", result.k_mean(), source.keyword());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod protocol;
pub mod result;
pub mod scheduler;
pub mod server;

pub use client::{Client, ClientError};
pub use hash::{hash_hex, plan_hash};
pub use protocol::{Priority, ProtoError, RejectReason, Request, Response, Source, StatsSnapshot};
pub use result::ServedResult;
pub use scheduler::{Scheduler, ServeConfig, Submission, Subscriber};
pub use server::Server;

#[allow(unused_imports)]
use mcs_core::engine::RunPlan; // rustdoc link target
