//! The bounded, deduplicating plan scheduler.
//!
//! One mutex-guarded state block owns the four structures whose
//! transitions must be atomic together: the result cache, the
//! in-flight table (plan hash → subscribers), the two priority queues,
//! and the admission counters. A submission therefore takes exactly
//! one of four paths, decided under a single lock acquisition:
//!
//! ```text
//!   submit ──▶ cache hit ──────▶ Result now (no slot, no run)
//!          ──▶ in-flight hit ──▶ attach subscriber (no slot, no run)
//!          ──▶ queue has room ─▶ enqueue by priority (cold run later)
//!          ──▶ otherwise ──────▶ typed reject (queue-full / draining)
//! ```
//!
//! Workers execute every job under the `Serial` policy. That is not a
//! simplification — it is the point: the engine's determinism contract
//! makes the result independent of the submitting client's
//! `PolicySpec`, so the service runs the cheapest policy and still
//! answers threaded and distributed submissions bit-exactly.
//!
//! Built problems are shared through an internal pool keyed by
//! [`problem_key`], so every job over the same model reuses one
//! `Arc<Problem>` — and through it the PR-6 Arc-cached `XsContext`,
//! whose atomic instrumentation counters then observe lookups across
//! all jobs (the integration tests' "cache hits cost zero lookups"
//! assertion reads exactly this).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mcs_core::engine::{self, BatchObserver, BatchProgress, RunMode, RunPlan, Serial};
use mcs_core::Problem;

use crate::cache::ResultCache;
use crate::hash::{plan_hash, problem_key};
use crate::protocol::{Priority, RejectReason, Response, Source, StatsSnapshot};
use crate::result::ServedResult;

/// Scheduler sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads executing cold runs.
    pub workers: usize,
    /// Admission cap: maximum *queued* (not running) jobs. Cache hits
    /// and coalesced submissions never consume a slot.
    pub queue_cap: usize,
    /// Result-cache capacity (FIFO-evicted).
    pub cache_cap: usize,
    /// Shared-problem pool capacity (FIFO-evicted; evicted problems
    /// retire their lookup counts into the cumulative statistic).
    pub problem_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_cap: 1024,
            problem_cap: 32,
        }
    }
}

/// One party awaiting a submission's outcome. Every accepted
/// submission has exactly one subscriber; a coalesced job has many.
#[derive(Debug, Clone)]
pub struct Subscriber {
    /// Connection-local submission id, echoed on every event.
    pub id: u64,
    /// Stream per-batch [`Response::Progress`] events.
    pub progress: bool,
    /// Event sink (the connection's writer channel).
    pub tx: Sender<Response>,
}

/// What [`Scheduler::submit`] decided, after any synchronous events
/// were already delivered to the subscriber's channel.
#[derive(Debug, Clone)]
pub enum Submission {
    /// Served from the cache; `Accepted` + `Result` already sent.
    Cached(Arc<ServedResult>),
    /// Attached to an identical in-flight job; `Accepted` sent, the
    /// shared `Result` will follow.
    Coalesced {
        /// Canonical hash of the joined plan.
        plan_hash: u64,
    },
    /// Queued for a cold run; `Accepted` sent, `Result` will follow.
    Scheduled {
        /// Canonical hash of the queued plan.
        plan_hash: u64,
    },
    /// Refused; `Rejected` already sent, no further events.
    Rejected(RejectReason),
}

struct QueuedJob {
    hash: u64,
    plan: RunPlan,
}

#[derive(Default)]
struct Stats {
    submitted: u64,
    cache_hits: u64,
    coalesced: u64,
    cold_runs: u64,
    rejected: u64,
}

struct State {
    high: VecDeque<QueuedJob>,
    normal: VecDeque<QueuedJob>,
    inflight: HashMap<u64, Vec<Subscriber>>,
    cache: ResultCache,
    running: usize,
    paused: bool,
    draining: bool,
    stats: Stats,
    /// Plan hashes in cold-run *start* order (the priority-ordering
    /// tests read this; cheap enough to keep unconditionally).
    started_order: Vec<u64>,
}

/// FIFO-bounded pool of built problems, with retired-lookup carryover
/// so `xs_lookups` stays cumulative across evictions.
struct ProblemPool {
    map: HashMap<u64, Arc<Problem>>,
    order: VecDeque<u64>,
    cap: usize,
    retired_lookups: u64,
}

impl ProblemPool {
    fn lookups(&self) -> u64 {
        self.retired_lookups + self.map.values().map(|p| p.xs.lookups()).sum::<u64>()
    }
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    idle: Condvar,
    problems: Mutex<ProblemPool>,
}

/// The plan scheduler: a bounded worker pool over the dedupe/cache
/// state machine. Cheaply cloneable via `Arc` by callers; the server
/// holds one per process.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start `cfg.workers` worker threads over an empty state.
    pub fn new(cfg: ServeConfig) -> Scheduler {
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                inflight: HashMap::new(),
                cache: ResultCache::new(cfg.cache_cap),
                running: 0,
                paused: false,
                draining: false,
                stats: Stats::default(),
                started_order: Vec::new(),
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            problems: Mutex::new(ProblemPool {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap: cfg.problem_cap.max(1),
                retired_lookups: 0,
            }),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a plan on behalf of `sub`. All synchronous events
    /// (`Accepted`, `Rejected`, and a cache hit's `Result`) are sent
    /// into `sub.tx` *before* this returns, under the state lock, so
    /// they always precede any asynchronous `Progress`/`Result` a
    /// worker later sends for the same id.
    pub fn submit(&self, plan: RunPlan, priority: Priority, sub: Subscriber) -> Submission {
        let hash = plan_hash(&plan);
        let mut st = self.shared.state.lock().unwrap();
        st.stats.submitted += 1;

        if plan.mode != RunMode::Eigenvalue {
            st.stats.rejected += 1;
            let reason = RejectReason::Unsupported {
                detail: format!("{} mode", plan.mode.keyword()),
            };
            let _ = sub.tx.send(Response::Rejected {
                id: sub.id,
                reason: reason.clone(),
            });
            return Submission::Rejected(reason);
        }

        if let Some(hit) = st.cache.get(hash) {
            st.stats.cache_hits += 1;
            let _ = sub.tx.send(Response::Accepted {
                id: sub.id,
                plan_hash: hash,
                source: Source::Cache,
            });
            let _ = sub.tx.send(Response::Result {
                id: sub.id,
                source: Source::Cache,
                result: hit.clone(),
            });
            return Submission::Cached(hit);
        }

        if st.inflight.contains_key(&hash) {
            st.stats.coalesced += 1;
            let subs = st.inflight.get_mut(&hash).expect("key checked");
            let _ = sub.tx.send(Response::Accepted {
                id: sub.id,
                plan_hash: hash,
                source: Source::Coalesced,
            });
            subs.push(sub);
            return Submission::Coalesced { plan_hash: hash };
        }

        let reject = |st: &mut State, reason: RejectReason| {
            st.stats.rejected += 1;
            let _ = sub.tx.send(Response::Rejected {
                id: sub.id,
                reason: reason.clone(),
            });
            Submission::Rejected(reason)
        };
        if st.draining {
            return reject(&mut st, RejectReason::Draining);
        }
        let queued = st.high.len() + st.normal.len();
        if queued >= self.shared.cfg.queue_cap {
            return reject(
                &mut st,
                RejectReason::QueueFull {
                    queued: queued as u64,
                    cap: self.shared.cfg.queue_cap as u64,
                },
            );
        }

        let _ = sub.tx.send(Response::Accepted {
            id: sub.id,
            plan_hash: hash,
            source: Source::Scheduled,
        });
        st.inflight.insert(hash, vec![sub]);
        let job = QueuedJob { hash, plan };
        match priority {
            Priority::High => st.high.push_back(job),
            Priority::Normal => st.normal.push_back(job),
        }
        drop(st);
        self.shared.work.notify_one();
        Submission::Scheduled { plan_hash: hash }
    }

    /// Hold workers before their next job pop. Queued and coalescing
    /// submissions keep accumulating; running jobs finish. The
    /// admission and priority tests use this to build queue states
    /// deterministically on any core count.
    pub fn pause(&self) {
        self.shared.state.lock().unwrap().paused = true;
    }

    /// Release paused workers.
    pub fn resume(&self) {
        self.shared.state.lock().unwrap().paused = false;
        self.shared.work.notify_all();
    }

    /// Graceful drain: stop admitting new work (cache hits still
    /// serve), un-pause, and block until every queued and running job
    /// has delivered its result.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.draining = true;
        st.paused = false;
        self.shared.work.notify_all();
        while st.running > 0 || !st.high.is_empty() || !st.normal.is_empty() {
            st = self.shared.idle.wait(st).unwrap();
        }
    }

    /// [`Scheduler::drain`], then join the worker threads.
    pub fn shutdown(&self) {
        self.drain();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let st = self.shared.state.lock().unwrap();
        let xs_lookups = self.shared.problems.lock().unwrap().lookups();
        StatsSnapshot {
            submitted: st.stats.submitted,
            cache_hits: st.stats.cache_hits,
            coalesced: st.stats.coalesced,
            cold_runs: st.stats.cold_runs,
            rejected: st.stats.rejected,
            queued: (st.high.len() + st.normal.len()) as u64,
            running: st.running as u64,
            cache_entries: st.cache.len() as u64,
            xs_lookups,
        }
    }

    /// Plan hashes in the order cold runs *started* (test/diagnostic
    /// surface for priority ordering).
    pub fn started_order(&self) -> Vec<u64> {
        self.shared.state.lock().unwrap().started_order.clone()
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> ServeConfig {
        self.shared.cfg
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // Idempotent: a second drain/join after an explicit shutdown
        // sees empty queues and no handles.
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if !st.paused {
                    if let Some(job) = st.high.pop_front().or_else(|| st.normal.pop_front()) {
                        st.running += 1;
                        st.stats.cold_runs += 1;
                        let hash = job.hash;
                        st.started_order.push(hash);
                        break Some(job);
                    }
                    if st.draining {
                        break None;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let Some(job) = job else {
            shared.idle.notify_all();
            return;
        };

        let problem = problem_for(shared, &job.plan);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut policy = Serial::new();
            let mut observer = FanoutObserver {
                shared,
                hash: job.hash,
            };
            engine::run_with_problem_observed(&problem, &job.plan, &mut policy, &mut observer)
                .into_eigenvalue()
        }));

        let mut st = shared.state.lock().unwrap();
        match outcome {
            Ok(report) => {
                let result = Arc::new(ServedResult::from_report(job.hash, &report));
                st.cache.insert(job.hash, result.clone());
                if let Some(subs) = st.inflight.remove(&job.hash) {
                    for s in subs {
                        let _ = s.tx.send(Response::Result {
                            id: s.id,
                            source: Source::Run,
                            result: result.clone(),
                        });
                    }
                }
            }
            Err(panic) => {
                let detail = panic_message(&panic);
                if let Some(subs) = st.inflight.remove(&job.hash) {
                    for s in subs {
                        let _ = s.tx.send(Response::Error {
                            detail: format!("execution failed: {detail}"),
                        });
                    }
                }
            }
        }
        st.running -= 1;
        drop(st);
        shared.idle.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Fetch or build the shared problem for `plan`. Builds happen outside
/// the pool lock (they are the expensive step); a concurrent build of
/// the same key is resolved insert-if-absent, mirroring
/// `mcs_xs::cache`.
fn problem_for(shared: &Shared, plan: &RunPlan) -> Arc<Problem> {
    let key = problem_key(plan);
    if let Some(p) = shared.problems.lock().unwrap().map.get(&key) {
        return p.clone();
    }
    let built = Arc::new(plan.build_problem());
    let mut pool = shared.problems.lock().unwrap();
    if let Some(p) = pool.map.get(&key) {
        return p.clone();
    }
    pool.map.insert(key, built.clone());
    pool.order.push_back(key);
    while pool.order.len() > pool.cap {
        if let Some(old) = pool.order.pop_front() {
            if let Some(evicted) = pool.map.remove(&old) {
                // A still-running job holding this Arc keeps counting
                // into its own clone; those late lookups are the one
                // (bounded, documented) undercount in `xs_lookups`.
                pool.retired_lookups += evicted.xs.lookups();
            }
        }
    }
    built
}

/// Streams one job's per-batch engine events to every progress
/// subscriber currently attached to its hash. Senders are snapshotted
/// under the lock, then used outside it — late joiners start receiving
/// from the next batch, which keeps each subscriber's stream monotone.
struct FanoutObserver<'a> {
    shared: &'a Shared,
    hash: u64,
}

impl BatchObserver for FanoutObserver<'_> {
    fn on_batch(&mut self, progress: BatchProgress<'_>) {
        let targets: Vec<(u64, Sender<Response>)> = {
            let st = self.shared.state.lock().unwrap();
            match st.inflight.get(&self.hash) {
                Some(subs) => subs
                    .iter()
                    .filter(|s| s.progress)
                    .map(|s| (s.id, s.tx.clone()))
                    .collect(),
                None => Vec::new(),
            }
        };
        for (id, tx) in targets {
            let _ = tx.send(Response::Progress {
                id,
                completed: progress.completed as u64,
                total: progress.total as u64,
                active: progress.batch.active,
                k_bits: progress.batch.k_track.to_bits(),
                entropy_bits: progress.batch.entropy.to_bits(),
            });
        }
    }
}
