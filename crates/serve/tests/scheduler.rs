//! Scheduler concurrency battery.
//!
//! The container running CI may have a single hardware thread, so none
//! of these tests race the clock: queue states are built
//! deterministically with [`Scheduler::pause`] (workers hold before
//! their next pop while submissions accumulate), then released. Every
//! assertion is on ordering or exact counts, never on timing.

use std::sync::mpsc::{self, Receiver};
use std::time::Duration;

use mcs_core::engine::{RunMode, RunPlan};
use mcs_serve::protocol::{Priority, RejectReason, Response, Source};
use mcs_serve::scheduler::{Scheduler, ServeConfig, Submission, Subscriber};
use mcs_serve::ServedResult;

const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A tiny unique plan: `salt` perturbs the seed, so each salt is a
/// distinct canonical hash over the same built model problem.
fn tiny_plan(salt: u64) -> RunPlan {
    RunPlan {
        particles: 64,
        inactive: 1,
        active: 1,
        entropy_mesh: (2, 2, 2),
        seed: Some(0x5eed_0000 + salt),
        ..RunPlan::default()
    }
}

fn subscriber(id: u64, progress: bool) -> (Subscriber, Receiver<Response>) {
    let (tx, rx) = mpsc::channel();
    (Subscriber { id, progress, tx }, rx)
}

/// Drain `rx` until the terminal event for `id`, returning the result.
fn recv_result(rx: &Receiver<Response>, id: u64) -> std::sync::Arc<ServedResult> {
    loop {
        match rx.recv_timeout(RECV_TIMEOUT).expect("event before timeout") {
            Response::Result {
                id: rid, result, ..
            } if rid == id => return result,
            Response::Rejected { id: rid, reason } if rid == id => {
                panic!("submission {rid} rejected: {reason}")
            }
            Response::Error { detail } => panic!("job failed: {detail}"),
            _ => {}
        }
    }
}

#[test]
fn admission_rejects_exactly_above_queue_cap() {
    let sched = Scheduler::new(ServeConfig {
        workers: 1,
        queue_cap: 2,
        cache_cap: 8,
        problem_cap: 4,
    });
    sched.pause();

    let (s0, rx0) = subscriber(0, false);
    let (s1, rx1) = subscriber(1, false);
    let (s2, rx2) = subscriber(2, false);
    assert!(matches!(
        sched.submit(tiny_plan(0), Priority::Normal, s0),
        Submission::Scheduled { .. }
    ));
    assert!(matches!(
        sched.submit(tiny_plan(1), Priority::Normal, s1),
        Submission::Scheduled { .. }
    ));
    // Queue holds exactly `cap` jobs; the next unique plan is refused
    // with the typed reason carrying the observed depth and the cap.
    match sched.submit(tiny_plan(2), Priority::Normal, s2) {
        Submission::Rejected(RejectReason::QueueFull { queued, cap }) => {
            assert_eq!((queued, cap), (2, 2));
        }
        other => panic!("expected queue-full reject, got {other:?}"),
    }
    match rx2.recv_timeout(RECV_TIMEOUT).expect("rejected event") {
        Response::Rejected {
            id: 2,
            reason: RejectReason::QueueFull { queued: 2, cap: 2 },
        } => {}
        other => panic!("expected rejected event, got {other:?}"),
    }

    // A duplicate of a *queued* plan coalesces — dedupe consumes no
    // admission slot even at a full queue.
    let (s3, rx3) = subscriber(3, false);
    assert!(matches!(
        sched.submit(tiny_plan(0), Priority::Normal, s3),
        Submission::Coalesced { .. }
    ));

    sched.resume();
    let r0 = recv_result(&rx0, 0);
    let r1 = recv_result(&rx1, 1);
    let r3 = recv_result(&rx3, 3);
    assert_eq!(r0, r3, "coalesced subscriber got the identical result");
    assert_ne!(r0, r1, "different plans, different results");

    let stats = sched.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.cold_runs, 2);
    sched.shutdown();
}

#[test]
fn high_priority_jobs_start_before_earlier_normal_ones() {
    let sched = Scheduler::new(ServeConfig {
        workers: 1,
        queue_cap: 16,
        cache_cap: 8,
        problem_cap: 4,
    });
    sched.pause();

    let (n1, rxn1) = subscriber(0, false);
    let (n2, rxn2) = subscriber(1, false);
    let (h1, rxh1) = subscriber(2, false);
    let Submission::Scheduled { plan_hash: hn1 } =
        sched.submit(tiny_plan(10), Priority::Normal, n1)
    else {
        panic!("n1 should schedule")
    };
    let Submission::Scheduled { plan_hash: hn2 } =
        sched.submit(tiny_plan(11), Priority::Normal, n2)
    else {
        panic!("n2 should schedule")
    };
    let Submission::Scheduled { plan_hash: hh1 } = sched.submit(tiny_plan(12), Priority::High, h1)
    else {
        panic!("h1 should schedule")
    };

    sched.resume();
    recv_result(&rxn1, 0);
    recv_result(&rxn2, 1);
    recv_result(&rxh1, 2);

    // The high-priority job was submitted last but must start first;
    // the normal class keeps FIFO order among itself.
    assert_eq!(sched.started_order(), vec![hh1, hn1, hn2]);
    sched.shutdown();
}

#[test]
fn graceful_drain_completes_queued_work_then_rejects() {
    let sched = Scheduler::new(ServeConfig {
        workers: 1,
        queue_cap: 16,
        cache_cap: 8,
        problem_cap: 4,
    });
    sched.pause();

    let subs: Vec<_> = (0..3).map(|i| subscriber(i, false)).collect();
    let mut rxs = Vec::new();
    for (i, (sub, rx)) in subs.into_iter().enumerate() {
        assert!(matches!(
            sched.submit(tiny_plan(20 + i as u64), Priority::Normal, sub),
            Submission::Scheduled { .. }
        ));
        rxs.push(rx);
    }

    // Drain un-pauses, blocks until the queue is empty and every
    // in-flight job has delivered, then keeps refusing new work.
    sched.drain();
    for (i, rx) in rxs.iter().enumerate() {
        recv_result(rx, i as u64);
    }

    let (late, rx_late) = subscriber(9, false);
    assert!(matches!(
        sched.submit(tiny_plan(99), Priority::High, late),
        Submission::Rejected(RejectReason::Draining)
    ));
    assert!(matches!(
        rx_late.recv_timeout(RECV_TIMEOUT),
        Ok(Response::Rejected {
            reason: RejectReason::Draining,
            ..
        })
    ));

    // Cache hits still serve during drain: the results computed before
    // the drain remain available.
    let (hit, rx_hit) = subscriber(10, false);
    assert!(matches!(
        sched.submit(tiny_plan(20), Priority::Normal, hit),
        Submission::Cached(_)
    ));
    recv_result(&rx_hit, 10);
    sched.shutdown();
}

#[test]
fn progress_events_are_monotone_per_subscriber_and_precede_the_result() {
    let sched = Scheduler::new(ServeConfig {
        workers: 1,
        queue_cap: 4,
        cache_cap: 4,
        problem_cap: 4,
    });
    let plan = RunPlan {
        inactive: 2,
        active: 3,
        ..tiny_plan(30)
    };
    sched.pause();

    // Two progress subscribers on one job: the submitter and a
    // coalesced joiner attached before the run starts.
    let (s0, rx0) = subscriber(0, true);
    let (s1, rx1) = subscriber(1, true);
    assert!(matches!(
        sched.submit(plan.clone(), Priority::Normal, s0),
        Submission::Scheduled { .. }
    ));
    assert!(matches!(
        sched.submit(plan, Priority::Normal, s1),
        Submission::Coalesced { .. }
    ));
    sched.resume();

    for (id, rx) in [(0u64, &rx0), (1u64, &rx1)] {
        let mut completed_seen = Vec::new();
        loop {
            match rx.recv_timeout(RECV_TIMEOUT).expect("event") {
                Response::Accepted { id: rid, .. } => assert_eq!(rid, id),
                Response::Progress {
                    id: rid,
                    completed,
                    total,
                    ..
                } => {
                    assert_eq!(rid, id);
                    assert_eq!(total, 5);
                    completed_seen.push(completed);
                }
                Response::Result {
                    id: rid, source, ..
                } => {
                    assert_eq!(rid, id);
                    assert_eq!(source, Source::Run);
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // Strictly increasing batch order, one event per batch, and
        // the result arrived only after the last batch.
        assert_eq!(completed_seen, vec![1, 2, 3, 4, 5], "subscriber {id}");
    }
    sched.shutdown();
}

#[test]
fn fixed_source_submissions_get_a_typed_unsupported_reject() {
    let sched = Scheduler::new(ServeConfig::default());
    let (sub, rx) = subscriber(0, false);
    let plan = RunPlan {
        mode: RunMode::FixedSource,
        ..tiny_plan(40)
    };
    assert!(matches!(
        sched.submit(plan, Priority::Normal, sub),
        Submission::Rejected(RejectReason::Unsupported { .. })
    ));
    assert!(matches!(
        rx.recv_timeout(RECV_TIMEOUT),
        Ok(Response::Rejected {
            reason: RejectReason::Unsupported { .. },
            ..
        })
    ));
    sched.shutdown();
}
