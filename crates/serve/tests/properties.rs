//! Property tests for the canonical plan hash and the line protocol.
//!
//! The hash properties are the soundness argument of the result cache
//! written as executable statements: stable through serialization,
//! blind to `policy`, sensitive to every physics field. The codec
//! properties are the `TrendError::Corrupt` discipline: round-trips
//! are exact and malformed frames yield typed errors, never panics.

use std::sync::Arc;

use mcs_core::engine::{Algorithm, DeviceRef, ModelSpec, PolicySpec, RunMode, RunPlan};
use mcs_core::{QueueingConfig, QueueingMode, TraversalKind};
use mcs_serve::hash::{canonical_text, hash_hex, parse_hash_hex, plan_hash};
use mcs_serve::protocol::{Priority, ProtoError, Request, Response, Source};
use mcs_serve::result::{ServedResult, TallySummary};
use proptest::prelude::*;

/// Build an arbitrary *valid* eigenvalue plan from flat primitives
/// (the vendored proptest has no derive, so the strategy is the
/// argument list and this constructor).
#[allow(clippy::too_many_arguments)]
fn build_plan(
    model: usize,
    algorithm: usize,
    particles: usize,
    inactive: usize,
    active: usize,
    seed: Option<u64>,
    survival: bool,
    entropy_mesh: (usize, usize, usize),
    mesh_tally: Option<(usize, usize, usize)>,
    spectrum: bool,
    checkpoint_every: Option<usize>,
    max_chain: usize,
    queueing_mode: usize,
    queueing_bins_pow: u32,
    fuel_split: bool,
    policy: usize,
) -> RunPlan {
    RunPlan {
        model: [ModelSpec::test(), ModelSpec::small(), ModelSpec::large()][model % 3].clone(),
        traversal: [TraversalKind::Flattened, TraversalKind::Nested][model % 2],
        algorithm: [Algorithm::History, Algorithm::EventBanking][algorithm % 2],
        mode: RunMode::Eigenvalue,
        particles: particles.max(1),
        inactive,
        active: if inactive == 0 { active.max(1) } else { active },
        seed,
        survival,
        entropy_mesh,
        mesh_tally,
        spectrum,
        checkpoint_every,
        max_chain: max_chain.max(1),
        queueing: QueueingConfig {
            mode: [
                QueueingMode::Off,
                QueueingMode::Material,
                QueueingMode::MaterialEnergy,
            ][queueing_mode % 3],
            energy_bins: 1usize << (queueing_bins_pow % 10),
            fuel_split,
        },
        policy: [
            PolicySpec::Serial,
            PolicySpec::Threaded { threads: 4 },
            PolicySpec::Distributed { ranks: 3 },
        ][policy % 3],
        device: DeviceRef::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_stable_through_toml_round_trip(
        model in 0usize..3, algorithm in 0usize..2,
        particles in 1usize..1_000_000, inactive in 0usize..50,
        active in 0usize..50, seed in any::<u64>(),
        survival in any::<bool>(),
        ex in 1usize..32, ey in 1usize..32, ez in 1usize..32,
        spectrum in any::<bool>(), max_chain in 1usize..1_000_000,
        qmode in 0usize..3, qbins in 0u32..10, fuel in any::<bool>(),
        policy in 0usize..3,
    ) {
        let plan = build_plan(
            model, algorithm, particles, inactive, active, Some(seed),
            survival, (ex, ey, ez), None, spectrum, None, max_chain,
            qmode, qbins, fuel, policy,
        );
        let back = RunPlan::from_toml(&plan.to_toml()).expect("emitted TOML parses");
        prop_assert_eq!(plan_hash(&plan), plan_hash(&back));
        prop_assert_eq!(canonical_text(&plan), canonical_text(&back));
    }

    #[test]
    fn hash_blind_to_policy_and_resolved_seed_form(
        threads in 0usize..64, ranks in 1usize..64,
    ) {
        let base = RunPlan::default();
        let h = plan_hash(&base);
        for policy in [
            PolicySpec::Serial,
            PolicySpec::Threaded { threads },
            PolicySpec::Distributed { ranks },
        ] {
            let p = RunPlan { policy, ..RunPlan::default() };
            prop_assert_eq!(plan_hash(&p), h);
        }
        // seed: None vs the explicit model default are the same run.
        let explicit = RunPlan {
            seed: Some(base.resolved_seed()),
            ..RunPlan::default()
        };
        prop_assert_eq!(plan_hash(&explicit), h);
    }

    #[test]
    fn hash_sensitive_to_every_physics_field(salt in any::<u64>()) {
        let base = build_plan(
            0, 0, 2_000, 3, 5, Some(salt), false, (8, 8, 4), None,
            false, None, 100_000, 0, 7, false, 0,
        );
        let h = plan_hash(&base);
        let variants: Vec<(&str, RunPlan)> = vec![
            ("model", RunPlan { model: ModelSpec::small(), ..base.clone() }),
            ("model.overrides", RunPlan {
                model: ModelSpec {
                    overrides: mcs_core::engine::ModelOverrides {
                        enrichment: Some(1.1),
                        ..Default::default()
                    },
                    ..base.model.clone()
                },
                ..base.clone()
            }),
            ("traversal", RunPlan { traversal: TraversalKind::Nested, ..base.clone() }),
            ("algorithm", RunPlan { algorithm: Algorithm::EventBanking, ..base.clone() }),
            ("particles", RunPlan { particles: base.particles + 1, ..base.clone() }),
            ("inactive", RunPlan { inactive: base.inactive + 1, ..base.clone() }),
            ("active", RunPlan { active: base.active + 1, ..base.clone() }),
            ("seed", RunPlan { seed: Some(salt ^ 1), ..base.clone() }),
            ("survival", RunPlan { survival: true, ..base.clone() }),
            ("entropy_mesh", RunPlan { entropy_mesh: (8, 8, 5), ..base.clone() }),
            ("mesh_tally", RunPlan { mesh_tally: Some((4, 4, 2)), ..base.clone() }),
            ("spectrum", RunPlan { spectrum: true, ..base.clone() }),
            ("checkpoint_every", RunPlan { checkpoint_every: Some(2), ..base.clone() }),
            ("max_chain", RunPlan { max_chain: base.max_chain + 1, ..base.clone() }),
            ("queueing.mode", RunPlan {
                queueing: QueueingConfig { mode: QueueingMode::Material, ..base.queueing },
                ..base.clone()
            }),
            ("queueing.energy_bins", RunPlan {
                queueing: QueueingConfig { energy_bins: 256, ..base.queueing },
                ..base.clone()
            }),
            ("queueing.fuel_split", RunPlan {
                queueing: QueueingConfig { fuel_split: true, ..base.queueing },
                ..base.clone()
            }),
        ];
        for (field, variant) in variants {
            prop_assert_ne!(plan_hash(&variant), h, "field {} must perturb the hash", field);
        }
    }

    #[test]
    fn hash_hex_round_trips(h in any::<u64>()) {
        prop_assert_eq!(parse_hash_hex(&hash_hex(h)), Some(h));
    }

    #[test]
    fn request_codec_round_trips(
        model in 0usize..3, algorithm in 0usize..2,
        particles in 1usize..100_000, inactive in 0usize..20,
        active in 0usize..20, seed in any::<u64>(),
        survival in any::<bool>(), spectrum in any::<bool>(),
        qmode in 0usize..3, qbins in 0u32..10, fuel in any::<bool>(),
        policy in 0usize..3, high in any::<bool>(), progress in any::<bool>(),
    ) {
        let plan = build_plan(
            model, algorithm, particles, inactive, active, Some(seed),
            survival, (4, 4, 4), Some((3, 3, 3)), spectrum, Some(2),
            1_000, qmode, qbins, fuel, policy,
        );
        let req = Request::Submit {
            plan: Box::new(plan),
            priority: if high { Priority::High } else { Priority::Normal },
            progress,
        };
        prop_assert_eq!(Request::parse(&req.to_line()).expect("round trip"), req);
    }

    #[test]
    fn result_codec_round_trips_bitwise(
        plan_hash in any::<u64>(), batches in 0u64..32,
        k_bits in prop::collection::vec(any::<u64>(), 0..8),
        // Counters ride as JSON numbers: exact below 2^53 (see the
        // protocol module docs); full-width u64s ride as hex strings.
        id in 0u64..(1 << 53), source in 0usize..4,
        n_particles in 0u64..(1 << 53), track_bits in any::<u64>(),
    ) {
        let result = ServedResult {
            plan_hash,
            batches,
            k_mean_bits: k_bits.first().copied().unwrap_or(0),
            k_std_bits: k_bits.last().copied().unwrap_or(u64::MAX),
            k_history_bits: k_bits.clone(),
            entropy_bits: k_bits.iter().map(|b| b ^ 0x5555).collect(),
            tallies: TallySummary {
                n_particles,
                segments: n_particles / 2,
                collisions: 3,
                absorptions: 2,
                fissions: 1,
                leaks: 0,
                segments_by_material: [n_particles % 97; 8],
                collisions_by_material: [n_particles % 89; 8],
                track_length_bits: track_bits,
                k_track_bits: !track_bits,
                k_collision_bits: track_bits ^ 0xff,
                k_absorption_bits: track_bits.rotate_left(13),
            },
        };
        let resp = Response::Result {
            id,
            source: [Source::Cache, Source::Coalesced, Source::Scheduled, Source::Run][source],
            result: Arc::new(result),
        };
        prop_assert_eq!(Response::parse(&resp.to_line()).expect("round trip"), resp);
    }

    #[test]
    fn garbage_frames_yield_typed_errors_never_panics(
        bytes in prop::collection::vec(32u8..127, 0..200),
    ) {
        // Arbitrary printable garbage: decoding must return, and when
        // it errors the error is one of the typed variants.
        let junk: String = bytes.iter().map(|&b| b as char).collect();
        if let Err(e) = Request::parse(&junk) {
            prop_assert!(matches!(
                e,
                ProtoError::Corrupt { .. } | ProtoError::Invalid { .. } | ProtoError::BadPlan { .. }
            ));
        }
        if let Err(e) = Response::parse(&junk) {
            prop_assert!(matches!(
                e,
                ProtoError::Corrupt { .. } | ProtoError::Invalid { .. } | ProtoError::BadPlan { .. }
            ));
        }
    }

    #[test]
    fn truncated_frames_error_not_panic(cut in 0usize..400, req_not_resp in any::<bool>()) {
        let line = if req_not_resp {
            Request::Submit {
                plan: Box::new(RunPlan::default()),
                priority: Priority::Normal,
                progress: true,
            }
            .to_line()
        } else {
            Response::Accepted {
                id: 7,
                plan_hash: 0xdead_beef,
                source: Source::Scheduled,
            }
            .to_line()
        };
        let cut = cut.min(line.len());
        if line.is_char_boundary(cut) && cut < line.len() {
            let frag = &line[..cut];
            prop_assert!(Request::parse(frag).is_err());
            prop_assert!(Response::parse(frag).is_err());
        }
    }
}
