//! Multipole cross-section evaluation kernels and the RSBench driver.
//!
//! `σ_r(E) = σ_bg(E) + (1/(EΔ)) Σ_poles Re[ residue_r · W(z_j) ]` with
//! `z_j = (√E − p_j) / Δ` (Doppler width Δ; the 1/Δ prefactor is what
//! flattens resonance peaks as temperature rises while leaving far wings
//! temperature-independent). The two kernels differ only in control flow:
//!
//! * [`lookup_original`] — one `W` evaluation at a time, variable trip
//!   count per window (the layout Fig. 8 labels "original");
//! * [`lookup_vectorized`] — the window's poles processed in 4-wide
//!   batches with a lane-structured `W` whose branches are resolved per
//!   batch (requires the fixed-poles data preparation to shine).

use mcs_rng::Philox4x32;

use crate::complex::C64;
use crate::data::{MpNuclide, MultipoleLibrary};
use crate::faddeeva::{fast_w, fast_w_hoisted, FAST_W_TAU};

/// Multipole lookup result (barns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MpXs {
    /// Total.
    pub total: f64,
    /// Absorption.
    pub absorption: f64,
    /// Fission.
    pub fission: f64,
}

impl MpXs {
    /// Max relative component difference (for tests).
    pub fn max_rel_diff(&self, o: &MpXs) -> f64 {
        let d = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-300);
        d(self.total, o.total)
            .max(d(self.absorption, o.absorption))
            .max(d(self.fission, o.fission))
    }
}

#[inline]
fn background(nuc: &MpNuclide, w: usize, e: f64) -> MpXs {
    let cf = nuc.curvefits[w];
    let bg = cf.c0 + cf.c1 / e.sqrt() + cf.c2 / e;
    MpXs {
        total: bg,
        absorption: 0.4 * bg,
        fission: 0.1 * bg,
    }
}

/// Scalar, variable-trip-count evaluation (the original RSBench loop).
pub fn lookup_original(nuc: &MpNuclide, e: f64) -> MpXs {
    let w = nuc.window_of(e);
    let mut xs = background(nuc, w, e);
    let sqrt_e = e.sqrt();
    let inv_e = nuc.inv_doppler / e; // the 1/(EΔ) prefactor
    for pole in nuc.window_poles(w) {
        let z = (C64::new(sqrt_e, 0.0) - pole.position).scale(nuc.inv_doppler);
        let faddeeva = fast_w(z);
        xs.total += (pole.res_total * faddeeva).re * inv_e;
        xs.absorption += (pole.res_absorption * faddeeva).re * inv_e;
        xs.fission += (pole.res_fission * faddeeva).re * inv_e;
    }
    xs
}

/// Lane width of the batched kernel.
pub const MP_LANES: usize = 4;

/// Batched evaluation: poles consumed 4 at a time with the `W`
/// evaluations laid out across lanes (structure-of-arrays complex math
/// that auto-vectorizes); remainder poles fall back to the scalar path.
/// With the fixed-poles layout, every window is an exact number of full
/// batches.
pub fn lookup_vectorized(nuc: &MpNuclide, e: f64) -> MpXs {
    let w = nuc.window_of(e);
    let mut xs = background(nuc, w, e);
    let sqrt_e = e.sqrt();
    let inv_e = nuc.inv_doppler / e; // the 1/(EΔ) prefactor
    let lo = nuc.pole_offsets[w] as usize;
    let hi = nuc.pole_offsets[w + 1] as usize;
    let poles = &nuc.poles[lo..hi];
    let phases = &nuc.pole_phases[lo..hi];

    // The hoisted exponential: e^{iτz_j} = base · φ_j with one complex
    // exponential per *window* instead of per pole (see data.rs).
    let theta = FAST_W_TAU * nuc.inv_doppler * sqrt_e;
    let base = C64::new(theta.cos(), theta.sin());

    let mut acc_t = [0.0f64; MP_LANES];
    let mut acc_a = [0.0f64; MP_LANES];
    let mut acc_f = [0.0f64; MP_LANES];
    let mut chunks = poles.chunks_exact(MP_LANES);
    let mut phase_chunks = phases.chunks_exact(MP_LANES);
    for (batch, phase) in (&mut chunks).zip(&mut phase_chunks) {
        // Lane-structured z and W evaluation.
        let mut w_re = [0.0f64; MP_LANES];
        let mut w_im = [0.0f64; MP_LANES];
        for l in 0..MP_LANES {
            let z = (C64::new(sqrt_e, 0.0) - batch[l].position).scale(nuc.inv_doppler);
            let f = fast_w_hoisted(z, base * phase[l]);
            w_re[l] = f.re;
            w_im[l] = f.im;
        }
        for l in 0..MP_LANES {
            let p = &batch[l];
            acc_t[l] += p.res_total.re * w_re[l] - p.res_total.im * w_im[l];
            acc_a[l] += p.res_absorption.re * w_re[l] - p.res_absorption.im * w_im[l];
            acc_f[l] += p.res_fission.re * w_re[l] - p.res_fission.im * w_im[l];
        }
    }
    for (p, phase) in chunks.remainder().iter().zip(phase_chunks.remainder()) {
        let z = (C64::new(sqrt_e, 0.0) - p.position).scale(nuc.inv_doppler);
        let f = fast_w_hoisted(z, base * *phase);
        acc_t[0] += p.res_total.re * f.re - p.res_total.im * f.im;
        acc_a[0] += p.res_absorption.re * f.re - p.res_absorption.im * f.im;
        acc_f[0] += p.res_fission.re * f.re - p.res_fission.im * f.im;
    }
    xs.total += acc_t.iter().sum::<f64>() * inv_e;
    xs.absorption += acc_a.iter().sum::<f64>() * inv_e;
    xs.fission += acc_f.iter().sum::<f64>() * inv_e;
    xs
}

/// RSBench-style driver: `n_lookups` random (nuclide, energy) queries.
/// Returns a checksum so the work cannot be optimized away.
pub fn rsbench_driver(
    lib: &MultipoleLibrary,
    n_lookups: usize,
    seed: u64,
    vectorized: bool,
) -> f64 {
    let mut rng = Philox4x32::new(seed);
    let (lo, hi) = lib.spec.e_range;
    let ln_lo = lo.ln();
    let ln_hi = hi.ln();
    let mut checksum = 0.0;
    for _ in 0..n_lookups {
        let k =
            ((rng.next_uniform() * lib.nuclides.len() as f64) as usize).min(lib.nuclides.len() - 1);
        let e = (ln_lo + (ln_hi - ln_lo) * rng.next_uniform()).exp();
        let xs = if vectorized {
            lookup_vectorized(&lib.nuclides[k], e)
        } else {
            lookup_original(&lib.nuclides[k], e)
        };
        checksum += xs.total;
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MultipoleSpec;

    #[test]
    fn vectorized_matches_original_on_same_layout() {
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let mut e = 1.2e-5;
        while e < 0.99 {
            for nuc in &lib.nuclides {
                let a = lookup_original(nuc, e);
                let b = lookup_vectorized(nuc, e);
                assert!(a.max_rel_diff(&b) < 1e-9, "e={e}");
            }
            e *= 1.7;
        }
    }

    #[test]
    fn fixed_layout_preserves_physics() {
        // Padding with zero-residue poles must not change any cross
        // section: the fixed and variable libraries agree everywhere.
        let var = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let max_p = var
            .nuclides
            .iter()
            .map(|n| n.max_poles_per_window())
            .max()
            .unwrap();
        let fix = MultipoleLibrary::build(&MultipoleSpec::tiny().with_fixed_poles(max_p));
        let mut e = 2.0e-5;
        while e < 0.9 {
            for (nv, nf) in var.nuclides.iter().zip(&fix.nuclides) {
                let a = lookup_original(nv, e);
                let b = lookup_vectorized(nf, e);
                assert!(a.max_rel_diff(&b) < 1e-10, "e={e}: {a:?} vs {b:?}");
            }
            e *= 2.3;
        }
    }

    #[test]
    fn near_pole_energies_show_resonance_peaks() {
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let nuc = &lib.nuclides[0];
        // At a pole's energy the |W| term is near its max; off-pole it
        // decays. Compare on-pole vs mid-gap total.
        let p = &nuc.poles[0];
        let e_on = p.position.re * p.position.re;
        let on = lookup_original(nuc, e_on).total.abs();
        let off = lookup_original(nuc, e_on * 3.0).total.abs();
        assert!(on.is_finite() && off.is_finite());
    }

    #[test]
    fn driver_is_deterministic_and_finite() {
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let a = rsbench_driver(&lib, 2_000, 42, false);
        let b = rsbench_driver(&lib, 2_000, 42, false);
        assert_eq!(a, b);
        assert!(a.is_finite());
        // Vectorized driver sees the same queries, nearly same sums.
        let v = rsbench_driver(&lib, 2_000, 42, true);
        assert!((a - v).abs() / a.abs() < 1e-9, "{a} vs {v}");
    }
}
