//! Minimal complex arithmetic for the Faddeeva kernels.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number in `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The imaginary unit.
    pub const I: C64 = C64::new(0.0, 1.0);

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Square root (principal branch).
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Scale by a real.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, o: C64) -> C64 {
        let d = o.norm_sqr();
        C64::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z * z.conj(), C64::new(25.0, 0.0));
        assert!(close(z / z, C64::new(1.0, 0.0), 1e-15));
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = C64::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, C64::new(-1.0, 0.0), 1e-15));
    }

    #[test]
    fn sqrt_squares_back() {
        for z in [
            C64::new(2.0, 3.0),
            C64::new(-1.0, 0.5),
            C64::new(-4.0, -0.1),
            C64::new(0.0, 1.0),
        ] {
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "{z:?}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }
}
