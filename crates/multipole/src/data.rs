//! Synthesized windowed-multipole libraries.
//!
//! Each nuclide's resolved range is cut into energy windows; each window
//! holds poles (complex position + one complex residue per reaction) plus
//! a background curve-fit polynomial. Two layouts are generated:
//!
//! * **variable** poles per window (Poisson-ish counts) — the original
//!   RSBench layout, whose inner-loop trip count changes per lookup and
//!   defeats vectorization (Fig. 8 "original");
//! * **fixed** poles per window — the preparation the paper proposes
//!   ("exploring the viability of whether multipole expansion data can be
//!   prepared to have a constant number of poles per window"), padding
//!   with zero-residue poles so every window evaluates the same count.

use mcs_rng::Philox4x32;

use crate::complex::C64;

/// One pole: position in √E space and residues for three reactions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pole {
    /// Pole position (complex, in √E).
    pub position: C64,
    /// Total-XS residue.
    pub res_total: C64,
    /// Absorption residue.
    pub res_absorption: C64,
    /// Fission residue.
    pub res_fission: C64,
}

/// Background curve-fit for one window: `σ_bg(E) = c0 + c1/√E + c2/E`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Curvefit {
    /// Constant term.
    pub c0: f64,
    /// `1/√E` coefficient.
    pub c1: f64,
    /// `1/E` coefficient.
    pub c2: f64,
}

/// One nuclide's windowed pole data.
#[derive(Debug, Clone)]
pub struct MpNuclide {
    /// Window boundaries in energy (MeV), `n_windows + 1` entries,
    /// ascending.
    pub window_edges: Vec<f64>,
    /// Flat pole storage.
    pub poles: Vec<Pole>,
    /// `pole_offsets[w]..pole_offsets[w+1]` = window `w`'s poles.
    pub pole_offsets: Vec<u32>,
    /// Per-window background fits.
    pub curvefits: Vec<Curvefit>,
    /// Precomputed pole phases `φ_j = e^{−iτ·invDoppler·p_j}`, parallel to
    /// `poles` — the hoisted-exponential preparation used by the
    /// vectorized kernel.
    pub pole_phases: Vec<C64>,
    /// Doppler broadening width (1/√MeV scale factor on z).
    pub inv_doppler: f64,
}

impl MpNuclide {
    /// Window index for energy `e` (clamped).
    #[inline]
    pub fn window_of(&self, e: f64) -> usize {
        let n = self.window_edges.len() - 1;
        crate::data::lower_bound(&self.window_edges, e).min(n - 1)
    }

    /// Poles of window `w`.
    #[inline]
    pub fn window_poles(&self, w: usize) -> &[Pole] {
        &self.poles[self.pole_offsets[w] as usize..self.pole_offsets[w + 1] as usize]
    }

    /// Maximum poles in any window.
    pub fn max_poles_per_window(&self) -> usize {
        self.pole_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

/// Reference temperature (K) at which libraries are synthesized.
pub const REFERENCE_TEMPERATURE_K: f64 = 293.6;

impl MpNuclide {
    /// Re-broaden this nuclide's data to a new temperature.
    ///
    /// This is the multipole method's whole point (§IV-B): temperature
    /// enters only through the Doppler width Δ ∝ √(kT), i.e. a rescaled
    /// `inv_doppler` — no new tables. The precomputed pole phases depend
    /// on `inv_doppler`, so they are rebuilt here.
    pub fn at_temperature(&self, temperature_k: f64) -> MpNuclide {
        assert!(temperature_k > 0.0);
        let scale = (REFERENCE_TEMPERATURE_K / temperature_k).sqrt();
        let inv_doppler = self.inv_doppler * scale;
        let tau = crate::faddeeva::FAST_W_TAU;
        let pole_phases = self
            .poles
            .iter()
            .map(|p| ((-C64::I) * p.position.scale(tau * inv_doppler)).exp())
            .collect();
        MpNuclide {
            window_edges: self.window_edges.clone(),
            poles: self.poles.clone(),
            pole_offsets: self.pole_offsets.clone(),
            curvefits: self.curvefits.clone(),
            pole_phases,
            inv_doppler,
        }
    }
}

pub(crate) fn lower_bound(a: &[f64], x: f64) -> usize {
    a.partition_point(|&e| e <= x).saturating_sub(1)
}

/// Library synthesis parameters.
#[derive(Debug, Clone)]
pub struct MultipoleSpec {
    /// Number of nuclides.
    pub n_nuclides: usize,
    /// Windows per nuclide.
    pub n_windows: usize,
    /// Mean poles per window.
    pub mean_poles: usize,
    /// Fixed pole count per window (`None` = variable, the original
    /// layout).
    pub fixed_poles: Option<usize>,
    /// Energy range (MeV).
    pub e_range: (f64, f64),
    /// Seed.
    pub seed: u64,
}

impl MultipoleSpec {
    /// An RSBench-"large"-like configuration with variable windows.
    pub fn rsbench_like() -> Self {
        Self {
            n_nuclides: 68,
            n_windows: 100,
            mean_poles: 4,
            fixed_poles: None,
            e_range: (1e-5, 1.0),
            seed: 0x085b_e4c4,
        }
    }

    /// Small configuration for tests.
    pub fn tiny() -> Self {
        Self {
            n_nuclides: 4,
            n_windows: 8,
            mean_poles: 3,
            fixed_poles: None,
            e_range: (1e-5, 1.0),
            seed: 7,
        }
    }

    /// Same data prepared with a constant pole count per window.
    pub fn with_fixed_poles(mut self, p: usize) -> Self {
        self.fixed_poles = Some(p);
        self
    }
}

/// A multipole library.
#[derive(Debug, Clone)]
pub struct MultipoleLibrary {
    /// The nuclides.
    pub nuclides: Vec<MpNuclide>,
    /// The spec used to build it.
    pub spec: MultipoleSpec,
}

impl MultipoleLibrary {
    /// Synthesize. Deterministic in the spec. Crucially, the *physical*
    /// poles for fixed and variable layouts are identical given the same
    /// seed — fixed layouts just pad with zero-residue poles — so the
    /// two evaluation paths must agree numerically (tested).
    pub fn build(spec: &MultipoleSpec) -> Self {
        let mut nuclides = Vec::with_capacity(spec.n_nuclides);
        for k in 0..spec.n_nuclides {
            let mut rng = Philox4x32::new(spec.seed ^ (k as u64) << 8);
            let (lo, hi) = spec.e_range;
            let ln_lo = lo.ln();
            let ln_hi = hi.ln();
            let n_w = spec.n_windows;
            let window_edges: Vec<f64> = (0..=n_w)
                .map(|i| (ln_lo + (ln_hi - ln_lo) * i as f64 / n_w as f64).exp())
                .collect();

            let mut poles = Vec::new();
            let mut pole_offsets = vec![0u32];
            let mut curvefits = Vec::with_capacity(n_w);
            for w in 0..n_w {
                // Variable count: 1 + geometric-ish draw around the mean.
                let n_p = 1 + (rng.next_uniform() * (2.0 * spec.mean_poles as f64 - 1.0)) as usize;
                let e0 = window_edges[w];
                let e1 = window_edges[w + 1];
                for _ in 0..n_p {
                    let e_pole = e0 + (e1 - e0) * rng.next_uniform();
                    // Physical multipoles sit below the real axis, so
                    // z = (√E − p)·s lands in W's upper half-plane.
                    let width = 1e-3 + 5e-3 * rng.next_uniform();
                    poles.push(Pole {
                        position: C64::new(e_pole.sqrt(), -width),
                        res_total: C64::new(
                            10.0 + 90.0 * rng.next_uniform(),
                            -50.0 * rng.next_uniform(),
                        ),
                        res_absorption: C64::new(
                            5.0 + 30.0 * rng.next_uniform(),
                            -20.0 * rng.next_uniform(),
                        ),
                        res_fission: C64::new(
                            2.0 + 20.0 * rng.next_uniform(),
                            -10.0 * rng.next_uniform(),
                        ),
                    });
                }
                // Padding to the fixed count (zero residues contribute 0).
                if let Some(fixed) = spec.fixed_poles {
                    for _ in n_p..fixed {
                        // Below the real axis like every physical pole, so
                        // its (zero-residue) W evaluation stays finite.
                        poles.push(Pole {
                            position: C64::new((0.5 * (e0 + e1)).sqrt(), -1.0),
                            ..Pole::default()
                        });
                    }
                    assert!(
                        n_p <= fixed,
                        "window has {n_p} poles, exceeding the fixed budget {fixed}"
                    );
                }
                pole_offsets.push(poles.len() as u32);
                curvefits.push(Curvefit {
                    c0: 5.0 + 5.0 * rng.next_uniform(),
                    c1: 1.0 * rng.next_uniform(),
                    c2: 1e-4 * rng.next_uniform(),
                });
            }

            let inv_doppler = 50.0; // 1/Δ, Δ ≈ Doppler width in √E
            let tau = crate::faddeeva::FAST_W_TAU;
            let pole_phases = poles
                .iter()
                .map(|p| ((-C64::I) * p.position.scale(tau * inv_doppler)).exp())
                .collect();
            nuclides.push(MpNuclide {
                window_edges,
                poles,
                pole_offsets,
                curvefits,
                pole_phases,
                inv_doppler,
            });
        }
        Self {
            nuclides,
            spec: spec.clone(),
        }
    }

    /// Total poles stored.
    pub fn total_poles(&self) -> usize {
        self.nuclides.iter().map(|n| n.poles.len()).sum()
    }

    /// In-memory footprint of the pole data, bytes (8 complex f64 per
    /// pole + phase, plus edges and curvefits) — the §IV-B "remarkably
    /// low memory cost" side of the multipole trade.
    pub fn data_bytes(&self) -> usize {
        self.nuclides
            .iter()
            .map(|n| {
                n.poles.len() * std::mem::size_of::<Pole>()
                    + n.pole_phases.len() * 16
                    + n.window_edges.len() * 8
                    + n.curvefits.len() * std::mem::size_of::<Curvefit>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let b = MultipoleLibrary::build(&MultipoleSpec::tiny());
        assert_eq!(a.total_poles(), b.total_poles());
        assert_eq!(a.nuclides[0].poles[3], b.nuclides[0].poles[3]);
    }

    #[test]
    fn windows_partition_the_range() {
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let n = &lib.nuclides[0];
        assert_eq!(n.window_edges.len(), 9);
        for w in n.window_edges.windows(2) {
            assert!(w[0] < w[1]);
        }
        // window_of maps energies into the right slots.
        assert_eq!(n.window_of(1e-5), 0);
        assert_eq!(n.window_of(0.9999), 7);
        let mid = 0.5 * (n.window_edges[3] + n.window_edges[4]);
        assert_eq!(n.window_of(mid), 3);
    }

    #[test]
    fn variable_layout_has_ragged_windows() {
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let n = &lib.nuclides[0];
        let counts: Vec<usize> = (0..8).map(|w| n.window_poles(w).len()).collect();
        assert!(counts.iter().any(|&c| c != counts[0]), "{counts:?}");
    }

    #[test]
    fn fixed_layout_is_rectangular_and_larger() {
        let var = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let max_p = var
            .nuclides
            .iter()
            .map(|n| n.max_poles_per_window())
            .max()
            .unwrap();
        let fix = MultipoleLibrary::build(&MultipoleSpec::tiny().with_fixed_poles(max_p));
        for n in &fix.nuclides {
            for w in 0..n.window_edges.len() - 1 {
                assert_eq!(n.window_poles(w).len(), max_p);
            }
        }
        assert!(fix.total_poles() >= var.total_poles());
    }

    #[test]
    fn doppler_broadening_flattens_resonance_peaks() {
        use crate::lookup::lookup_original;
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let cold = &lib.nuclides[0];
        let hot = cold.at_temperature(1200.0);
        assert!(hot.inv_doppler < cold.inv_doppler);

        // Find a pole and compare on-peak vs wing response.
        let p = cold.poles[0];
        let e_peak = p.position.re * p.position.re;
        let on_cold = lookup_original(cold, e_peak).total;
        let on_hot = lookup_original(&hot, e_peak).total;
        // Hot peaks are lower...
        assert!(
            on_hot.abs() < on_cold.abs(),
            "peak should flatten: cold {on_cold} hot {on_hot}"
        );
        // ...and hot wings are higher (probe a few Doppler widths out).
        let de = 4.0 / cold.inv_doppler; // in sqrt-E units
        let e_wing = (p.position.re + de) * (p.position.re + de);
        let wing_cold = lookup_original(cold, e_wing).total;
        let wing_hot = lookup_original(&hot, e_wing).total;
        assert!(
            (wing_hot - wing_cold).abs() / wing_cold.abs().max(1e-12) > 1e-3,
            "wing must respond to temperature"
        );
    }

    #[test]
    fn rebroadened_data_keeps_kernel_agreement() {
        use crate::lookup::{lookup_original, lookup_vectorized};
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let hot = lib.nuclides[1].at_temperature(900.0);
        let mut e = 2e-5;
        while e < 0.9 {
            let a = lookup_original(&hot, e);
            let b = lookup_vectorized(&hot, e);
            assert!(a.max_rel_diff(&b) < 1e-9, "e={e}");
            e *= 2.1;
        }
    }

    #[test]
    fn reference_temperature_is_identity() {
        let lib = MultipoleLibrary::build(&MultipoleSpec::tiny());
        let same = lib.nuclides[0].at_temperature(REFERENCE_TEMPERATURE_K);
        assert!((same.inv_doppler - lib.nuclides[0].inv_doppler).abs() < 1e-12);
    }

    #[test]
    fn multipole_memory_is_a_tiny_fraction_of_pointwise() {
        // The method's motivation: temperature-dependent data at low
        // memory cost. Compare an RSBench-like pole library against a
        // comparable pointwise library's flattened arrays.
        let mp = MultipoleLibrary::build(&MultipoleSpec::rsbench_like());
        // A pointwise nuclide at test fidelity: ~1,000 points × 5 arrays
        // × 8 B ≈ 40 kB; evaluated-data fidelity is 100x that. Per
        // nuclide, poles cost:
        let mp_per_nuclide = mp.data_bytes() / mp.nuclides.len();
        assert!(
            mp_per_nuclide < 60_000,
            "pole data {mp_per_nuclide} B/nuclide"
        );
        // And it carries temperature dependence for free, where pointwise
        // data would need a full grid per temperature point.
    }

    #[test]
    #[should_panic(expected = "exceeding the fixed budget")]
    fn underprovisioned_fixed_budget_panics() {
        let _ = MultipoleLibrary::build(&MultipoleSpec::tiny().with_fixed_poles(1));
    }
}
