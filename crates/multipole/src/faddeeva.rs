//! The Faddeeva function `W(z) = e^{−z²} erfc(−iz)` for `Im z ≥ 0`.
//!
//! Implements exactly RSBench's `fast_nuclear_W` split:
//!
//! * `|z| < 6` — the Abrarov & Quine (2011) rational series with
//!   `τ = 12`, `N = 10` terms (relative accuracy ~1e-5 near the real
//!   axis, where multipole evaluation lives, degrading to ~1e-3 at the
//!   top of the disc);
//! * `|z| ≥ 6` — Hwang's two-pole asymptotic form, which is what makes
//!   the multipole method cheap far from resonances.
//!
//! A slow reference implementation ([`w_reference`]) based on a
//! high-order Gauss–Hermite style pole expansion validates both branches
//! in the tests.

use crate::complex::C64;

const TAU: f64 = 12.0;
const N_TERMS: usize = 10;

/// Abrarov–Quine series coefficients `a_n = (2√π/τ)·exp(−n²π²/τ²)`.
fn aq_coefficient(n: usize) -> f64 {
    let pi = std::f64::consts::PI;
    let sqrt_pi = pi.sqrt();
    2.0 * sqrt_pi / TAU * (-((n as f64) * pi / TAU).powi(2)).exp()
}

/// The `τ` used by the fast series (needed by callers that hoist the
/// `e^{iτz}` factor — see [`fast_w_hoisted`]).
pub const FAST_W_TAU: f64 = TAU;

/// Fast `W(z)` — RSBench's `fast_nuclear_W`. Valid for `Im z ≥ 0`.
pub fn fast_w(z: C64) -> C64 {
    if z.abs() < 6.0 {
        aq_series(z, (C64::I * z.scale(TAU)).exp())
    } else {
        asymptotic_w(z)
    }
}

/// `W(z)` with the caller supplying `e^{iτz}` (τ = [`FAST_W_TAU`]).
///
/// The multipole kernels exploit `e^{iτz_j} = e^{iτ·s·√E} · φ_j` where
/// `φ_j = e^{−iτ·s·p_j}` is a *pole constant*: one complex exponential per
/// window instead of one per pole. This is the data preparation that makes
/// the Fig. 8 "vectorized" variant fast.
#[inline]
pub fn fast_w_hoisted(z: C64, e_itz: C64) -> C64 {
    if z.abs() < 6.0 {
        aq_series(z, e_itz)
    } else {
        asymptotic_w(z)
    }
}

/// Abrarov–Quine with τ = 12, N = 10:
///   W(z) = i(1 − e^{iτz})/(τz)
///        + (iτ²z/√π) Σ_n a_n ((−1)^n e^{iτz} − 1)/(n²π² − τ²z²)
/// (RSBench's prefactor 81.2433·i is exactly τ²/√π for τ = 12.)
#[inline]
fn aq_series(z: C64, e: C64) -> C64 {
    let pi = std::f64::consts::PI;
    let one = C64::from(1.0);
    let mut w = (C64::I * (one - e)) / z.scale(TAU);
    let tz2 = (z * z).scale(TAU * TAU);
    let mut sign = -1.0;
    for n in 1..=N_TERMS {
        let a_n = aq_coefficient(n);
        let num = e.scale(sign) - one;
        let den = C64::from((n as f64 * pi).powi(2)) - tz2;
        w = w + (C64::I * z).scale(TAU * TAU * a_n / pi.sqrt()) * (num / den);
        sign = -sign;
    }
    w
}

#[inline]
fn asymptotic_w(z: C64) -> C64 {
    {
        // Two-pole asymptotic form (Hwang 1987 / RSBench QUICK_W).
        const A1: f64 = 0.512_424_224_754_768_5;
        const B1: f64 = 0.275_255_128_608_411;
        const A2: f64 = 0.051_765_358_792_987_82;
        const B2: f64 = 2.724_744_871_391_589;
        let z2 = z * z;
        let term = (C64::from(A1) / (z2 - C64::from(B1))) + (C64::from(A2) / (z2 - C64::from(B2)));
        C64::I * z * term
    }
}

#[cfg(test)]
mod hoisted_tests {
    use super::*;

    #[test]
    fn hoisted_exp_matches_direct() {
        for &(x, y) in &[(0.5, 0.1), (-2.0, 1.5), (4.0, 0.01), (7.0, 1.0)] {
            let z = C64::new(x, y);
            let e = (C64::I * z.scale(FAST_W_TAU)).exp();
            let a = fast_w(z);
            let b = fast_w_hoisted(z, e);
            assert!((a - b).abs() <= 1e-14 * a.abs().max(1.0), "z={z:?}");
        }
    }

    #[test]
    fn factored_exp_is_numerically_equivalent() {
        // e^{iτ(u+v)} via e^{iτu}·e^{iτv} — the hoisting identity.
        let u = C64::new(0.3, 0.2);
        let v = C64::new(-1.1, 0.05);
        let direct = (C64::I * (u + v).scale(FAST_W_TAU)).exp();
        let split = (C64::I * u.scale(FAST_W_TAU)).exp() * (C64::I * v.scale(FAST_W_TAU)).exp();
        assert!((direct - split).abs() < 1e-13 * direct.abs());
        let w1 = fast_w_hoisted(u + v, direct);
        let w2 = fast_w_hoisted(u + v, split);
        assert!((w1 - w2).abs() < 1e-12 * w1.abs().max(1e-30));
    }
}

/// Slow, accurate reference: a 24-pole Gauss–Hermite-style expansion
/// (Poppe–Wijers flavour). Used only by tests and accuracy studies.
pub fn w_reference(z: C64) -> C64 {
    // For small |z| use the Taylor/Maclaurin-free approach via
    // the continued-fraction Laplace expansion when far, and a
    // high-N Abrarov–Quine (τ = 24, N = 40) when near. The τ=24 series
    // is accurate to ~1e-13 on |z| < 12.
    let pi = std::f64::consts::PI;
    let tau = 24.0;
    let n_terms = 40;
    if z.abs() < 12.0 {
        let itz = C64::I * z.scale(tau);
        let e = itz.exp();
        let one = C64::from(1.0);
        let mut w = (C64::I * (one - e)) / z.scale(tau);
        let tz2 = (z * z).scale(tau * tau);
        let mut sign = -1.0;
        for n in 1..=n_terms {
            let a_n = 2.0 * pi.sqrt() / tau * (-((n as f64) * pi / tau).powi(2)).exp();
            let num = e.scale(sign) - one;
            let den = C64::from((n as f64 * pi).powi(2)) - tz2;
            w = w + (C64::I * z).scale(tau * tau * a_n / pi.sqrt()) * (num / den);
            sign = -sign;
        }
        w
    } else {
        // Laplace continued fraction, excellent for large |z|.
        let mut r = C64::default();
        for k in (1..=12u32).rev() {
            r = C64::from(k as f64 * 0.5) / (z - r);
        }
        (C64::I / (z - r)).scale(1.0 / pi.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn known_values_on_real_axis() {
        // w(x) = e^{−x²} + 2i·D(x)/√π with Dawson's integral D.
        // w(1) = 0.36787944 + 0.60715770 i
        let w1 = fast_w(C64::new(1.0, 0.0));
        assert!(
            close(w1, C64::new(0.367_879_441, 0.607_157_705), 5e-5),
            "{w1:?}"
        );
        // w(2) = 0.01831564 + 0.34002647 i
        let w2 = fast_w(C64::new(2.0, 0.0));
        assert!(
            close(w2, C64::new(0.018_315_639, 0.340_026_47), 5e-5),
            "{w2:?}"
        );
    }

    #[test]
    fn known_values_on_imaginary_axis() {
        // w(iy) = e^{y²} erfc(y): w(i) = 0.42758358; w(2i) = 0.25539568.
        let wi = fast_w(C64::new(0.0, 1.0));
        assert!(close(wi, C64::new(0.427_583_58, 0.0), 1e-5), "{wi:?}");
        let w2i = fast_w(C64::new(0.0, 2.0));
        assert!(close(w2i, C64::new(0.255_395_68, 0.0), 1e-5), "{w2i:?}");
    }

    #[test]
    fn w_at_origin_is_one() {
        // Limit z→0 of the series: W(0) = 1. Evaluate just off zero.
        let w = fast_w(C64::new(1e-8, 1e-8));
        assert!(close(w, C64::new(1.0, 0.0), 1e-5), "{w:?}");
    }

    #[test]
    fn fast_matches_reference_inside_disc() {
        let mut worst = 0.0f64;
        for i in 0..40 {
            for j in 0..20 {
                let z = C64::new(-5.5 + 11.0 * i as f64 / 39.0, 0.05 + 5.5 * j as f64 / 19.0);
                let fast = fast_w(z);
                let want = w_reference(z);
                let err = (fast - want).abs() / want.abs().max(1e-30);
                worst = worst.max(err);
            }
        }
        assert!(worst < 2e-3, "worst rel err inside |z|<6: {worst:.2e}");
    }

    #[test]
    fn asymptotic_branch_matches_continued_fraction() {
        for &(x, y) in &[
            (7.0, 0.5),
            (10.0, 2.0),
            (-8.0, 1.0),
            (0.0, 9.0),
            (20.0, 0.1),
        ] {
            let z = C64::new(x, y);
            let fast = fast_w(z);
            let want = w_reference(z);
            let err = (fast - want).abs() / want.abs();
            assert!(err < 2e-3, "z={z:?} err={err:.2e}");
        }
    }

    #[test]
    fn branch_seam_is_continuous() {
        // Values just inside and outside |z| = 6 should agree closely.
        let dir = C64::new(0.8, 0.6); // unit vector
        let inside = fast_w(dir.scale(5.999));
        let outside = fast_w(dir.scale(6.001));
        assert!((inside - outside).abs() / inside.abs() < 5e-3);
    }

    #[test]
    fn imaginary_part_positive_on_real_axis() {
        // For real x, Im w(x) = 2D(x)/√π > 0.
        for i in 1..60 {
            let x = i as f64 * 0.2;
            assert!(fast_w(C64::new(x, 0.0)).im > 0.0, "x={x}");
        }
    }
}
