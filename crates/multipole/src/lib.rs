//! Windowed-multipole cross-section representation — the RSBench
//! equivalent (paper §IV-B, Fig. 8).
//!
//! Instead of pointwise table lookups, the multipole method (Hwang 1987;
//! Forget, Xu & Smith 2014) stores each nuclide's resonances as complex
//! *poles* with residues and evaluates cross sections as a sum of
//! Faddeeva-function terms — trading a memory-bound table walk for a
//! compute-bound kernel, with Doppler (temperature) broadening for free.
//!
//! * [`complex`] — minimal complex arithmetic (no external dependency).
//! * [`faddeeva`] — `W(z)`: Abrarov–Quine series inside `|z| < 6`, the
//!   two-pole asymptotic form outside, exactly the split RSBench's
//!   `fast_nuclear_W` uses.
//! * [`data`] — synthesized windowed pole libraries, with either
//!   *variable* poles per window (the original layout whose inner loop
//!   defeats vectorization) or a *fixed* pole count per window (the
//!   paper's proposed preparation that makes the loop vectorizable).
//! * [`lookup`] — scalar and lane-batched evaluation kernels plus the
//!   RSBench-style random-lookup driver.

//! ```
//! use mcs_multipole::{fast_w, C64};
//!
//! // w(i) = e * erfc(1) = 0.42758...
//! let w = fast_w(C64::new(0.0, 1.0));
//! assert!((w.re - 0.4275836).abs() < 1e-4 && w.im.abs() < 1e-4);
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod data;
pub mod faddeeva;
pub mod lookup;

pub use complex::C64;
pub use data::{MultipoleLibrary, MultipoleSpec};
pub use faddeeva::fast_w;
pub use lookup::{lookup_original, lookup_vectorized, rsbench_driver, MpXs};
