//! 64-byte aligned growable buffers — the `_mm_malloc(n, 64)` equivalent.
//!
//! The paper aligns its `R`, `X`, and `D` arrays to 64-byte boundaries so
//! vector loads never straddle cache lines. These buffers guarantee the
//! same: storage is a `Vec` of 64-byte blocks viewed as a flat element
//! slice, so the base pointer is always 64-byte aligned.

use crate::vector::{F32x16, F64x8};

macro_rules! impl_avec {
    ($name:ident, $elem:ty, $block:ty, $lanes:expr) => {
        /// 64-byte aligned buffer of elements.
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            blocks: Vec<$block>,
            len: usize,
        }

        impl $name {
            /// Empty buffer.
            pub fn new() -> Self {
                Self {
                    blocks: Vec::new(),
                    len: 0,
                }
            }

            /// Buffer of `n` elements, all set to `fill`.
            pub fn filled(n: usize, fill: $elem) -> Self {
                let nblocks = n.div_ceil($lanes);
                Self {
                    blocks: vec![<$block>::splat(fill); nblocks],
                    len: n,
                }
            }

            /// Buffer of `n` zeros.
            pub fn zeros(n: usize) -> Self {
                Self::filled(n, 0.0)
            }

            /// Copy from an (unaligned) slice.
            pub fn from_slice(s: &[$elem]) -> Self {
                let mut v = Self::zeros(s.len());
                v.as_mut_slice().copy_from_slice(s);
                v
            }

            /// Number of elements.
            #[inline]
            pub fn len(&self) -> usize {
                self.len
            }

            /// True if no elements.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// View as an element slice. The pointer is 64-byte aligned.
            #[inline]
            pub fn as_slice(&self) -> &[$elem] {
                // SAFETY: blocks are `repr(C)` arrays of `$elem`, densely
                // packed; `len <= blocks.len() * $lanes` by construction.
                unsafe {
                    std::slice::from_raw_parts(self.blocks.as_ptr() as *const $elem, self.len)
                }
            }

            /// Mutable element view.
            #[inline]
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                // SAFETY: as above; exclusive borrow of self.
                unsafe {
                    std::slice::from_raw_parts_mut(self.blocks.as_mut_ptr() as *mut $elem, self.len)
                }
            }

            /// Resize, filling new space with `fill`.
            pub fn resize(&mut self, n: usize, fill: $elem) {
                let old_len = self.len;
                let nblocks = n.div_ceil($lanes);
                self.blocks.resize(nblocks, <$block>::splat(fill));
                self.len = n;
                if n > old_len {
                    // The tail of the last pre-existing block may hold
                    // stale values beyond the old length; overwrite them.
                    for v in &mut self.as_mut_slice()[old_len..] {
                        *v = fill;
                    }
                }
            }

            /// Iterate full vector-width chunks; the remainder (if the
            /// length is not a multiple of the lane count) is not visited.
            #[inline]
            pub fn chunks_vec(&self) -> impl Iterator<Item = $block> + '_ {
                self.as_slice()
                    .chunks_exact($lanes)
                    .map(<$block>::from_slice)
            }
        }

        impl std::ops::Index<usize> for $name {
            type Output = $elem;
            #[inline]
            fn index(&self, i: usize) -> &$elem {
                &self.as_slice()[i]
            }
        }

        impl std::ops::IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut $elem {
                &mut self.as_mut_slice()[i]
            }
        }

        impl FromIterator<$elem> for $name {
            fn from_iter<I: IntoIterator<Item = $elem>>(iter: I) -> Self {
                let tmp: Vec<$elem> = iter.into_iter().collect();
                Self::from_slice(&tmp)
            }
        }
    };
}

impl_avec!(AVec32, f32, F32x16, 16);
impl_avec!(AVec64, f64, F64x8, 8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pointer_is_aligned() {
        for n in [1usize, 15, 16, 17, 1000] {
            let v = AVec32::zeros(n);
            assert_eq!(v.as_slice().as_ptr() as usize % 64, 0, "n={n}");
            let v = AVec64::zeros(n);
            assert_eq!(v.as_slice().as_ptr() as usize % 64, 0, "n={n}");
        }
    }

    #[test]
    fn len_and_contents() {
        let mut v = AVec32::filled(10, 3.5);
        assert_eq!(v.len(), 10);
        assert!(v.as_slice().iter().all(|&x| x == 3.5));
        v[9] = 1.0;
        assert_eq!(v[9], 1.0);
    }

    #[test]
    fn from_slice_roundtrip() {
        let src: Vec<f32> = (0..37).map(|i| i as f32).collect();
        let v = AVec32::from_slice(&src);
        assert_eq!(v.as_slice(), &src[..]);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut v = AVec32::filled(5, 1.0);
        v.resize(40, 2.0);
        assert_eq!(v.len(), 40);
        assert_eq!(v[4], 1.0);
        assert_eq!(v[5], 2.0);
        assert_eq!(v[39], 2.0);
        v.resize(3, 0.0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn resize_overwrites_stale_tail() {
        let mut v = AVec32::filled(20, 9.0);
        v.resize(10, 0.0); // shrink within a block; stale 9.0s remain hidden
        v.resize(20, 5.0); // regrow must not expose them
        assert!(v.as_slice()[10..].iter().all(|&x| x == 5.0));
    }

    #[test]
    fn chunked_iteration_skips_remainder() {
        let v = AVec32::from_slice(&(0..35).map(|i| i as f32).collect::<Vec<_>>());
        let chunks: Vec<_> = v.chunks_vec().collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1][0], 16.0);
    }

    #[test]
    fn collect_from_iterator() {
        let v: AVec64 = (0..10).map(|i| i as f64).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v[7], 7.0);
    }

    #[test]
    fn empty_buffer() {
        let v = AVec32::new();
        assert!(v.is_empty());
        assert_eq!(v.as_slice().len(), 0);
    }
}
