//! Portable fixed-width SIMD for Monte Carlo transport kernels.
//!
//! The paper's optimized kernels (Algorithm 4) use 512-bit MIC intrinsics:
//! `_mm512_load_ps`, `_mm512_log_ps`, `_mm512_div_ps`, `_mm512_mul_ps`,
//! `_mm512_store_ps` over 16-lane `f32` registers. This crate provides the
//! portable equivalents:
//!
//! * [`F32x16`] / [`F64x8`] — 64-byte-aligned fixed-width vector types whose
//!   lane-wise operations are written as exact-trip-count loops that the
//!   compiler reliably auto-vectorizes at `opt-level=3` (AVX2 → two/one
//!   native registers per op, AVX-512 → one).
//! * [`math`] — vectorized transcendentals (`vln`, `vexp`) standing in for
//!   SVML's `_mm512_log_ps`/`_mm512_exp_ps`, as branch-free polynomial
//!   kernels that vectorize across lanes.
//! * [`buffer::AVec32`] — 64-byte aligned buffers, the `_mm_malloc(.., 64)`
//!   equivalent the paper uses for its `R`, `X` and `D` arrays.
//! * [`feature`] — a runtime report of which vector ISA the host actually
//!   has, printed by the benchmark harnesses for provenance.
//!
//! ```
//! use mcs_simd::{F32x16, math::vln};
//!
//! // Algorithm 4's inner step: d = -ln(r) / sigma, 16 lanes at a time.
//! let r = F32x16::splat(0.5);
//! let sigma = F32x16::splat(2.0);
//! let d = vln(r) / sigma * F32x16::splat(-1.0);
//! assert!((d[0] - 0.34657).abs() < 1e-4); // ln(2)/2
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod feature;
pub mod math;
pub mod vector;

pub use buffer::{AVec32, AVec64};
pub use vector::{F32x16, F64x8, Mask16, Mask8};

/// Number of `f32` lanes in the widest vector type (matches the MIC's
/// 512-bit registers: 16 × 4-byte floats).
pub const F32_LANES: usize = 16;
/// Number of `f64` lanes in the widest vector type.
pub const F64_LANES: usize = 8;
