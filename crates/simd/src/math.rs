//! Vectorized transcendental functions — the SVML stand-ins.
//!
//! The paper's Algorithm 4 relies on `_mm512_log_ps`, a 16-lane natural
//! logarithm from Intel's SVML. Here the same thing is built from scratch:
//! branch-free polynomial kernels (the classic Cephes minimax fits) whose
//! lane loops auto-vectorize. Domain notes:
//!
//! * [`vln`] / [`ln_f32`] — positive finite inputs. Transport only takes
//!   logs of uniforms in (0,1) and of cross sections, all positive normals;
//!   zero/negative/NaN inputs produce unspecified (finite or NaN) values
//!   rather than the IEEE special cases, exactly like fast-math SVML.
//! * [`vexp`] / [`exp_f32`] — inputs in roughly [-87, 87] (beyond that the
//!   result saturates toward 0/inf as f32 does).
//!
//! Accuracy: ≤ 2 ulp over the domains above (property-tested against the
//! libm results below).

// The minimax coefficients are transcribed verbatim from Cephes; some
// have more digits than an f32 round-trip needs, which is intentional
// provenance rather than a mistake.
#![allow(clippy::excessive_precision)]

use crate::vector::F32x16;

const LN2_F32: f32 = core::f32::consts::LN_2;
const SQRT_HALF: f32 = core::f32::consts::FRAC_1_SQRT_2;

/// Scalar body of the vectorized log; branch-free so the lane loop in
/// [`vln`] vectorizes.
#[inline(always)]
pub fn ln_f32(x: f32) -> f32 {
    let bits = x.to_bits();
    // Exponent and mantissa: x = m * 2^e with m in [1, 2).
    let mut e = ((bits >> 23) & 0xff) as i32 - 127;
    let mut m = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000);
    // Shift m into [sqrt(1/2), sqrt(2)) so the polynomial argument is small.
    // Branchless: where m >= sqrt(2)/..., halve and bump exponent.
    let adjust = (m >= 2.0 * SQRT_HALF) as i32;
    m = if adjust == 1 { 0.5 * m } else { m };
    e += adjust;

    let z = m - 1.0;
    // Cephes logf minimax polynomial for ln(1+z), z in [sqrt(1/2)-1, sqrt(2)-1].
    let mut p = 7.037_683_6e-2_f32;
    p = p.mul_add(z, -0.115_146_1);
    p = p.mul_add(z, 1.167_699_9e-1);
    p = p.mul_add(z, -1.242_014_1e-1);
    p = p.mul_add(z, 1.424_932_3e-1);
    p = p.mul_add(z, -1.666_805_7e-1);
    p = p.mul_add(z, 2.000_071_5e-1);
    p = p.mul_add(z, -2.499_999_4e-1);
    p = p.mul_add(z, 3.333_333_1e-1);
    let z2 = z * z;
    let mut r = p * z2 * z;
    r = (-0.5f32).mul_add(z2, r);
    (e as f32).mul_add(LN2_F32, z + r)
}

/// Scalar body of the vectorized exp.
#[inline(always)]
pub fn exp_f32(x: f32) -> f32 {
    const LOG2E: f32 = core::f32::consts::LOG2_E;
    // Extended-precision split of ln(2) (Cephes C1/C2).
    const C1: f32 = 0.693_359_375;
    const C2: f32 = -2.121_944_4e-4;

    // n = round(x / ln 2), clamped so the final scale stays in range.
    let n = (LOG2E.mul_add(x, 0.5)).floor().clamp(-126.0, 127.0);
    let r = (-n).mul_add(C1, x);
    let r = (-n).mul_add(C2, r);

    // Cephes expf minimax polynomial for e^r, r in [-ln2/2, ln2/2].
    let mut p = 1.987_569_1e-4_f32;
    p = p.mul_add(r, 0.001_398_2);
    p = p.mul_add(r, 8.333_452e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 1.666_666_5e-1);
    p = p.mul_add(r, 5.000_000_1e-1);
    let r2 = r * r;
    let y = p.mul_add(r2, r) + 1.0;

    // y * 2^n via exponent-field construction.
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    y * scale
}

/// 16-lane natural logarithm (`_mm512_log_ps` equivalent).
#[inline(always)]
pub fn vln(x: F32x16) -> F32x16 {
    let mut out = [0.0f32; 16];
    for (o, &v) in out.iter_mut().zip(&x.0) {
        *o = ln_f32(v);
    }
    F32x16(out)
}

/// 16-lane exponential (`_mm512_exp_ps` equivalent).
#[inline(always)]
pub fn vexp(x: F32x16) -> F32x16 {
    let mut out = [0.0f32; 16];
    for (o, &v) in out.iter_mut().zip(&x.0) {
        *o = exp_f32(v);
    }
    F32x16(out)
}

/// Slice-wise log: `out[i] = ln(x[i])`. Operates on exact 16-lane chunks
/// with a scalar remainder; both paths use the same polynomial so results
/// are identical regardless of slice length.
pub fn vln_slice(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let mut xi = x.chunks_exact(16);
    let mut oi = out.chunks_exact_mut(16);
    for (cx, co) in (&mut xi).zip(&mut oi) {
        vln(F32x16::from_slice(cx)).write_to_slice(co);
    }
    for (cx, co) in xi.remainder().iter().zip(oi.into_remainder()) {
        *co = ln_f32(*cx);
    }
}

/// Slice-wise exponential.
pub fn vexp_slice(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let mut xi = x.chunks_exact(16);
    let mut oi = out.chunks_exact_mut(16);
    for (cx, co) in (&mut xi).zip(&mut oi) {
        vexp(F32x16::from_slice(cx)).write_to_slice(co);
    }
    for (cx, co) in xi.remainder().iter().zip(oi.into_remainder()) {
        *co = exp_f32(*cx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel_err(a: f32, b: f32) -> f32 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn ln_spot_checks() {
        assert!(rel_err(ln_f32(1.0), 0.0) < 1e-6 || ln_f32(1.0).abs() < 1e-6);
        assert!(rel_err(ln_f32(core::f32::consts::E), 1.0) < 1e-6);
        assert!(rel_err(ln_f32(10.0), 10.0f32.ln()) < 1e-6);
        assert!(rel_err(ln_f32(1e-30), 1e-30f32.ln()) < 1e-6);
        assert!(rel_err(ln_f32(1e30), 1e30f32.ln()) < 1e-6);
    }

    #[test]
    fn exp_spot_checks() {
        assert_eq!(exp_f32(0.0), 1.0);
        assert!(rel_err(exp_f32(1.0), core::f32::consts::E) < 1e-6);
        assert!(rel_err(exp_f32(-20.0), (-20.0f32).exp()) < 1e-5);
        assert!(rel_err(exp_f32(60.0), 60.0f32.exp()) < 1e-5);
    }

    #[test]
    fn vector_matches_scalar_exactly() {
        let xs: Vec<f32> = (1..=16).map(|i| 0.01 * i as f32).collect();
        let v = vln(F32x16::from_slice(&xs));
        for i in 0..16 {
            assert_eq!(v[i], ln_f32(xs[i]));
        }
        let v = vexp(F32x16::from_slice(&xs));
        for i in 0..16 {
            assert_eq!(v[i], exp_f32(xs[i]));
        }
    }

    #[test]
    fn slice_kernels_handle_remainders() {
        for n in [0usize, 1, 15, 16, 17, 33, 100] {
            let x: Vec<f32> = (0..n).map(|i| 0.5 + i as f32 * 0.25).collect();
            let mut out = vec![0.0f32; n];
            vln_slice(&x, &mut out);
            for i in 0..n {
                assert_eq!(out[i], ln_f32(x[i]), "n={n} i={i}");
            }
            let mut out2 = vec![0.0f32; n];
            vexp_slice(&x, &mut out2);
            for i in 0..n {
                assert_eq!(out2[i], exp_f32(x[i]));
            }
        }
    }

    proptest! {
        #[test]
        fn ln_accuracy_over_uniform_domain(u in 1e-12f64..1.0f64) {
            // The domain used by distance sampling: ln of uniforms in (0,1).
            let x = u as f32;
            let got = ln_f32(x);
            let want = x.ln();
            prop_assert!(rel_err(got, want) < 2e-6,
                "x={x} got={got} want={want}");
        }

        #[test]
        fn ln_accuracy_over_xs_magnitudes(m in 1e-6f64..1e6f64) {
            let x = m as f32;
            let got = ln_f32(x);
            let want = x.ln();
            // Near x=1, ln(x)→0, so bound the absolute error there instead.
            if want.abs() > 1e-3 {
                prop_assert!(rel_err(got, want) < 2e-6);
            } else {
                prop_assert!((got - want).abs() < 1e-7);
            }
        }

        #[test]
        fn exp_accuracy(x in -80.0f32..80.0f32) {
            let got = exp_f32(x);
            let want = x.exp();
            prop_assert!(rel_err(got, want) < 3e-6, "x={x} got={got} want={want}");
        }

        #[test]
        fn exp_ln_roundtrip(u in 1e-6f32..1e6f32) {
            let rt = exp_f32(ln_f32(u));
            prop_assert!(rel_err(rt, u) < 1e-5);
        }
    }
}
