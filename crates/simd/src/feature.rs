//! Runtime report of the host's vector ISA.
//!
//! The benchmark harnesses print this alongside every result so measured
//! numbers carry their hardware provenance, the way the paper reports
//! compiler version and `-O3` for each table.

/// Which vector instruction sets the running CPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdFeatures {
    /// SSE2 (baseline on x86_64).
    pub sse2: bool,
    /// AVX (256-bit float).
    pub avx: bool,
    /// AVX2 (256-bit integer + gathers).
    pub avx2: bool,
    /// FMA3.
    pub fma: bool,
    /// AVX-512 Foundation (512-bit, the modern KNC equivalent).
    pub avx512f: bool,
}

impl SimdFeatures {
    /// Probe the running CPU.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            Self {
                sse2: std::arch::is_x86_feature_detected!("sse2"),
                avx: std::arch::is_x86_feature_detected!("avx"),
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self {
                sse2: false,
                avx: false,
                avx2: false,
                fma: false,
                avx512f: false,
            }
        }
    }

    /// Widest native f32 vector, in lanes.
    pub fn native_f32_lanes(&self) -> usize {
        if self.avx512f {
            16
        } else if self.avx {
            8
        } else if self.sse2 {
            4
        } else {
            1
        }
    }

    /// Human-readable one-liner for harness headers.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.sse2 {
            parts.push("sse2");
        }
        if self.avx {
            parts.push("avx");
        }
        if self.avx2 {
            parts.push("avx2");
        }
        if self.fma {
            parts.push("fma");
        }
        if self.avx512f {
            parts.push("avx512f");
        }
        if parts.is_empty() {
            parts.push("scalar");
        }
        format!(
            "simd features: [{}], native f32 width: {} lanes",
            parts.join(", "),
            self.native_f32_lanes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_does_not_panic_and_is_consistent() {
        let f = SimdFeatures::detect();
        // avx512 implies avx implies sse2 on any real CPU.
        if f.avx512f {
            assert!(f.avx);
        }
        if f.avx2 {
            assert!(f.avx);
        }
        if f.avx {
            assert!(f.sse2);
        }
        let lanes = f.native_f32_lanes();
        assert!(lanes == 1 || lanes == 4 || lanes == 8 || lanes == 16);
    }

    #[test]
    fn summary_mentions_width() {
        let f = SimdFeatures::detect();
        assert!(f.summary().contains("lanes"));
    }
}
