//! Fixed-width vector types.
//!
//! Each type wraps a `#[repr(align(64))]` array. Lane-wise operations are
//! exact-trip-count loops over the array; at `opt-level=3` LLVM lowers each
//! to a handful of packed vector instructions with no remainder loop. This
//! is the "portable intrinsic" style: the code expresses the same data
//! movement as the paper's `_mm512_*` calls without committing to an ISA.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// 16-lane single-precision vector (512 bits), aligned to 64 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(64))]
pub struct F32x16(pub [f32; 16]);

/// 8-lane double-precision vector (512 bits), aligned to 64 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(64))]
pub struct F64x8(pub [f64; 8]);

/// Lane mask for [`F32x16`]: bit `i` set means lane `i` selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask16(pub u16);

/// Lane mask for [`F64x8`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask8(pub u8);

macro_rules! impl_vector {
    ($name:ident, $elem:ty, $lanes:expr, $mask:ident, $mask_repr:ty) => {
        impl $name {
            /// Number of lanes.
            pub const LANES: usize = $lanes;

            /// Broadcast a scalar to all lanes (`_mm512_set1_*`).
            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                Self([v; $lanes])
            }

            /// All-zero vector.
            #[inline(always)]
            pub fn zero() -> Self {
                Self::splat(0.0)
            }

            /// Load lanes from the first `LANES` elements of a slice
            /// (`_mm512_loadu_*`). Panics if the slice is shorter.
            #[inline(always)]
            pub fn from_slice(s: &[$elem]) -> Self {
                let mut out = [0.0; $lanes];
                out.copy_from_slice(&s[..$lanes]);
                Self(out)
            }

            /// Store all lanes into the first `LANES` elements of a slice
            /// (`_mm512_storeu_*`).
            #[inline(always)]
            pub fn write_to_slice(self, s: &mut [$elem]) {
                s[..$lanes].copy_from_slice(&self.0);
            }

            /// Underlying lanes.
            #[inline(always)]
            pub fn to_array(self) -> [$elem; $lanes] {
                self.0
            }

            /// Lane-wise fused multiply-add: `self * a + b`.
            ///
            /// Uses `mul_add`, which lowers to an FMA instruction when the
            /// target has one.
            #[inline(always)]
            pub fn mul_add(self, a: Self, b: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i].mul_add(a.0[i], b.0[i]);
                }
                Self(out)
            }

            /// Lane-wise minimum.
            #[inline(always)]
            pub fn min(self, other: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i].min(other.0[i]);
                }
                Self(out)
            }

            /// Lane-wise maximum.
            #[inline(always)]
            pub fn max(self, other: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i].max(other.0[i]);
                }
                Self(out)
            }

            /// Lane-wise absolute value.
            #[inline(always)]
            pub fn abs(self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i].abs();
                }
                Self(out)
            }

            /// Lane-wise square root.
            #[inline(always)]
            pub fn sqrt(self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i].sqrt();
                }
                Self(out)
            }

            /// Lane-wise reciprocal.
            #[inline(always)]
            pub fn recip(self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = 1.0 / self.0[i];
                }
                Self(out)
            }

            /// Horizontal sum of all lanes (`_mm512_reduce_add_*`).
            #[inline(always)]
            pub fn reduce_sum(self) -> $elem {
                // Pairwise tree keeps the reduction associative-friendly
                // and lets LLVM use shuffles rather than a serial chain.
                let mut acc = self.0;
                let mut width = $lanes / 2;
                while width >= 1 {
                    for i in 0..width {
                        acc[i] += acc[i + width];
                    }
                    width /= 2;
                }
                acc[0]
            }

            /// Horizontal minimum of all lanes.
            #[inline(always)]
            pub fn reduce_min(self) -> $elem {
                self.0.iter().copied().fold(<$elem>::INFINITY, <$elem>::min)
            }

            /// Horizontal maximum of all lanes.
            #[inline(always)]
            pub fn reduce_max(self) -> $elem {
                self.0
                    .iter()
                    .copied()
                    .fold(<$elem>::NEG_INFINITY, <$elem>::max)
            }

            /// Lane-wise `<` comparison producing a mask.
            #[inline(always)]
            pub fn lt(self, other: Self) -> $mask {
                let mut m: $mask_repr = 0;
                for i in 0..$lanes {
                    m |= ((self.0[i] < other.0[i]) as $mask_repr) << i;
                }
                $mask(m)
            }

            /// Lane-wise `<=` comparison producing a mask.
            #[inline(always)]
            pub fn le(self, other: Self) -> $mask {
                let mut m: $mask_repr = 0;
                for i in 0..$lanes {
                    m |= ((self.0[i] <= other.0[i]) as $mask_repr) << i;
                }
                $mask(m)
            }

            /// Blend: lane `i` comes from `if_true` where the mask bit is
            /// set, otherwise from `if_false` (`_mm512_mask_blend_*`).
            #[inline(always)]
            pub fn select(mask: $mask, if_true: Self, if_false: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = if mask.0 >> i & 1 == 1 {
                        if_true.0[i]
                    } else {
                        if_false.0[i]
                    };
                }
                Self(out)
            }

            /// Gather lanes from `table` at `idx` (`_mm512_i32gather_*`).
            #[inline(always)]
            pub fn gather(table: &[$elem], idx: [u32; $lanes]) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = table[idx[i] as usize];
                }
                Self(out)
            }
        }

        impl $mask {
            /// Mask with no lanes set.
            pub const NONE: Self = Self(0);
            /// Mask with all lanes set.
            pub const ALL: Self = Self(!0 >> (<$mask_repr>::BITS as usize - $lanes));

            /// True if any lane is set.
            #[inline(always)]
            pub fn any(self) -> bool {
                self.0 != 0
            }

            /// True if all lanes are set.
            #[inline(always)]
            pub fn all(self) -> bool {
                self == Self::ALL
            }

            /// Number of set lanes.
            #[inline(always)]
            pub fn count(self) -> u32 {
                self.0.count_ones()
            }

            /// Whether lane `i` is set.
            #[inline(always)]
            pub fn test(self, i: usize) -> bool {
                self.0 >> i & 1 == 1
            }

            /// Lane-wise negation.
            #[inline(always)]
            #[allow(clippy::should_implement_trait)] // mirrors the `knot` mask intrinsic
            pub fn not(self) -> Self {
                Self(!self.0 & Self::ALL.0)
            }

            /// Lane-wise AND.
            #[inline(always)]
            pub fn and(self, other: Self) -> Self {
                Self(self.0 & other.0)
            }

            /// Lane-wise OR.
            #[inline(always)]
            pub fn or(self, other: Self) -> Self {
                Self(self.0 | other.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i] + rhs.0[i];
                }
                Self(out)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i] - rhs.0[i];
                }
                Self(out)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i] * rhs.0[i];
                }
                Self(out)
            }
        }

        impl Div for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = self.0[i] / rhs.0[i];
                }
                Self(out)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                let mut out = [0.0; $lanes];
                for i in 0..$lanes {
                    out[i] = -self.0[i];
                }
                Self(out)
            }
        }

        impl AddAssign for $name {
            #[inline(always)]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for $name {
            #[inline(always)]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for $name {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl Index<usize> for $name {
            type Output = $elem;
            #[inline(always)]
            fn index(&self, i: usize) -> &$elem {
                &self.0[i]
            }
        }

        impl IndexMut<usize> for $name {
            #[inline(always)]
            fn index_mut(&mut self, i: usize) -> &mut $elem {
                &mut self.0[i]
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::zero()
            }
        }
    };
}

impl_vector!(F32x16, f32, 16, Mask16, u16);
impl_vector!(F64x8, f64, 8, Mask8, u8);

#[cfg(test)]
mod tests {
    use super::*;

    fn seq16() -> F32x16 {
        let mut a = [0.0f32; 16];
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f32 + 1.0;
        }
        F32x16(a)
    }

    #[test]
    fn alignment_is_64_bytes() {
        assert_eq!(std::mem::align_of::<F32x16>(), 64);
        assert_eq!(std::mem::align_of::<F64x8>(), 64);
        assert_eq!(std::mem::size_of::<F32x16>(), 64);
        assert_eq!(std::mem::size_of::<F64x8>(), 64);
    }

    #[test]
    fn arithmetic_lanewise() {
        let a = seq16();
        let b = F32x16::splat(2.0);
        assert_eq!((a + b)[0], 3.0);
        assert_eq!((a - b)[15], 14.0);
        assert_eq!((a * b)[3], 8.0);
        assert_eq!((a / b)[7], 4.0);
        assert_eq!((-a)[4], -5.0);
    }

    #[test]
    fn fma_matches_scalar() {
        let a = seq16();
        let b = F32x16::splat(3.0);
        let c = F32x16::splat(1.0);
        let r = a.mul_add(b, c);
        for i in 0..16 {
            assert_eq!(r[i], (a[i]).mul_add(3.0, 1.0));
        }
    }

    #[test]
    fn reductions() {
        let a = seq16();
        assert_eq!(a.reduce_sum(), 136.0); // 1+..+16
        assert_eq!(a.reduce_min(), 1.0);
        assert_eq!(a.reduce_max(), 16.0);
    }

    #[test]
    fn reduce_sum_f64() {
        let a = F64x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.reduce_sum(), 36.0);
    }

    #[test]
    fn masks_and_select() {
        let a = seq16();
        let b = F32x16::splat(8.5);
        let m = a.lt(b); // lanes 0..=7 set
        assert_eq!(m.count(), 8);
        assert!(m.test(0) && m.test(7) && !m.test(8));
        let sel = F32x16::select(m, F32x16::splat(1.0), F32x16::splat(0.0));
        assert_eq!(sel.reduce_sum(), 8.0);
        assert!(m.or(m.not()).all());
        assert!(!m.and(m.not()).any());
    }

    #[test]
    fn le_vs_lt_on_equal_lanes() {
        let a = F32x16::splat(2.0);
        assert_eq!(a.lt(a), Mask16::NONE);
        assert!(a.le(a).all());
    }

    #[test]
    fn gather_from_table() {
        let table: Vec<f32> = (0..100).map(|i| i as f32 * 10.0).collect();
        let idx = [
            0u32, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 99,
        ];
        let g = F32x16::gather(&table, idx);
        assert_eq!(g[1], 50.0);
        assert_eq!(g[15], 990.0);
    }

    #[test]
    fn slice_roundtrip() {
        let src: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let v = F32x16::from_slice(&src[2..]);
        assert_eq!(v[0], 2.0);
        let mut dst = vec![0.0f32; 16];
        v.write_to_slice(&mut dst);
        assert_eq!(dst[15], 17.0);
    }

    #[test]
    fn min_max_abs_sqrt_recip() {
        let a = F32x16::splat(-4.0);
        let b = F32x16::splat(9.0);
        assert_eq!(a.min(b)[0], -4.0);
        assert_eq!(a.max(b)[0], 9.0);
        assert_eq!(a.abs()[0], 4.0);
        assert_eq!(b.sqrt()[0], 3.0);
        assert_eq!(b.recip()[0], 1.0 / 9.0);
    }

    #[test]
    fn mask_all_constant_is_correct_width() {
        assert_eq!(Mask16::ALL.0, 0xffff);
        assert_eq!(Mask8::ALL.0, 0xff);
    }
}
