//! Property tests for the transport engine's data structures and physics.

use mcs_core::particle::{sort_sites, ParticleBank, Site, SourceSite};
use mcs_core::physics::{elastic_kinematics, sample_watt, WATT_A, WATT_B};
use mcs_geom::Vec3;
use mcs_rng::Lcg63;
use proptest::prelude::*;

fn bank_of(n: usize) -> ParticleBank {
    let sites: Vec<SourceSite> = (0..n)
        .map(|i| SourceSite {
            pos: Vec3::new(i as f64, 0.0, 0.0),
            energy: 1.0,
        })
        .collect();
    let streams: Vec<Lcg63> = (0..n).map(|i| Lcg63::for_history(1, i as u64, 7)).collect();
    ParticleBank::from_sources(&sites, &streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compaction_preserves_survivors_in_order(
        n in 1usize..64,
        dead_mask in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut bank = bank_of(n);
        let dead: Vec<usize> = (0..n)
            .filter(|&i| *dead_mask.get(i).unwrap_or(&false))
            .collect();
        let expected: Vec<u32> = (0..n as u32)
            .filter(|&i| !dead.contains(&(i as usize)))
            .collect();
        bank.compact(&dead);
        prop_assert_eq!(&bank.alive, &expected);
        // Idempotent on an empty dead list.
        bank.compact(&[]);
        prop_assert_eq!(&bank.alive, &expected);
    }

    #[test]
    fn repeated_compaction_never_duplicates(
        n in 2usize..32,
        kills in prop::collection::vec(0usize..32, 0..16),
    ) {
        let mut bank = bank_of(n);
        for &k in &kills {
            if bank.n_alive() == 0 { break; }
            let slot = k % bank.n_alive();
            bank.compact(&[slot]);
        }
        let mut seen = bank.alive.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), bank.alive.len(), "duplicated index");
    }

    #[test]
    fn sort_sites_is_total_and_stable_on_keys(
        keys in prop::collection::vec((0u32..20, 0u32..10), 0..50),
    ) {
        let mut sites: Vec<Site> = keys
            .iter()
            .map(|&(parent, seq)| Site {
                pos: Vec3::ZERO,
                energy: 1.0,
                parent,
                seq,
            })
            .collect();
        sort_sites(&mut sites);
        for w in sites.windows(2) {
            prop_assert!((w[0].parent, w[0].seq) <= (w[1].parent, w[1].seq));
        }
        prop_assert_eq!(sites.len(), keys.len());
    }

    #[test]
    fn elastic_scatter_is_deterministic_and_bounded(
        e in 1e-10f64..20.0,
        awr in 1.0f64..240.0,
        mu in -1.0f64..1.0,
    ) {
        let a = elastic_kinematics(e, awr, mu);
        let b = elastic_kinematics(e, awr, mu);
        prop_assert_eq!(a, b);
        prop_assert!(a.0.is_finite() && a.1.is_finite());
    }

    #[test]
    fn watt_sampling_is_reproducible_per_stream(seed in any::<u64>()) {
        let mut r1 = Lcg63::new(seed);
        let mut r2 = Lcg63::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(
                sample_watt(&mut r1, WATT_A, WATT_B),
                sample_watt(&mut r2, WATT_A, WATT_B)
            );
        }
    }
}

#[test]
fn watt_spectrum_has_correct_tail_shape() {
    // P(E > 10 MeV) for Watt(0.988, 2.249) is small but nonzero (~3e-4);
    // P(E > 20 MeV) is negligible at 2e5 samples.
    let mut rng = Lcg63::new(55);
    let n = 200_000;
    let mut over10 = 0;
    let mut over20 = 0;
    for _ in 0..n {
        let e = sample_watt(&mut rng, WATT_A, WATT_B);
        if e > 10.0 {
            over10 += 1;
        }
        if e > 20.0 {
            over20 += 1;
        }
    }
    let frac10 = over10 as f64 / n as f64;
    assert!(frac10 > 1e-5 && frac10 < 5e-3, "P(E>10) = {frac10}");
    assert!(over20 <= 2, "P(E>20) should be negligible, saw {over20}");
}

#[test]
fn balance_partition_properties() {
    use mcs_core::balance::proportional_split;
    let mut rng = Lcg63::new(8);
    for _ in 0..200 {
        let n_ranks = 1 + (rng.next_uniform() * 8.0) as usize;
        let rates: Vec<f64> = (0..n_ranks)
            .map(|_| 0.1 + rng.next_uniform() * 10.0)
            .collect();
        let n_total = (rng.next_uniform() * 1e6) as u64;
        let split = proportional_split(n_total, &rates);
        assert_eq!(split.iter().sum::<u64>(), n_total);
        // Assignment ordering follows rate ordering (within rounding 1).
        for i in 0..n_ranks {
            for j in 0..n_ranks {
                if rates[i] > rates[j] {
                    assert!(
                        split[i] + 1 >= split[j],
                        "faster rank got strictly less: {split:?} rates {rates:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the mode, bin count, fuel split, drain order, or chunk
    /// cap, `build_queues` emits a permutation of the live list tiled
    /// exactly by single-material tasks — the structural property the
    /// event engine's bitwise-determinism argument stands on.
    #[test]
    fn queue_partition_is_a_permutation(
        n in 1usize..600,
        n_mats in 1usize..5,
        mode_sel in 0u8..3,
        bins_log2 in 0u32..13,
        fuel_order in any::<bool>(),
        chunk in 1usize..300,
        seed in any::<u64>(),
    ) {
        use mcs_core::queueing::{
            build_queues, QueueBuffers, QueueingConfig, QueueingMode,
        };
        let mut rng = Lcg63::new(seed | 1);
        let alive: Vec<u32> = (0..n as u32).collect();
        let material: Vec<u32> = (0..n)
            .map(|_| (rng.next_uniform() * n_mats as f64) as u32 % n_mats as u32)
            .collect();
        let energy: Vec<f64> = (0..n)
            .map(|_| 1.5e-11 * (rng.next_uniform() * 19.0).exp())
            .collect();
        // Any permutation is a legal drain order; reversal exercises a
        // non-identity one without needing a shuffle.
        let mut mat_order: Vec<u32> = (0..n_mats as u32).collect();
        if fuel_order {
            mat_order.reverse();
        }
        let cfg = QueueingConfig {
            mode: match mode_sel {
                0 => QueueingMode::Off,
                1 => QueueingMode::Material,
                _ => QueueingMode::MaterialEnergy,
            },
            energy_bins: 1usize << bins_log2,
            fuel_split: fuel_order,
        };
        let mut bufs = QueueBuffers::new(n_mats);
        build_queues(&cfg, &mat_order, &alive, &material, &energy, chunk, &mut bufs);

        // Permutation: same multiset (here: same sorted set, ids unique).
        let mut q = bufs.queued.clone();
        q.sort_unstable();
        prop_assert_eq!(&q, &alive, "queued is not a permutation of alive");

        // Tasks tile `queued` exactly, respect the cap, stay one-material.
        let mut cursor = 0u32;
        for t in &bufs.tasks {
            prop_assert_eq!(t.start, cursor);
            prop_assert!(t.end > t.start);
            prop_assert!((t.end - t.start) as usize <= chunk);
            for &iu in &bufs.queued[t.start as usize..t.end as usize] {
                prop_assert_eq!(material[iu as usize], t.mat);
            }
            cursor = t.end;
        }
        prop_assert_eq!(cursor as usize, bufs.queued.len());
    }
}
