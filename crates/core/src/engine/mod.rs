//! The unified transport engine.
//!
//! One batch loop executes every run the repo knows how to make: a
//! declarative [`RunPlan`] (what to simulate) paired with an
//! [`ExecutionPolicy`] (where/how batches execute). The engine owns
//! everything between batches — source resampling, Shannon entropy,
//! the CHUNK=256 canonical tally folds, statepoint write/resume, and
//! result assembly — so the bitwise determinism contracts (event ==
//! history k, distributed == serial, kill→resume identity, grid-backend
//! invariance) are enforced in exactly one place.
//!
//! ```text
//!   RunPlan ──▶ run(plan, policy) ──▶ batch loop ──▶ RunReport
//!                      │                  │
//!                      │       transport_batch(problem, ctx)
//!                      ▼                  ▼
//!               ExecutionPolicy:   Serial | Threaded | Distributed
//! ```
//!
//! The pre-engine entry points (`run_eigenvalue`, `run_histories_*`,
//! `run_event_transport*`, `run_fixed_source`,
//! `run_distributed_eigenvalue`) rode along for one PR as
//! `#[deprecated]` shims and are gone; this module is the only way in.

pub mod plan;
pub mod policy;

pub use plan::{
    Algorithm, DeviceOverrides, DeviceRef, ModelOverrides, ModelSpec, PlanError, PolicySpec,
    RunMode, RunPlan, DEFAULT_DEVICE,
};
pub use policy::{BatchContext, BatchOutput, ExecutionPolicy, Halt, Serial, Threaded};

use std::time::{Duration, Instant};

use mcs_rng::Lcg63;

use crate::eigenvalue::{resample_source, shannon_entropy, BatchResult, EigenvalueResult};
use crate::event::EventStats;
use crate::fixed_source::{FixedSourceResult, FixedSourceSettings, SourceDef};
use crate::history::batch_streams;
use crate::mesh::{MeshSpec, MeshStats, MeshTally};
use crate::particle::{Site, SourceSite};
use crate::problem::Problem;
use crate::queueing::QueueingConfig;
use crate::spectrum::SpectrumTally;
use crate::statepoint::Statepoint;
use crate::tally::Tallies;

/// A borrowed view of one completed batch, delivered through
/// [`BatchObserver::on_batch`] the moment the engine has folded it into
/// the run state — before the next batch starts transporting.
#[derive(Debug, Clone, Copy)]
pub struct BatchProgress<'a> {
    /// The batch record just completed (k estimates, entropy, timing).
    pub batch: &'a BatchResult,
    /// Batches completed over the *whole* run so far; on a resumed run
    /// this counts the replayed prefix too.
    pub completed: usize,
    /// Total batches the plan will run.
    pub total: usize,
}

/// Observe engine progress without owning engine state.
///
/// This is the one progress seam of the batch loop: events borrow the
/// loop's own records (no per-event allocation) and are emitted after
/// the policy returns, so serial, threaded, and distributed runs all
/// stream the identical sequence. The CLI's live batch printout, the
/// serve crate's per-subscriber progress streams, and checkpoint sinks
/// all hang off this trait instead of re-deriving per-batch bookkeeping
/// from the finished report.
pub trait BatchObserver {
    /// One batch completed and was folded into the run state.
    fn on_batch(&mut self, _progress: BatchProgress<'_>) {}
    /// A periodic statepoint was emitted (plan's `checkpoint_every`).
    fn on_checkpoint(&mut self, _statepoint: &Statepoint) {}
}

/// The do-nothing observer every non-streaming caller uses.
pub struct NoProgress;

impl BatchObserver for NoProgress {}

/// Everything an eigenvalue engine run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Batch records for the batches *this* call executed (on resume,
    /// earlier batches live in the statepoint's `k_history`).
    pub batches: Vec<BatchResult>,
    /// Track-length k of every completed batch of the whole run,
    /// including batches replayed from a checkpoint.
    pub k_history: Vec<f64>,
    /// Periodic statepoints (when the plan sets `checkpoint_every`).
    pub checkpoints: Vec<Statepoint>,
    /// Statepoint after the last completed batch: resume from here with
    /// [`resume_with_problem`] for a bit-identical continuation.
    pub statepoint: Statepoint,
    /// Spectrum tally from the dedicated post-run history pass (when the
    /// plan sets `spectrum`).
    pub spectrum: Option<SpectrumTally>,
    /// Did the run reach its final batch? `false` after a policy
    /// [`Halt`] (e.g. every simulated rank died).
    pub completed: bool,
    /// The halt reason, when `completed` is false.
    pub halt_reason: Option<String>,
    /// The assembled eigenvalue result (k statistics over active
    /// batches, merged tallies, mesh, event stats, total wall time).
    pub result: EigenvalueResult,
}

/// Output of [`run`] / [`run_with_problem`].
#[derive(Debug)]
pub enum RunOutput {
    /// Eigenvalue mode: the full report.
    Eigenvalue(Box<RunReport>),
    /// Fixed-source mode: the chain-following result.
    FixedSource(Box<FixedSourceResult>),
}

impl RunOutput {
    /// Unwrap the eigenvalue report (panics on a fixed-source run).
    pub fn into_eigenvalue(self) -> RunReport {
        match self {
            RunOutput::Eigenvalue(r) => *r,
            RunOutput::FixedSource(_) => panic!("run produced a fixed-source result"),
        }
    }

    /// Unwrap the fixed-source result (panics on an eigenvalue run).
    pub fn into_fixed_source(self) -> FixedSourceResult {
        match self {
            RunOutput::FixedSource(r) => *r,
            RunOutput::Eigenvalue(_) => panic!("run produced an eigenvalue result"),
        }
    }
}

/// Build the problem described by `plan` and execute it under `policy`.
pub fn run(plan: &RunPlan, policy: &mut dyn ExecutionPolicy) -> RunOutput {
    let problem = plan.build_problem();
    run_with_problem(&problem, plan, policy)
}

/// Execute `plan` against an already-built problem (the problem must be
/// consistent with the plan's `survival`/`seed` fields — use
/// [`RunPlan::build_problem`] or pass your own).
pub fn run_with_problem(
    problem: &Problem,
    plan: &RunPlan,
    policy: &mut dyn ExecutionPolicy,
) -> RunOutput {
    run_with_problem_observed(problem, plan, policy, &mut NoProgress)
}

/// [`run_with_problem`] with a progress observer: `observer` sees every
/// completed batch (and checkpoint) as it happens. Fixed-source runs
/// have no batch structure and emit no events.
pub fn run_with_problem_observed(
    problem: &Problem,
    plan: &RunPlan,
    policy: &mut dyn ExecutionPolicy,
    observer: &mut dyn BatchObserver,
) -> RunOutput {
    match plan.mode {
        RunMode::Eigenvalue => {
            let report = run_batches_observed(
                problem,
                plan,
                policy,
                0,
                plan.total_batches(),
                None,
                observer,
            );
            RunOutput::Eigenvalue(Box::new(report))
        }
        RunMode::FixedSource => {
            let settings = FixedSourceSettings {
                particles: plan.particles,
                source: SourceDef::FuelWatt,
                max_chain: plan.max_chain,
            };
            policy.begin(plan, 0);
            match policy.run_fixed_source(problem, &settings) {
                Ok(r) => RunOutput::FixedSource(Box::new(r)),
                Err(h) => panic!("fixed-source run halted: {}", h.reason),
            }
        }
    }
}

/// Resume an eigenvalue run from a statepoint, executing the remaining
/// batches of the plan bit-identically to an uninterrupted run.
pub fn resume_with_problem(
    problem: &Problem,
    plan: &RunPlan,
    policy: &mut dyn ExecutionPolicy,
    checkpoint: &Statepoint,
) -> RunReport {
    resume_with_problem_observed(problem, plan, policy, checkpoint, &mut NoProgress)
}

/// [`resume_with_problem`] with a progress observer; only the batches
/// this call executes emit events (the replayed prefix is state, not
/// work), but `completed`/`total` count the whole run.
pub fn resume_with_problem_observed(
    problem: &Problem,
    plan: &RunPlan,
    policy: &mut dyn ExecutionPolicy,
    checkpoint: &Statepoint,
    observer: &mut dyn BatchObserver,
) -> RunReport {
    assert_eq!(
        checkpoint.seed, problem.seed,
        "statepoint belongs to a different problem seed"
    );
    run_batches_observed(
        problem,
        plan,
        policy,
        checkpoint.completed_batches,
        plan.total_batches(),
        Some(checkpoint),
        observer,
    )
}

/// The engine's batch loop: run batches `[start_batch, stop_batch)` of
/// `plan` under `policy`, seeded from the initial source (cold start,
/// `checkpoint = None`, requires `start_batch == 0`) or a statepoint.
///
/// This is the single owner of the between-batch state machine:
/// per-batch streams from the global particle index, active-only mesh
/// tallies, Shannon entropy, k statistics, fission-bank resampling with
/// the canonical seed schedule, and checkpoint emission. Every legacy
/// driver is a special case of this loop.
pub fn run_batches(
    problem: &Problem,
    plan: &RunPlan,
    policy: &mut dyn ExecutionPolicy,
    start_batch: usize,
    stop_batch: usize,
    checkpoint: Option<&Statepoint>,
) -> RunReport {
    run_batches_observed(
        problem,
        plan,
        policy,
        start_batch,
        stop_batch,
        checkpoint,
        &mut NoProgress,
    )
}

/// [`run_batches`] with a [`BatchObserver`]: the loop body is identical
/// (the observer cannot perturb the run — it only borrows the records
/// the loop produces anyway), so observed and unobserved runs of the
/// same plan are bit-identical by construction.
#[allow(clippy::too_many_arguments)]
pub fn run_batches_observed(
    problem: &Problem,
    plan: &RunPlan,
    policy: &mut dyn ExecutionPolicy,
    start_batch: usize,
    stop_batch: usize,
    checkpoint: Option<&Statepoint>,
    observer: &mut dyn BatchObserver,
) -> RunReport {
    let n = plan.particles;
    let total_batches = plan.total_batches();
    assert!(stop_batch <= total_batches, "stop batch beyond the plan");
    let mesh_spec = plan
        .mesh_tally
        .map(|(nx, ny, nz)| MeshSpec::covering(problem.geometry.bounds, nx, ny, nz));

    let (mut source, mut k_history, mut tallies) = match checkpoint {
        Some(c) => {
            assert_eq!(c.completed_batches, start_batch, "checkpoint/plan mismatch");
            (c.source.clone(), c.k_history.clone(), c.tallies)
        }
        None => {
            assert_eq!(start_batch, 0, "cold starts begin at batch 0");
            (
                problem.sample_initial_source(n, 0),
                Vec::new(),
                Tallies::default(),
            )
        }
    };

    policy.begin(plan, start_batch);

    let mut batches = Vec::with_capacity(stop_batch.saturating_sub(start_batch));
    let mut checkpoints = Vec::new();
    let mut mesh_total = mesh_spec.map(MeshTally::new);
    let mut mesh_stats = mesh_spec.map(MeshStats::new);
    let mut event_stats: Option<EventStats> = None;
    let mut completed = true;
    let mut halt_reason = None;
    let mut completed_batches = start_batch;
    let t_start = Instant::now();

    for b in start_batch..stop_batch {
        let active = b >= plan.inactive;
        let streams = batch_streams(problem.seed, b as u64, n);
        // User-defined tallies only run in active batches.
        let batch_mesh_spec = if active { mesh_spec } else { None };
        let ctx = BatchContext {
            index: b,
            algorithm: plan.algorithm,
            sources: &source,
            streams: &streams,
            mesh: batch_mesh_spec,
            spectrum: false,
            profiler: None,
            queueing: plan.queueing,
        };
        let t0 = Instant::now();
        let out = match policy.transport_batch(problem, &ctx) {
            Ok(out) => out,
            Err(h) => {
                completed = false;
                halt_reason = Some(h.reason);
                break;
            }
        };
        let wall = t0.elapsed();
        if let Some(s) = &out.event_stats {
            match event_stats.as_mut() {
                Some(total) => total.merge(s),
                None => event_stats = Some(*s),
            }
        }
        if let (Some(total), Some(bm)) = (mesh_total.as_mut(), out.mesh.as_ref()) {
            total.merge(bm);
        }
        if let (Some(stats), Some(bm)) = (mesh_stats.as_mut(), out.mesh.as_ref()) {
            stats.observe(bm);
        }

        let outcome = out.outcome;
        let entropy = shannon_entropy(&outcome.sites, problem.geometry.bounds, plan.entropy_mesh);
        let k_track = outcome.tallies.k_track_estimate();
        batches.push(BatchResult {
            index: b,
            active,
            k_track,
            k_collision: outcome.tallies.k_collision_estimate(),
            k_absorption: outcome.tallies.k_absorption_estimate(),
            entropy,
            wall,
            rate: n as f64 / wall.as_secs_f64().max(1e-12),
        });
        k_history.push(k_track);
        if active {
            tallies.merge(&outcome.tallies);
        }
        source = resample_source(&outcome.sites, n, problem.seed ^ (0xbeef << 8) ^ b as u64);
        completed_batches = b + 1;
        observer.on_batch(BatchProgress {
            batch: batches.last().expect("batch just pushed"),
            completed: completed_batches,
            total: total_batches,
        });

        if let Some(every) = plan.checkpoint_every {
            if every > 0 && (b + 1) % every == 0 {
                checkpoints.push(Statepoint {
                    seed: problem.seed,
                    completed_batches: b + 1,
                    source: source.clone(),
                    k_history: k_history.clone(),
                    tallies,
                });
                observer.on_checkpoint(checkpoints.last().expect("checkpoint just pushed"));
            }
        }
    }

    // Dedicated spectrum pass (history algorithm over the initial
    // source, batch-0 streams) — the measurement the CLI's --spectrum
    // flag has always made, now owned by the engine.
    let mut spectrum = None;
    if plan.spectrum && completed && stop_batch == total_batches {
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);
        let ctx = BatchContext {
            index: 0,
            algorithm: Algorithm::History,
            sources: &sources,
            streams: &streams,
            mesh: None,
            spectrum: true,
            profiler: None,
            queueing: plan.queueing,
        };
        spectrum = policy
            .transport_batch(problem, &ctx)
            .ok()
            .and_then(|o| o.spectrum);
    }

    let statepoint = Statepoint {
        seed: problem.seed,
        completed_batches,
        source,
        k_history: k_history.clone(),
        tallies,
    };
    let result = assemble_result(
        &batches,
        &k_history,
        plan.inactive,
        tallies,
        mesh_total,
        mesh_stats,
        event_stats,
        t_start.elapsed(),
    );
    RunReport {
        batches,
        k_history,
        checkpoints,
        statepoint,
        spectrum,
        completed,
        halt_reason,
        result,
    }
}

/// Assemble the legacy [`EigenvalueResult`] view. The k statistics are
/// computed over active entries of the *full* `k_history` with the exact
/// summation order of [`crate::tally::BatchStats`], so a cold full run
/// matches the legacy driver bit for bit and a resumed run matches the
/// legacy resume path.
#[allow(clippy::too_many_arguments)]
fn assemble_result(
    batches: &[BatchResult],
    k_history: &[f64],
    inactive: usize,
    tallies: Tallies,
    mesh: Option<MeshTally>,
    mesh_stats: Option<MeshStats>,
    event_stats: Option<EventStats>,
    total_time: Duration,
) -> EigenvalueResult {
    let active_ks: Vec<f64> = k_history
        .iter()
        .enumerate()
        .filter(|(i, _)| *i >= inactive)
        .map(|(_, &k)| k)
        .collect();
    let k_mean = if active_ks.is_empty() {
        0.0
    } else {
        active_ks.iter().sum::<f64>() / active_ks.len() as f64
    };
    let k_std = if active_ks.len() > 1 {
        let var = active_ks
            .iter()
            .map(|k| (k - k_mean) * (k - k_mean))
            .sum::<f64>()
            / (active_ks.len() - 1) as f64;
        (var / active_ks.len() as f64).sqrt()
    } else {
        0.0
    };
    EigenvalueResult {
        batches: batches.to_vec(),
        k_mean,
        k_std,
        tallies,
        mesh,
        mesh_stats,
        event_stats,
        total_time,
    }
}

/// Options for a one-off [`transport_batch`] call (the building block
/// the bench harnesses use to time a single bank transport).
pub struct BatchRequest<'a> {
    /// Transport algorithm.
    pub algorithm: Algorithm,
    /// Optional mesh tally.
    pub mesh: Option<MeshSpec>,
    /// Score a flux spectrum (history only).
    pub spectrum: bool,
    /// External profiler: forces the sequential fig. 4 history path.
    pub profiler: Option<&'a mcs_prof::ThreadProfiler>,
    /// Stage-2 queueing for the event pipeline.
    pub queueing: QueueingConfig,
}

impl Default for BatchRequest<'static> {
    fn default() -> Self {
        BatchRequest {
            algorithm: Algorithm::History,
            mesh: None,
            spectrum: false,
            profiler: None,
            queueing: QueueingConfig::default(),
        }
    }
}

/// Transport one batch outside the batch loop: `sources[i]` paired with
/// `streams[i]`, under `policy`. Panics if the policy halts.
pub fn transport_batch(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    req: &BatchRequest<'_>,
    policy: &mut dyn ExecutionPolicy,
) -> BatchOutput {
    let ctx = BatchContext {
        index: 0,
        algorithm: req.algorithm,
        sources,
        streams,
        mesh: req.mesh,
        spectrum: req.spectrum,
        profiler: req.profiler,
        queueing: req.queueing,
    };
    match policy.transport_batch(problem, &ctx) {
        Ok(out) => out,
        Err(h) => panic!("transport_batch halted: {}", h.reason),
    }
}

/// One batch transported into CHUNK=256 keyed partials — the canonical
/// summation tree exposed as data, for callers that fold tallies across
/// address spaces (the distributed policy's chunk-keyed all-reduce).
pub struct ChunkedBatch {
    /// Per-chunk tallies, chunk `k` covering source indices
    /// `[k*CHUNK, (k+1)*CHUNK)`. Summing float fields chunk-by-chunk in
    /// index order reproduces the serial reduction bit for bit. (On the
    /// event path, all associative integer tallies ride in chunk 0.)
    pub chunk_tallies: Vec<Tallies>,
    /// Banked fission sites, sorted by (parent, seq); parents are local
    /// to this call's source slice.
    pub sites: Vec<Site>,
    /// Event-pipeline statistics (event algorithm only).
    pub event_stats: Option<EventStats>,
}

/// Transport one batch on the current thread pool, returning per-chunk
/// partial tallies instead of a merged outcome.
pub fn transport_chunks(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    algorithm: Algorithm,
    queueing: &QueueingConfig,
) -> ChunkedBatch {
    match algorithm {
        Algorithm::History => {
            let outcomes = crate::history::run_histories_chunked_impl(problem, sources, streams);
            let mut chunk_tallies = Vec::with_capacity(outcomes.len());
            let mut sites = Vec::new();
            for o in outcomes {
                chunk_tallies.push(o.tallies);
                sites.extend(o.sites);
            }
            ChunkedBatch {
                chunk_tallies,
                sites,
                event_stats: None,
            }
        }
        Algorithm::EventBanking => {
            let (chunk_tallies, sites, stats) =
                crate::event::run_event_transport_chunked_impl(problem, sources, streams, queueing);
            ChunkedBatch {
                chunk_tallies,
                sites,
                event_stats: Some(stats),
            }
        }
    }
}

/// Instantiate the policy a [`PolicySpec`] describes. `mcs_core` knows
/// `Serial` and `Threaded`; map `Distributed` to
/// `mcs_cluster::DistributedPolicy` at a layer that links the cluster
/// crate (the CLI does).
pub fn policy_for(spec: PolicySpec) -> Box<dyn ExecutionPolicy> {
    match spec {
        PolicySpec::Serial => Box::new(Serial::new()),
        PolicySpec::Threaded { threads } => Box::new(Threaded::new(threads)),
        PolicySpec::Distributed { .. } => panic!(
            "mcs_core cannot instantiate a distributed policy; \
             build an mcs_cluster::DistributedPolicy from the spec"
        ),
    }
}
