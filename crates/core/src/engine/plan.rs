//! Serializable run plans.
//!
//! A [`RunPlan`] is the complete, declarative description of one
//! simulation: which problem to build, which transport algorithm to use,
//! the run mode, the batch/particle scale, and the optional tally,
//! spectrum, and checkpoint features. Plans round-trip through a small
//! TOML subset ([`RunPlan::to_toml`] / [`RunPlan::from_toml`]) so they
//! can be stored on disk and replayed bit-identically (`mcs run --plan`).

use crate::physics::AbsorptionTreatment;
use crate::problem::{HmModel, Problem, ProblemConfig};
use crate::queueing::{QueueingConfig, QueueingMode};

/// Which problem geometry/library to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelRef {
    /// The tiny single-assembly unit-test problem ([`Problem::test_small`]).
    Test,
    /// Hoogenboom–Martin small (34 nuclides).
    Small,
    /// Hoogenboom–Martin large (~300 nuclides, the paper's benchmark).
    Large,
}

impl ModelRef {
    /// The plan-file keyword for this model.
    pub fn keyword(self) -> &'static str {
        match self {
            ModelRef::Test => "test",
            ModelRef::Small => "small",
            ModelRef::Large => "large",
        }
    }
}

/// Which transport algorithm executes each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Classical history-based transport (one particle start-to-finish).
    History,
    /// The paper's SIMD event-banking pipeline (staged bank transport).
    EventBanking,
}

impl Algorithm {
    /// The plan-file keyword for this algorithm.
    pub fn keyword(self) -> &'static str {
        match self {
            Algorithm::History => "history",
            Algorithm::EventBanking => "event",
        }
    }
}

/// The simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Power-iteration k-eigenvalue run (inactive + active batches).
    Eigenvalue,
    /// Fixed-source run with fission-chain following.
    FixedSource,
}

impl RunMode {
    /// The plan-file keyword for this mode.
    pub fn keyword(self) -> &'static str {
        match self {
            RunMode::Eigenvalue => "eigenvalue",
            RunMode::FixedSource => "fixed-source",
        }
    }
}

/// Declarative description of the execution policy to run under.
///
/// This is plain data: `mcs_core` can instantiate `Serial` and
/// `Threaded`; `Distributed` is mapped to a policy object by
/// `mcs-cluster` (the core crate has no rank runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Single-threaded execution (a 1-thread pool).
    Serial,
    /// A dedicated rayon pool with `threads` workers.
    Threaded {
        /// Worker-thread count (0 = ambient/default pool).
        threads: usize,
    },
    /// The chunk-keyed distributed runtime with `ranks` ranks.
    Distributed {
        /// Number of simulated MPI ranks.
        ranks: usize,
    },
}

impl PolicySpec {
    /// Human-readable one-line description.
    pub fn describe(self) -> String {
        match self {
            PolicySpec::Serial => "serial (1 thread)".to_string(),
            PolicySpec::Threaded { threads: 0 } => "threaded (ambient pool)".to_string(),
            PolicySpec::Threaded { threads } => format!("threaded ({threads} threads)"),
            PolicySpec::Distributed { ranks } => format!("distributed ({ranks} ranks)"),
        }
    }
}

/// A complete, serializable description of one simulation run.
///
/// The engine executes a plan with [`crate::engine::run`]; every knob the
/// legacy drivers exposed (mesh tallies, spectrum pass, checkpoint
/// cadence, survival biasing, seed override) is a field here so the whole
/// run matrix is one declarative value.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// Problem to build.
    pub model: ModelRef,
    /// Transport algorithm for every batch.
    pub algorithm: Algorithm,
    /// Eigenvalue or fixed-source.
    pub mode: RunMode,
    /// Particles per batch (eigenvalue) or source particles (fixed-source).
    pub particles: usize,
    /// Inactive (discarded) batches.
    pub inactive: usize,
    /// Active (tallied) batches.
    pub active: usize,
    /// Override of the problem's master seed (`None` = model default).
    pub seed: Option<u64>,
    /// Use survival-biasing absorption treatment.
    pub survival: bool,
    /// Shannon-entropy mesh resolution.
    pub entropy_mesh: (usize, usize, usize),
    /// Optional mesh-tally resolution (covering the problem bounds),
    /// scored over active batches only.
    pub mesh_tally: Option<(usize, usize, usize)>,
    /// Score a flux spectrum in a dedicated history pass after the run.
    pub spectrum: bool,
    /// Write a statepoint every `n` batches.
    pub checkpoint_every: Option<usize>,
    /// Fission-chain depth cap (fixed-source mode only).
    pub max_chain: usize,
    /// Stage-2 particle queueing for the event pipeline (ignored by the
    /// history algorithm). Any setting is bitwise-equivalent; this is a
    /// pure lookup-locality knob.
    pub queueing: QueueingConfig,
    /// Execution policy to run under.
    pub policy: PolicySpec,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            model: ModelRef::Test,
            algorithm: Algorithm::History,
            mode: RunMode::Eigenvalue,
            particles: 2000,
            inactive: 3,
            active: 5,
            seed: None,
            survival: false,
            entropy_mesh: (8, 8, 4),
            mesh_tally: None,
            spectrum: false,
            checkpoint_every: None,
            max_chain: 100_000,
            queueing: QueueingConfig::default(),
            policy: PolicySpec::Serial,
        }
    }
}

impl RunPlan {
    /// Total batch count (inactive + active).
    pub fn total_batches(&self) -> usize {
        self.inactive + self.active
    }

    /// The problem configuration this plan's model resolves to (before
    /// the seed override). Cheap — does not build the nuclide library.
    pub fn default_config(&self) -> ProblemConfig {
        match self.model {
            ModelRef::Test => ProblemConfig::test_scale(),
            ModelRef::Small | ModelRef::Large => ProblemConfig::default(),
        }
    }

    /// The master seed the run will actually use.
    pub fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or(self.default_config().seed)
    }

    /// Build the problem this plan describes, applying the survival
    /// treatment and seed override.
    pub fn build_problem(&self) -> Problem {
        let mut problem = match self.model {
            ModelRef::Test => Problem::test_small(),
            ModelRef::Small => Problem::hm(HmModel::Small, &ProblemConfig::default()),
            ModelRef::Large => Problem::hm(HmModel::Large, &ProblemConfig::default()),
        };
        if self.survival {
            problem.treatment = AbsorptionTreatment::survival_default();
        }
        if let Some(s) = self.seed {
            problem.seed = s;
        }
        problem
    }

    /// Fully-resolved multi-line description (what `mcs run --plan
    /// --dry-run` prints).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("model:            {}\n", self.model.keyword()));
        s.push_str(&format!("algorithm:        {}\n", self.algorithm.keyword()));
        s.push_str(&format!("mode:             {}\n", self.mode.keyword()));
        s.push_str(&format!("policy:           {}\n", self.policy.describe()));
        s.push_str(&format!(
            "seed:             {} ({})\n",
            self.resolved_seed(),
            if self.seed.is_some() {
                "plan override"
            } else {
                "model default"
            }
        ));
        match self.mode {
            RunMode::Eigenvalue => {
                s.push_str(&format!(
                    "batches:          {} inactive + {} active = {}\n",
                    self.inactive,
                    self.active,
                    self.total_batches()
                ));
                s.push_str(&format!("particles/batch:  {}\n", self.particles));
                let (ex, ey, ez) = self.entropy_mesh;
                s.push_str(&format!("entropy mesh:     {ex}x{ey}x{ez}\n"));
                match self.mesh_tally {
                    Some((nx, ny, nz)) => {
                        s.push_str(&format!("mesh tally:       {nx}x{ny}x{nz}\n"))
                    }
                    None => s.push_str("mesh tally:       off\n"),
                }
                s.push_str(&format!(
                    "spectrum pass:    {}\n",
                    if self.spectrum { "on" } else { "off" }
                ));
                match self.checkpoint_every {
                    Some(n) => s.push_str(&format!("checkpoints:      every {n} batches\n")),
                    None => s.push_str("checkpoints:      off\n"),
                }
            }
            RunMode::FixedSource => {
                s.push_str(&format!("source particles: {}\n", self.particles));
                s.push_str(&format!("max chain depth:  {}\n", self.max_chain));
            }
        }
        s.push_str(&format!(
            "survival biasing: {}\n",
            if self.survival { "on" } else { "off" }
        ));
        if self.algorithm == Algorithm::EventBanking {
            s.push_str(&format!(
                "event queueing:   {} ({} bins{})\n",
                self.queueing.mode.name(),
                self.queueing.energy_bins,
                if self.queueing.fuel_split {
                    ", fuel split"
                } else {
                    ""
                }
            ));
        }
        s
    }

    /// Serialize to the plan-file TOML subset. Round-trips through
    /// [`RunPlan::from_toml`].
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        s.push_str("[plan]\n");
        s.push_str(&format!("model = \"{}\"\n", self.model.keyword()));
        s.push_str(&format!("algorithm = \"{}\"\n", self.algorithm.keyword()));
        s.push_str(&format!("mode = \"{}\"\n", self.mode.keyword()));
        s.push_str(&format!("particles = {}\n", self.particles));
        s.push_str(&format!("inactive = {}\n", self.inactive));
        s.push_str(&format!("active = {}\n", self.active));
        if let Some(seed) = self.seed {
            s.push_str(&format!("seed = {seed}\n"));
        }
        s.push_str(&format!("survival = {}\n", self.survival));
        let (ex, ey, ez) = self.entropy_mesh;
        s.push_str(&format!("entropy_mesh = [{ex}, {ey}, {ez}]\n"));
        if let Some((nx, ny, nz)) = self.mesh_tally {
            s.push_str(&format!("mesh_tally = [{nx}, {ny}, {nz}]\n"));
        }
        s.push_str(&format!("spectrum = {}\n", self.spectrum));
        if let Some(every) = self.checkpoint_every {
            s.push_str(&format!("checkpoint_every = {every}\n"));
        }
        s.push_str(&format!("max_chain = {}\n", self.max_chain));
        s.push_str(&format!("queueing = \"{}\"\n", self.queueing.mode.name()));
        s.push_str(&format!("queueing_bins = {}\n", self.queueing.energy_bins));
        s.push_str(&format!(
            "queueing_fuel_split = {}\n",
            self.queueing.fuel_split
        ));
        s.push_str("\n[policy]\n");
        match self.policy {
            PolicySpec::Serial => s.push_str("kind = \"serial\"\n"),
            PolicySpec::Threaded { threads } => {
                s.push_str("kind = \"threaded\"\n");
                s.push_str(&format!("threads = {threads}\n"));
            }
            PolicySpec::Distributed { ranks } => {
                s.push_str("kind = \"distributed\"\n");
                s.push_str(&format!("ranks = {ranks}\n"));
            }
        }
        s
    }

    /// Parse a plan from the TOML subset emitted by
    /// [`RunPlan::to_toml`]: `[plan]` / `[policy]` tables with
    /// `key = value` pairs (integers, booleans, quoted strings, and
    /// 3-element integer arrays), `#` comments.
    pub fn from_toml(text: &str) -> Result<RunPlan, String> {
        let mut plan = RunPlan::default();
        let mut policy_kind: Option<String> = None;
        let mut policy_threads: Option<usize> = None;
        let mut policy_ranks: Option<usize> = None;
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("plan line {}: {}", lineno + 1, msg);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "plan" && section != "policy" {
                    return Err(err(&format!(
                        "unknown section [{section}] (expected [plan] or [policy])"
                    )));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let key = key.trim();
            let value = Value::parse(value.trim()).map_err(|e| err(&e))?;
            match (section.as_str(), key) {
                ("plan", "model") => {
                    plan.model = match value.as_str().map_err(|e| err(&e))? {
                        "test" => ModelRef::Test,
                        "small" => ModelRef::Small,
                        "large" => ModelRef::Large,
                        other => return Err(err(&format!("unknown model \"{other}\""))),
                    }
                }
                ("plan", "algorithm") => {
                    plan.algorithm = match value.as_str().map_err(|e| err(&e))? {
                        "history" => Algorithm::History,
                        "event" => Algorithm::EventBanking,
                        other => return Err(err(&format!("unknown algorithm \"{other}\""))),
                    }
                }
                ("plan", "mode") => {
                    plan.mode = match value.as_str().map_err(|e| err(&e))? {
                        "eigenvalue" => RunMode::Eigenvalue,
                        "fixed-source" => RunMode::FixedSource,
                        other => return Err(err(&format!("unknown mode \"{other}\""))),
                    }
                }
                ("plan", "particles") => plan.particles = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "inactive") => plan.inactive = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "active") => plan.active = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "seed") => plan.seed = Some(value.as_u64().map_err(|e| err(&e))?),
                ("plan", "survival") => plan.survival = value.as_bool().map_err(|e| err(&e))?,
                ("plan", "entropy_mesh") => {
                    plan.entropy_mesh = value.as_triple().map_err(|e| err(&e))?
                }
                ("plan", "mesh_tally") => {
                    plan.mesh_tally = Some(value.as_triple().map_err(|e| err(&e))?)
                }
                ("plan", "spectrum") => plan.spectrum = value.as_bool().map_err(|e| err(&e))?,
                ("plan", "checkpoint_every") => {
                    plan.checkpoint_every = Some(value.as_usize().map_err(|e| err(&e))?)
                }
                ("plan", "max_chain") => plan.max_chain = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "queueing") => {
                    let name = value.as_str().map_err(|e| err(&e))?;
                    plan.queueing.mode = QueueingMode::from_name(name).ok_or_else(|| {
                        err(&format!(
                            "unknown queueing mode \"{name}\" \
                             (expected off | material | material+energy)"
                        ))
                    })?;
                }
                ("plan", "queueing_bins") => {
                    plan.queueing.energy_bins = value.as_usize().map_err(|e| err(&e))?
                }
                ("plan", "queueing_fuel_split") => {
                    plan.queueing.fuel_split = value.as_bool().map_err(|e| err(&e))?
                }
                ("policy", "kind") => {
                    policy_kind = Some(value.as_str().map_err(|e| err(&e))?.to_string())
                }
                ("policy", "threads") => {
                    policy_threads = Some(value.as_usize().map_err(|e| err(&e))?)
                }
                ("policy", "ranks") => policy_ranks = Some(value.as_usize().map_err(|e| err(&e))?),
                ("", k) => return Err(err(&format!("key `{k}` before any [section]"))),
                (s, k) => return Err(err(&format!("unknown key `{k}` in [{s}]"))),
            }
        }
        if let Some(kind) = policy_kind {
            plan.policy = match kind.as_str() {
                "serial" => PolicySpec::Serial,
                "threaded" => PolicySpec::Threaded {
                    threads: policy_threads.unwrap_or(0),
                },
                "distributed" => PolicySpec::Distributed {
                    ranks: policy_ranks.ok_or("policy kind \"distributed\" requires `ranks`")?,
                },
                other => return Err(format!("unknown policy kind \"{other}\"")),
            };
        }
        if plan.mode == RunMode::Eigenvalue && plan.total_batches() == 0 {
            return Err("plan has zero batches (inactive + active == 0)".to_string());
        }
        if plan.particles == 0 {
            return Err("plan has zero particles".to_string());
        }
        plan.queueing.validate()?;
        Ok(plan)
    }
}

/// Truncate `line` at the first `#` that is outside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A parsed plan-file value.
enum Value {
    Str(String),
    Int(u64),
    Bool(bool),
    Array(Vec<u64>),
}

impl Value {
    fn parse(raw: &str) -> Result<Value, String> {
        if let Some(inner) = raw.strip_prefix('"') {
            let inner = inner
                .strip_suffix('"')
                .ok_or_else(|| format!("unterminated string {raw}"))?;
            if inner.contains('"') {
                return Err(format!("embedded quote in string {raw}"));
            }
            return Ok(Value::Str(inner.to_string()));
        }
        if raw == "true" {
            return Ok(Value::Bool(true));
        }
        if raw == "false" {
            return Ok(Value::Bool(false));
        }
        if let Some(inner) = raw.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("unterminated array {raw}"))?;
            let items: Result<Vec<u64>, _> =
                inner.split(',').map(|s| s.trim().parse::<u64>()).collect();
            return items
                .map(Value::Array)
                .map_err(|_| format!("non-integer array element in {raw}"));
        }
        // Allow underscore digit grouping, as TOML does.
        raw.replace('_', "")
            .parse::<u64>()
            .map(Value::Int)
            .map_err(|_| format!("cannot parse value `{raw}`"))
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err("expected a quoted string".to_string()),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            _ => Err("expected an integer".to_string()),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        Ok(self.as_u64()? as usize)
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected `true` or `false`".to_string()),
        }
    }

    fn as_triple(&self) -> Result<(usize, usize, usize), String> {
        match self {
            Value::Array(v) if v.len() == 3 => Ok((v[0] as usize, v[1] as usize, v[2] as usize)),
            _ => Err("expected a 3-element integer array".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_round_trips() {
        let plan = RunPlan::default();
        let text = plan.to_toml();
        let back = RunPlan::from_toml(&text).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn full_plan_round_trips() {
        let plan = RunPlan {
            model: ModelRef::Small,
            algorithm: Algorithm::EventBanking,
            mode: RunMode::Eigenvalue,
            particles: 12_345,
            inactive: 7,
            active: 11,
            seed: Some(0xDEAD_BEEF),
            survival: true,
            entropy_mesh: (4, 5, 6),
            mesh_tally: Some((10, 11, 12)),
            spectrum: true,
            checkpoint_every: Some(3),
            max_chain: 42,
            queueing: QueueingConfig {
                mode: QueueingMode::MaterialEnergy,
                energy_bins: 512,
                fuel_split: true,
            },
            policy: PolicySpec::Distributed { ranks: 4 },
        };
        let back = RunPlan::from_toml(&plan.to_toml()).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn queueing_fields_parse_and_validate() {
        let text = "[plan]\nqueueing = \"off\"\nqueueing_bins = 128\n";
        let plan = RunPlan::from_toml(text).expect("parse");
        assert_eq!(plan.queueing.mode, QueueingMode::Off);
        assert_eq!(plan.queueing.energy_bins, 128);
        assert!(!plan.queueing.fuel_split);
        assert!(RunPlan::from_toml("[plan]\nqueueing = \"bogus\"\n").is_err());
        assert!(RunPlan::from_toml("[plan]\nqueueing_bins = 100\n").is_err());
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let text = "\n# a comment\n[plan]\n  model = \"test\"  # trailing\n\nparticles = 1_000\n[policy]\nkind = \"threaded\"\nthreads = 2\n";
        let plan = RunPlan::from_toml(text).expect("parse");
        assert_eq!(plan.model, ModelRef::Test);
        assert_eq!(plan.particles, 1000);
        assert_eq!(plan.policy, PolicySpec::Threaded { threads: 2 });
    }

    #[test]
    fn unknown_key_rejected() {
        let text = "[plan]\nmodell = \"test\"\n";
        assert!(RunPlan::from_toml(text).is_err());
    }

    #[test]
    fn unknown_section_rejected() {
        assert!(RunPlan::from_toml("[nope]\n").is_err());
    }

    #[test]
    fn distributed_requires_ranks() {
        let text = "[policy]\nkind = \"distributed\"\n";
        assert!(RunPlan::from_toml(text).is_err());
    }

    #[test]
    fn zero_scale_rejected() {
        assert!(RunPlan::from_toml("[plan]\ninactive = 0\nactive = 0\n").is_err());
        assert!(RunPlan::from_toml("[plan]\nparticles = 0\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        // No current keyword contains '#', but the lexer must not split
        // strings on it.
        assert_eq!(strip_comment("key = \"a#b\" # real"), "key = \"a#b\" ");
    }
}
