//! Serializable run plans.
//!
//! A [`RunPlan`] is the complete, declarative description of one
//! simulation: which problem to build, which transport algorithm to use,
//! the run mode, the batch/particle scale, and the optional tally,
//! spectrum, and checkpoint features. Plans round-trip through a small
//! TOML subset ([`RunPlan::to_toml`] / [`RunPlan::from_toml`]) so they
//! can be stored on disk and replayed bit-identically (`mcs run --plan`).

use std::fmt;

use mcs_geom::{RodPattern, TraversalKind};

use crate::catalog;
use crate::physics::AbsorptionTreatment;
use crate::problem::{Problem, ProblemConfig};
use crate::queueing::{QueueingConfig, QueueingMode};

/// Which problem to build: a catalog entry name plus optional parameter
/// overrides (the open replacement for the old closed `ModelRef` enum).
///
/// The name is validated against [`crate::catalog::NAMES`] when a plan is
/// parsed; specs constructed programmatically with an unknown name panic
/// at [`RunPlan::build_problem`] time with the same catalog listing.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Catalog entry name (`test`, `small`, `large`, `smr`, `shield`).
    pub name: String,
    /// Parameter overrides applied on top of the entry's baseline.
    pub overrides: ModelOverrides,
}

/// Optional per-plan overrides of a catalog entry's [`mcs_geom::CoreSpec`]
/// parameters. `None` everywhere (the default) leaves the entry exactly
/// as catalogued — and serializes to nothing, so plans without overrides
/// keep their historic TOML text and plan hash.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelOverrides {
    /// Occupied assembly positions in the core lattice.
    pub assemblies: Option<usize>,
    /// Multiplier applied to every enrichment zone.
    pub enrichment: Option<f64>,
    /// Control-rod insertion pattern.
    pub rods: Option<RodPattern>,
    /// Axial half-height of the active core (cm).
    pub half_height: Option<f64>,
}

impl ModelOverrides {
    /// True when no override is set.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

impl Default for ModelSpec {
    fn default() -> Self {
        Self::test()
    }
}

impl ModelSpec {
    /// A spec for catalog entry `name` with no overrides.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            overrides: ModelOverrides::default(),
        }
    }

    /// The tiny single-assembly unit-test problem.
    pub fn test() -> Self {
        Self::named("test")
    }

    /// Hoogenboom–Martin small (34 nuclides).
    pub fn small() -> Self {
        Self::named("small")
    }

    /// Hoogenboom–Martin large (~300 nuclides, the paper's benchmark).
    pub fn large() -> Self {
        Self::named("large")
    }

    /// The plan-file keyword (catalog entry name).
    pub fn keyword(&self) -> &str {
        &self.name
    }

    /// Canonical one-line rendering of name + overrides. Injective over
    /// distinct specs, so it is safe key material for problem caches.
    pub fn spec_string(&self) -> String {
        let mut s = self.name.clone();
        let o = &self.overrides;
        if let Some(n) = o.assemblies {
            s.push_str(&format!(";assemblies={n}"));
        }
        if let Some(e) = o.enrichment {
            s.push_str(&format!(";enrichment={e}"));
        }
        if let Some(r) = o.rods {
            s.push_str(&format!(";rods={}", r.name()));
        }
        if let Some(h) = o.half_height {
            s.push_str(&format!(";half_height={h}"));
        }
        s
    }
}

/// Which device model to price the run on: a device-catalog entry name
/// plus optional numeric overrides (the device-layer mirror of
/// [`ModelSpec`]).
///
/// `mcs_core` treats this as plain data — the catalog itself lives in
/// `mcs-device` (`mcs_device::catalog::resolve`), which validates the
/// name and applies the overrides. The default ref (the paper's host
/// Xeon, no overrides) serializes to nothing, so plans that never touch
/// the device knob keep their historic TOML text and plan hash.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRef {
    /// Device-catalog entry name (`host-e5-2687w`, `knc-7120a`,
    /// `a100`, ...).
    pub name: String,
    /// Numeric overrides applied on top of the entry's datasheet values.
    pub overrides: DeviceOverrides,
}

/// The default device-catalog entry name (the paper's JLSE host Xeon).
pub const DEFAULT_DEVICE: &str = "host-e5-2687w";

impl Default for DeviceRef {
    fn default() -> Self {
        Self::named(DEFAULT_DEVICE)
    }
}

impl DeviceRef {
    /// A ref for catalog entry `name` with no overrides.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            overrides: DeviceOverrides::default(),
        }
    }

    /// True when this is the default device with no overrides — the
    /// configuration every pre-catalog plan implicitly ran with.
    pub fn is_default(&self) -> bool {
        self.name == DEFAULT_DEVICE && self.overrides.is_default()
    }

    /// Canonical one-line rendering of name + overrides. Injective over
    /// distinct refs, so it is safe key material for result caches.
    pub fn spec_string(&self) -> String {
        let mut s = self.name.clone();
        let o = &self.overrides;
        if let Some(c) = o.cores {
            s.push_str(&format!(";cores={c}"));
        }
        if let Some(g) = o.clock_ghz {
            s.push_str(&format!(";clock_ghz={g}"));
        }
        if let Some(bw) = o.dram_gb_s {
            s.push_str(&format!(";dram_gb_s={bw}"));
        }
        if let Some(bw) = o.link_gb_s {
            s.push_str(&format!(";link_gb_s={bw}"));
        }
        s
    }
}

/// Optional per-plan overrides of a device-catalog entry's structural
/// parameters. `None` everywhere (the default) leaves the entry exactly
/// as catalogued — and serializes to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceOverrides {
    /// Core (or SM/CU) count.
    pub cores: Option<usize>,
    /// Core clock, GHz.
    pub clock_ghz: Option<f64>,
    /// Main-memory bandwidth, GB/s.
    pub dram_gb_s: Option<f64>,
    /// Host-link contiguous bandwidth, GB/s (the banked regime scales
    /// with it).
    pub link_gb_s: Option<f64>,
}

impl DeviceOverrides {
    /// True when no override is set.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// A typed plan-parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The plan names a model that is not a catalog entry.
    UnknownModel {
        /// The name the plan asked for.
        name: String,
    },
    /// Any other syntax or validation error, with a 1-based line number
    /// where one is known.
    Parse {
        /// Line the error was detected on (`None` for whole-plan checks).
        line: Option<usize>,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownModel { name } => write!(f, "{}", catalog::unknown_model(name)),
            PlanError::Parse { line: Some(l), msg } => write!(f, "plan line {l}: {msg}"),
            PlanError::Parse { line: None, msg } => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Which transport algorithm executes each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Classical history-based transport (one particle start-to-finish).
    History,
    /// The paper's SIMD event-banking pipeline (staged bank transport).
    EventBanking,
}

impl Algorithm {
    /// The plan-file keyword for this algorithm.
    pub fn keyword(self) -> &'static str {
        match self {
            Algorithm::History => "history",
            Algorithm::EventBanking => "event",
        }
    }
}

/// The simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Power-iteration k-eigenvalue run (inactive + active batches).
    Eigenvalue,
    /// Fixed-source run with fission-chain following.
    FixedSource,
}

impl RunMode {
    /// The plan-file keyword for this mode.
    pub fn keyword(self) -> &'static str {
        match self {
            RunMode::Eigenvalue => "eigenvalue",
            RunMode::FixedSource => "fixed-source",
        }
    }
}

/// Declarative description of the execution policy to run under.
///
/// This is plain data: `mcs_core` can instantiate `Serial` and
/// `Threaded`; `Distributed` is mapped to a policy object by
/// `mcs-cluster` (the core crate has no rank runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Single-threaded execution (a 1-thread pool).
    Serial,
    /// A dedicated rayon pool with `threads` workers.
    Threaded {
        /// Worker-thread count (0 = ambient/default pool).
        threads: usize,
    },
    /// The chunk-keyed distributed runtime with `ranks` ranks.
    Distributed {
        /// Number of simulated MPI ranks.
        ranks: usize,
    },
}

impl PolicySpec {
    /// Human-readable one-line description.
    pub fn describe(self) -> String {
        match self {
            PolicySpec::Serial => "serial (1 thread)".to_string(),
            PolicySpec::Threaded { threads: 0 } => "threaded (ambient pool)".to_string(),
            PolicySpec::Threaded { threads } => format!("threaded ({threads} threads)"),
            PolicySpec::Distributed { ranks } => format!("distributed ({ranks} ranks)"),
        }
    }
}

/// A complete, serializable description of one simulation run.
///
/// The engine executes a plan with [`crate::engine::run`]; every knob the
/// legacy drivers exposed (mesh tallies, spectrum pass, checkpoint
/// cadence, survival biasing, seed override) is a field here so the whole
/// run matrix is one declarative value.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// Problem to build: catalog entry + overrides.
    pub model: ModelSpec,
    /// Geometry-lookup treatment (flattened cell lists vs nested
    /// universe search). Any setting is bitwise-equivalent; this is a
    /// pure traversal-work knob, but it is kept in the plan hash because
    /// it changes the instrumentation profile of a run.
    pub traversal: TraversalKind,
    /// Transport algorithm for every batch.
    pub algorithm: Algorithm,
    /// Eigenvalue or fixed-source.
    pub mode: RunMode,
    /// Particles per batch (eigenvalue) or source particles (fixed-source).
    pub particles: usize,
    /// Inactive (discarded) batches.
    pub inactive: usize,
    /// Active (tallied) batches.
    pub active: usize,
    /// Override of the problem's master seed (`None` = model default).
    pub seed: Option<u64>,
    /// Use survival-biasing absorption treatment.
    pub survival: bool,
    /// Shannon-entropy mesh resolution.
    pub entropy_mesh: (usize, usize, usize),
    /// Optional mesh-tally resolution (covering the problem bounds),
    /// scored over active batches only.
    pub mesh_tally: Option<(usize, usize, usize)>,
    /// Score a flux spectrum in a dedicated history pass after the run.
    pub spectrum: bool,
    /// Write a statepoint every `n` batches.
    pub checkpoint_every: Option<usize>,
    /// Fission-chain depth cap (fixed-source mode only).
    pub max_chain: usize,
    /// Stage-2 particle queueing for the event pipeline (ignored by the
    /// history algorithm). Any setting is bitwise-equivalent; this is a
    /// pure lookup-locality knob.
    pub queueing: QueueingConfig,
    /// Execution policy to run under.
    pub policy: PolicySpec,
    /// Device model to price the run on (analytic layer only — the
    /// physics always runs on this host). The default ref serializes to
    /// nothing, preserving historic plan text and hashes.
    pub device: DeviceRef,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            model: ModelSpec::test(),
            traversal: TraversalKind::default(),
            algorithm: Algorithm::History,
            mode: RunMode::Eigenvalue,
            particles: 2000,
            inactive: 3,
            active: 5,
            seed: None,
            survival: false,
            entropy_mesh: (8, 8, 4),
            mesh_tally: None,
            spectrum: false,
            checkpoint_every: None,
            max_chain: 100_000,
            queueing: QueueingConfig::default(),
            policy: PolicySpec::Serial,
            device: DeviceRef::default(),
        }
    }
}

impl RunPlan {
    /// Total batch count (inactive + active).
    pub fn total_batches(&self) -> usize {
        self.inactive + self.active
    }

    /// The problem configuration this plan's model resolves to (before
    /// the seed override). Cheap — does not build the nuclide library.
    ///
    /// # Panics
    /// If the model spec is invalid (unknown entry or bad overrides) —
    /// impossible for plans that came through [`RunPlan::from_toml`],
    /// which validates the spec.
    pub fn default_config(&self) -> ProblemConfig {
        catalog::config_for(&self.model).unwrap_or_else(|e| panic!("invalid model spec: {e}"))
    }

    /// The master seed the run will actually use.
    pub fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or(self.default_config().seed)
    }

    /// Build the problem this plan describes, applying the survival
    /// treatment and seed override.
    ///
    /// # Panics
    /// If the model spec is invalid (see [`RunPlan::default_config`]).
    pub fn build_problem(&self) -> Problem {
        let mut problem = catalog::build(&self.model, self.traversal)
            .unwrap_or_else(|e| panic!("invalid model spec: {e}"));
        if self.survival {
            problem.treatment = AbsorptionTreatment::survival_default();
        }
        if let Some(s) = self.seed {
            problem.seed = s;
        }
        problem
    }

    /// Fully-resolved multi-line description (what `mcs run --plan
    /// --dry-run` prints).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("model:            {}\n", self.model.spec_string()));
        s.push_str(&format!("traversal:        {}\n", self.traversal.name()));
        s.push_str(&format!("algorithm:        {}\n", self.algorithm.keyword()));
        s.push_str(&format!("mode:             {}\n", self.mode.keyword()));
        s.push_str(&format!("policy:           {}\n", self.policy.describe()));
        if !self.device.is_default() {
            s.push_str(&format!(
                "device:           {}\n",
                self.device.spec_string()
            ));
        }
        s.push_str(&format!(
            "seed:             {} ({})\n",
            self.resolved_seed(),
            if self.seed.is_some() {
                "plan override"
            } else {
                "model default"
            }
        ));
        match self.mode {
            RunMode::Eigenvalue => {
                s.push_str(&format!(
                    "batches:          {} inactive + {} active = {}\n",
                    self.inactive,
                    self.active,
                    self.total_batches()
                ));
                s.push_str(&format!("particles/batch:  {}\n", self.particles));
                let (ex, ey, ez) = self.entropy_mesh;
                s.push_str(&format!("entropy mesh:     {ex}x{ey}x{ez}\n"));
                match self.mesh_tally {
                    Some((nx, ny, nz)) => {
                        s.push_str(&format!("mesh tally:       {nx}x{ny}x{nz}\n"))
                    }
                    None => s.push_str("mesh tally:       off\n"),
                }
                s.push_str(&format!(
                    "spectrum pass:    {}\n",
                    if self.spectrum { "on" } else { "off" }
                ));
                match self.checkpoint_every {
                    Some(n) => s.push_str(&format!("checkpoints:      every {n} batches\n")),
                    None => s.push_str("checkpoints:      off\n"),
                }
            }
            RunMode::FixedSource => {
                s.push_str(&format!("source particles: {}\n", self.particles));
                s.push_str(&format!("max chain depth:  {}\n", self.max_chain));
            }
        }
        s.push_str(&format!(
            "survival biasing: {}\n",
            if self.survival { "on" } else { "off" }
        ));
        if self.algorithm == Algorithm::EventBanking {
            s.push_str(&format!(
                "event queueing:   {} ({} bins{})\n",
                self.queueing.mode.name(),
                self.queueing.energy_bins,
                if self.queueing.fuel_split {
                    ", fuel split"
                } else {
                    ""
                }
            ));
        }
        s
    }

    /// Serialize to the plan-file TOML subset. Round-trips through
    /// [`RunPlan::from_toml`].
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        s.push_str("[plan]\n");
        s.push_str(&format!("model = \"{}\"\n", self.model.keyword()));
        s.push_str(&format!("algorithm = \"{}\"\n", self.algorithm.keyword()));
        s.push_str(&format!("mode = \"{}\"\n", self.mode.keyword()));
        s.push_str(&format!("particles = {}\n", self.particles));
        s.push_str(&format!("inactive = {}\n", self.inactive));
        s.push_str(&format!("active = {}\n", self.active));
        if let Some(seed) = self.seed {
            s.push_str(&format!("seed = {seed}\n"));
        }
        s.push_str(&format!("survival = {}\n", self.survival));
        let (ex, ey, ez) = self.entropy_mesh;
        s.push_str(&format!("entropy_mesh = [{ex}, {ey}, {ez}]\n"));
        if let Some((nx, ny, nz)) = self.mesh_tally {
            s.push_str(&format!("mesh_tally = [{nx}, {ny}, {nz}]\n"));
        }
        s.push_str(&format!("spectrum = {}\n", self.spectrum));
        if let Some(every) = self.checkpoint_every {
            s.push_str(&format!("checkpoint_every = {every}\n"));
        }
        s.push_str(&format!("max_chain = {}\n", self.max_chain));
        s.push_str(&format!("queueing = \"{}\"\n", self.queueing.mode.name()));
        s.push_str(&format!("queueing_bins = {}\n", self.queueing.energy_bins));
        s.push_str(&format!(
            "queueing_fuel_split = {}\n",
            self.queueing.fuel_split
        ));
        // Emitted only off-default so plans without the new knobs keep
        // their historic TOML text (and therefore their plan hash).
        if self.traversal != TraversalKind::default() {
            s.push_str(&format!("traversal = \"{}\"\n", self.traversal.name()));
        }
        if self.device.name != DEFAULT_DEVICE {
            s.push_str(&format!("device = \"{}\"\n", self.device.name));
        }
        if !self.model.overrides.is_default() {
            let o = &self.model.overrides;
            s.push_str("\n[model]\n");
            if let Some(n) = o.assemblies {
                s.push_str(&format!("assemblies = {n}\n"));
            }
            if let Some(e) = o.enrichment {
                s.push_str(&format!("enrichment = {e}\n"));
            }
            if let Some(r) = o.rods {
                s.push_str(&format!("rods = \"{}\"\n", r.name()));
            }
            if let Some(h) = o.half_height {
                s.push_str(&format!("half_height = {h}\n"));
            }
        }
        if !self.device.overrides.is_default() {
            let o = &self.device.overrides;
            s.push_str("\n[device]\n");
            if let Some(c) = o.cores {
                s.push_str(&format!("cores = {c}\n"));
            }
            if let Some(g) = o.clock_ghz {
                s.push_str(&format!("clock_ghz = {g}\n"));
            }
            if let Some(bw) = o.dram_gb_s {
                s.push_str(&format!("dram_gb_s = {bw}\n"));
            }
            if let Some(bw) = o.link_gb_s {
                s.push_str(&format!("link_gb_s = {bw}\n"));
            }
        }
        s.push_str("\n[policy]\n");
        match self.policy {
            PolicySpec::Serial => s.push_str("kind = \"serial\"\n"),
            PolicySpec::Threaded { threads } => {
                s.push_str("kind = \"threaded\"\n");
                s.push_str(&format!("threads = {threads}\n"));
            }
            PolicySpec::Distributed { ranks } => {
                s.push_str("kind = \"distributed\"\n");
                s.push_str(&format!("ranks = {ranks}\n"));
            }
        }
        s
    }

    /// Parse a plan from the TOML subset emitted by
    /// [`RunPlan::to_toml`]: `[plan]` / `[model]` / `[policy]` tables
    /// with `key = value` pairs (integers, floats, booleans, quoted
    /// strings, and 3-element integer arrays), `#` comments.
    ///
    /// The model name is validated against the catalog here: an unknown
    /// name is a typed [`PlanError::UnknownModel`] whose message names
    /// the valid entries, never a silent default.
    pub fn from_toml(text: &str) -> Result<RunPlan, PlanError> {
        let mut plan = RunPlan::default();
        let mut policy_kind: Option<String> = None;
        let mut policy_threads: Option<usize> = None;
        let mut policy_ranks: Option<usize> = None;
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| PlanError::Parse {
                line: Some(lineno + 1),
                msg: msg.to_string(),
            };
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if !matches!(section.as_str(), "plan" | "model" | "device" | "policy") {
                    return Err(err(&format!(
                        "unknown section [{section}] \
                         (expected [plan], [model], [device], or [policy])"
                    )));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let key = key.trim();
            let value = Value::parse(value.trim()).map_err(|e| err(&e))?;
            match (section.as_str(), key) {
                ("plan", "model") => {
                    let name = value.as_str().map_err(|e| err(&e))?;
                    if !catalog::is_known(name) {
                        return Err(PlanError::UnknownModel {
                            name: name.to_string(),
                        });
                    }
                    plan.model.name = name.to_string();
                }
                ("plan", "traversal") => {
                    let name = value.as_str().map_err(|e| err(&e))?;
                    plan.traversal = TraversalKind::from_name(name).ok_or_else(|| {
                        err(&format!(
                            "unknown traversal \"{name}\" (expected flattened | nested)"
                        ))
                    })?;
                }
                ("model", "assemblies") => {
                    plan.model.overrides.assemblies = Some(value.as_usize().map_err(|e| err(&e))?)
                }
                ("model", "enrichment") => {
                    plan.model.overrides.enrichment = Some(value.as_f64().map_err(|e| err(&e))?)
                }
                ("model", "rods") => {
                    let name = value.as_str().map_err(|e| err(&e))?;
                    plan.model.overrides.rods =
                        Some(RodPattern::from_name(name).ok_or_else(|| {
                            err(&format!(
                                "unknown rod pattern \"{name}\" \
                                 (expected none | center | checkerboard)"
                            ))
                        })?);
                }
                ("model", "half_height") => {
                    plan.model.overrides.half_height = Some(value.as_f64().map_err(|e| err(&e))?)
                }
                ("plan", "device") => {
                    // The name is validated against the device catalog by
                    // the CLI / serve layer (mcs_core cannot see
                    // mcs-device); here it is carried as data.
                    plan.device.name = value.as_str().map_err(|e| err(&e))?.to_string();
                }
                ("device", "cores") => {
                    plan.device.overrides.cores = Some(value.as_usize().map_err(|e| err(&e))?)
                }
                ("device", "clock_ghz") => {
                    plan.device.overrides.clock_ghz = Some(value.as_f64().map_err(|e| err(&e))?)
                }
                ("device", "dram_gb_s") => {
                    plan.device.overrides.dram_gb_s = Some(value.as_f64().map_err(|e| err(&e))?)
                }
                ("device", "link_gb_s") => {
                    plan.device.overrides.link_gb_s = Some(value.as_f64().map_err(|e| err(&e))?)
                }
                ("plan", "algorithm") => {
                    plan.algorithm = match value.as_str().map_err(|e| err(&e))? {
                        "history" => Algorithm::History,
                        "event" => Algorithm::EventBanking,
                        other => return Err(err(&format!("unknown algorithm \"{other}\""))),
                    }
                }
                ("plan", "mode") => {
                    plan.mode = match value.as_str().map_err(|e| err(&e))? {
                        "eigenvalue" => RunMode::Eigenvalue,
                        "fixed-source" => RunMode::FixedSource,
                        other => return Err(err(&format!("unknown mode \"{other}\""))),
                    }
                }
                ("plan", "particles") => plan.particles = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "inactive") => plan.inactive = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "active") => plan.active = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "seed") => plan.seed = Some(value.as_u64().map_err(|e| err(&e))?),
                ("plan", "survival") => plan.survival = value.as_bool().map_err(|e| err(&e))?,
                ("plan", "entropy_mesh") => {
                    plan.entropy_mesh = value.as_triple().map_err(|e| err(&e))?
                }
                ("plan", "mesh_tally") => {
                    plan.mesh_tally = Some(value.as_triple().map_err(|e| err(&e))?)
                }
                ("plan", "spectrum") => plan.spectrum = value.as_bool().map_err(|e| err(&e))?,
                ("plan", "checkpoint_every") => {
                    plan.checkpoint_every = Some(value.as_usize().map_err(|e| err(&e))?)
                }
                ("plan", "max_chain") => plan.max_chain = value.as_usize().map_err(|e| err(&e))?,
                ("plan", "queueing") => {
                    let name = value.as_str().map_err(|e| err(&e))?;
                    plan.queueing.mode = QueueingMode::from_name(name).ok_or_else(|| {
                        err(&format!(
                            "unknown queueing mode \"{name}\" \
                             (expected off | material | material+energy)"
                        ))
                    })?;
                }
                ("plan", "queueing_bins") => {
                    plan.queueing.energy_bins = value.as_usize().map_err(|e| err(&e))?
                }
                ("plan", "queueing_fuel_split") => {
                    plan.queueing.fuel_split = value.as_bool().map_err(|e| err(&e))?
                }
                ("policy", "kind") => {
                    policy_kind = Some(value.as_str().map_err(|e| err(&e))?.to_string())
                }
                ("policy", "threads") => {
                    policy_threads = Some(value.as_usize().map_err(|e| err(&e))?)
                }
                ("policy", "ranks") => policy_ranks = Some(value.as_usize().map_err(|e| err(&e))?),
                ("", k) => return Err(err(&format!("key `{k}` before any [section]"))),
                (s, k) => return Err(err(&format!("unknown key `{k}` in [{s}]"))),
            }
        }
        let invalid = |msg: String| PlanError::Parse { line: None, msg };
        if let Some(kind) = policy_kind {
            plan.policy = match kind.as_str() {
                "serial" => PolicySpec::Serial,
                "threaded" => PolicySpec::Threaded {
                    threads: policy_threads.unwrap_or(0),
                },
                "distributed" => PolicySpec::Distributed {
                    ranks: policy_ranks.ok_or_else(|| {
                        invalid("policy kind \"distributed\" requires `ranks`".to_string())
                    })?,
                },
                other => return Err(invalid(format!("unknown policy kind \"{other}\""))),
            };
        }
        if plan.mode == RunMode::Eigenvalue && plan.total_batches() == 0 {
            return Err(invalid(
                "plan has zero batches (inactive + active == 0)".to_string(),
            ));
        }
        if plan.particles == 0 {
            return Err(invalid("plan has zero particles".to_string()));
        }
        plan.queueing.validate().map_err(invalid)?;
        // Validate the full model spec (overrides included) up front, so
        // `build_problem` cannot fail later on a parsed plan.
        catalog::config_for(&plan.model).map_err(invalid)?;
        Ok(plan)
    }
}

/// Truncate `line` at the first `#` that is outside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A parsed plan-file value.
enum Value {
    Str(String),
    Int(u64),
    Float(f64),
    Bool(bool),
    Array(Vec<u64>),
}

impl Value {
    fn parse(raw: &str) -> Result<Value, String> {
        if let Some(inner) = raw.strip_prefix('"') {
            let inner = inner
                .strip_suffix('"')
                .ok_or_else(|| format!("unterminated string {raw}"))?;
            if inner.contains('"') {
                return Err(format!("embedded quote in string {raw}"));
            }
            return Ok(Value::Str(inner.to_string()));
        }
        if raw == "true" {
            return Ok(Value::Bool(true));
        }
        if raw == "false" {
            return Ok(Value::Bool(false));
        }
        if let Some(inner) = raw.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("unterminated array {raw}"))?;
            let items: Result<Vec<u64>, _> =
                inner.split(',').map(|s| s.trim().parse::<u64>()).collect();
            return items
                .map(Value::Array)
                .map_err(|_| format!("non-integer array element in {raw}"));
        }
        // Allow underscore digit grouping, as TOML does. Integers first,
        // then floats — `{}`-formatted f64 round-trips exactly, and a
        // whole-number float ("120") comes back through the integer arm
        // with the identical value.
        let digits = raw.replace('_', "");
        if let Ok(v) = digits.parse::<u64>() {
            return Ok(Value::Int(v));
        }
        digits
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Value::Float)
            .ok_or_else(|| format!("cannot parse value `{raw}`"))
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err("expected a quoted string".to_string()),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            _ => Err("expected an integer".to_string()),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        Ok(self.as_u64()? as usize)
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            _ => Err("expected a number".to_string()),
        }
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected `true` or `false`".to_string()),
        }
    }

    fn as_triple(&self) -> Result<(usize, usize, usize), String> {
        match self {
            Value::Array(v) if v.len() == 3 => Ok((v[0] as usize, v[1] as usize, v[2] as usize)),
            _ => Err("expected a 3-element integer array".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_round_trips() {
        let plan = RunPlan::default();
        let text = plan.to_toml();
        let back = RunPlan::from_toml(&text).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn full_plan_round_trips() {
        let plan = RunPlan {
            model: ModelSpec::small(),
            traversal: TraversalKind::Nested,
            algorithm: Algorithm::EventBanking,
            mode: RunMode::Eigenvalue,
            particles: 12_345,
            inactive: 7,
            active: 11,
            seed: Some(0xDEAD_BEEF),
            survival: true,
            entropy_mesh: (4, 5, 6),
            mesh_tally: Some((10, 11, 12)),
            spectrum: true,
            checkpoint_every: Some(3),
            max_chain: 42,
            queueing: QueueingConfig {
                mode: QueueingMode::MaterialEnergy,
                energy_bins: 512,
                fuel_split: true,
            },
            policy: PolicySpec::Distributed { ranks: 4 },
            device: DeviceRef::named("knc-7120a"),
        };
        let back = RunPlan::from_toml(&plan.to_toml()).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn queueing_fields_parse_and_validate() {
        let text = "[plan]\nqueueing = \"off\"\nqueueing_bins = 128\n";
        let plan = RunPlan::from_toml(text).expect("parse");
        assert_eq!(plan.queueing.mode, QueueingMode::Off);
        assert_eq!(plan.queueing.energy_bins, 128);
        assert!(!plan.queueing.fuel_split);
        assert!(RunPlan::from_toml("[plan]\nqueueing = \"bogus\"\n").is_err());
        assert!(RunPlan::from_toml("[plan]\nqueueing_bins = 100\n").is_err());
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let text = "\n# a comment\n[plan]\n  model = \"test\"  # trailing\n\nparticles = 1_000\n[policy]\nkind = \"threaded\"\nthreads = 2\n";
        let plan = RunPlan::from_toml(text).expect("parse");
        assert_eq!(plan.model, ModelSpec::test());
        assert_eq!(plan.particles, 1000);
        assert_eq!(plan.policy, PolicySpec::Threaded { threads: 2 });
    }

    #[test]
    fn model_section_and_traversal_round_trip() {
        let plan = RunPlan {
            model: ModelSpec {
                name: "smr".into(),
                overrides: ModelOverrides {
                    assemblies: Some(21),
                    enrichment: Some(1.12),
                    rods: Some(RodPattern::Checkerboard),
                    half_height: Some(90.5),
                },
            },
            traversal: TraversalKind::Nested,
            ..RunPlan::default()
        };
        let text = plan.to_toml();
        assert!(text.contains("[model]"));
        assert!(text.contains("traversal = \"nested\""));
        // The [model] section must precede [policy] so the serve layer's
        // canonical-text cut keeps it inside the plan hash.
        assert!(text.find("[model]").unwrap() < text.find("[policy]").unwrap());
        let back = RunPlan::from_toml(&text).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn default_knobs_keep_the_historic_toml_shape() {
        // Plans without overrides or a non-default traversal serialize
        // exactly as before this refactor: no [model] section, no
        // traversal key, no device key or section — so historic plan
        // hashes are preserved.
        let text = RunPlan::default().to_toml();
        assert!(!text.contains("[model]"));
        assert!(!text.contains("traversal"));
        assert!(!text.contains("device"));
    }

    #[test]
    fn device_ref_round_trips_sparsely() {
        // Name only.
        let plan = RunPlan {
            device: DeviceRef::named("a100"),
            ..RunPlan::default()
        };
        let text = plan.to_toml();
        assert!(text.contains("device = \"a100\""));
        assert!(!text.contains("[device]"));
        assert_eq!(RunPlan::from_toml(&text).expect("parse"), plan);

        // Name + overrides: the [device] section must precede [policy]
        // so the serve layer's canonical-text cut keeps it in the hash.
        let plan = RunPlan {
            device: DeviceRef {
                name: "mi250x".into(),
                overrides: DeviceOverrides {
                    cores: Some(110),
                    clock_ghz: Some(1.25),
                    dram_gb_s: Some(1600.0),
                    link_gb_s: Some(18.0),
                },
            },
            ..RunPlan::default()
        };
        let text = plan.to_toml();
        assert!(text.find("[device]").unwrap() < text.find("[policy]").unwrap());
        assert_eq!(RunPlan::from_toml(&text).expect("parse"), plan);

        // Overrides on the default device: section without the name key.
        let plan = RunPlan {
            device: DeviceRef {
                name: DEFAULT_DEVICE.into(),
                overrides: DeviceOverrides {
                    clock_ghz: Some(2.9),
                    ..Default::default()
                },
            },
            ..RunPlan::default()
        };
        let text = plan.to_toml();
        assert!(!text.contains("device = "));
        assert!(text.contains("[device]"));
        assert_eq!(RunPlan::from_toml(&text).expect("parse"), plan);
    }

    #[test]
    fn device_spec_string_is_injective_over_overrides() {
        let a = DeviceRef::named("a100");
        let mut b = a.clone();
        b.overrides.clock_ghz = Some(1.5);
        let mut c = a.clone();
        c.overrides.dram_gb_s = Some(1.5);
        let strings = [a.spec_string(), b.spec_string(), c.spec_string()];
        assert_eq!(
            strings
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
        assert!(DeviceRef::default().is_default());
        assert!(!b.is_default());
    }

    #[test]
    fn device_appears_in_describe_only_off_default() {
        assert!(!RunPlan::default().describe().contains("device:"));
        let plan = RunPlan {
            device: DeviceRef::named("knc-7120a"),
            ..RunPlan::default()
        };
        assert!(plan.describe().contains("device:           knc-7120a"));
    }

    #[test]
    fn unknown_model_is_a_typed_error_naming_the_catalog() {
        let err = RunPlan::from_toml("[plan]\nmodel = \"warp-core\"\n").unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownModel {
                name: "warp-core".into()
            }
        );
        let msg = err.to_string();
        for name in crate::catalog::NAMES {
            assert!(msg.contains(name), "error must name {name}: {msg}");
        }
    }

    #[test]
    fn catalog_models_parse() {
        for name in crate::catalog::NAMES {
            let text = format!("[plan]\nmodel = \"{name}\"\n");
            let plan = RunPlan::from_toml(&text).expect(name);
            assert_eq!(plan.model, ModelSpec::named(name));
        }
    }

    #[test]
    fn bad_overrides_fail_at_parse_time() {
        let err = RunPlan::from_toml("[plan]\nmodel = \"test\"\n[model]\nassemblies = 999\n")
            .unwrap_err();
        assert!(err.to_string().contains("exceeds"));
        let err = RunPlan::from_toml("[model]\nrods = \"sideways\"\n").unwrap_err();
        assert!(err.to_string().contains("rod pattern"));
        let err = RunPlan::from_toml("[plan]\ntraversal = \"sideways\"\n").unwrap_err();
        assert!(err.to_string().contains("traversal"));
    }

    #[test]
    fn float_values_parse_and_round_trip() {
        let plan =
            RunPlan::from_toml("[model]\nenrichment = 1.25\nhalf_height = 120\n").expect("parse");
        assert_eq!(plan.model.overrides.enrichment, Some(1.25));
        assert_eq!(plan.model.overrides.half_height, Some(120.0));
        let back = RunPlan::from_toml(&plan.to_toml()).expect("round trip");
        assert_eq!(plan, back);
        assert!(RunPlan::from_toml("[model]\nenrichment = \"hot\"\n").is_err());
        assert!(RunPlan::from_toml("[model]\nenrichment = 1.2.3\n").is_err());
    }

    #[test]
    fn spec_string_is_injective_over_overrides() {
        let a = ModelSpec::named("smr");
        let mut b = a.clone();
        b.overrides.enrichment = Some(1.1);
        let mut c = a.clone();
        c.overrides.half_height = Some(1.1);
        let strings = [a.spec_string(), b.spec_string(), c.spec_string()];
        assert_eq!(
            strings
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
    }

    #[test]
    fn unknown_key_rejected() {
        let text = "[plan]\nmodell = \"test\"\n";
        assert!(RunPlan::from_toml(text).is_err());
    }

    #[test]
    fn unknown_section_rejected() {
        assert!(RunPlan::from_toml("[nope]\n").is_err());
    }

    #[test]
    fn distributed_requires_ranks() {
        let text = "[policy]\nkind = \"distributed\"\n";
        assert!(RunPlan::from_toml(text).is_err());
    }

    #[test]
    fn zero_scale_rejected() {
        assert!(RunPlan::from_toml("[plan]\ninactive = 0\nactive = 0\n").is_err());
        assert!(RunPlan::from_toml("[plan]\nparticles = 0\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        // No current keyword contains '#', but the lexer must not split
        // strings on it.
        assert_eq!(strip_comment("key = \"a#b\" # real"), "key = \"a#b\" ");
    }
}
