//! The execution-policy layer.
//!
//! An [`ExecutionPolicy`] decides *where and how* a batch of particles is
//! transported — serially, on a thread pool, or across simulated MPI
//! ranks — while the engine's batch loop ([`crate::engine::run`]) owns
//! *what* happens between batches (resampling, entropy, tally folds,
//! checkpoints). Every policy must reproduce the canonical CHUNK=256
//! tally-fold bit pattern, so k-eff and the float tallies are bitwise
//! identical across policies.

use mcs_prof::ThreadProfiler;
use mcs_rng::Lcg63;

use crate::engine::plan::{Algorithm, RunPlan};
use crate::event::EventStats;
use crate::fixed_source::{FixedSourceResult, FixedSourceSettings};
use crate::history::TransportOutcome;
use crate::mesh::{MeshSpec, MeshTally};
use crate::particle::SourceSite;
use crate::problem::Problem;
use crate::queueing::QueueingConfig;
use crate::spectrum::SpectrumTally;

/// A policy-level stop request (e.g. every simulated rank has died).
///
/// The engine records the run as incomplete and stops cleanly; the
/// already-completed batches and checkpoints remain valid.
#[derive(Debug, Clone)]
pub struct Halt {
    /// Human-readable reason the run stopped.
    pub reason: String,
}

/// Everything a policy needs to transport one batch.
///
/// Borrowed views into the engine's state: the policy must consume
/// `sources[i]` with `streams[i]` (the engine derives streams from the
/// global particle index, so slicing by offset reproduces any
/// rank/thread decomposition bit-identically).
pub struct BatchContext<'a> {
    /// Global batch index (0-based, inactive batches included).
    pub index: usize,
    /// Transport algorithm for this batch.
    pub algorithm: Algorithm,
    /// Source sites, one per particle.
    pub sources: &'a [SourceSite],
    /// Per-particle RNG streams, parallel to `sources`.
    pub streams: &'a [Lcg63],
    /// Mesh tally to score this batch (engine passes `Some` only on
    /// active batches when the plan requests a mesh).
    pub mesh: Option<MeshSpec>,
    /// Score a flux spectrum this batch (history algorithm only).
    pub spectrum: bool,
    /// External profiler: forces the sequential single-accumulator
    /// history path that fig. 4 measures (history algorithm only).
    pub profiler: Option<&'a ThreadProfiler>,
    /// Stage-2 particle queueing for the event pipeline (ignored by the
    /// history algorithm). Pure lookup-order knob: every setting is
    /// bitwise-equivalent.
    pub queueing: QueueingConfig,
}

/// What a policy returns for one transported batch.
pub struct BatchOutput {
    /// Global tallies + banked fission sites in canonical order.
    pub outcome: TransportOutcome,
    /// Mesh tally, when the context requested one.
    pub mesh: Option<MeshTally>,
    /// Spectrum tally, when the context requested one.
    pub spectrum: Option<SpectrumTally>,
    /// Event-pipeline stage statistics (event algorithm only).
    pub event_stats: Option<EventStats>,
}

/// Where and how batches execute.
///
/// Implementations: [`Serial`], [`Threaded`] (both here), and
/// `DistributedPolicy` in `mcs-cluster`. The determinism contract every
/// implementation must honor: per-particle tallies folded per CHUNK=256
/// in index order, chunks folded in chunk order — the exact summation
/// tree of the serial driver.
pub trait ExecutionPolicy {
    /// Human-readable policy description (for `--dry-run` and reports).
    fn describe(&self) -> String;

    /// Called once before the first batch. `start_batch` is non-zero
    /// when resuming from a statepoint.
    fn begin(&mut self, _plan: &RunPlan, _start_batch: usize) {}

    /// Transport one batch. `Err(Halt)` stops the run cleanly (the
    /// engine marks it incomplete).
    fn transport_batch(
        &mut self,
        problem: &Problem,
        ctx: &BatchContext<'_>,
    ) -> Result<BatchOutput, Halt>;

    /// Run a fixed-source simulation under this policy. Defaults to a
    /// halt: only thread-local policies support chain-following runs.
    fn run_fixed_source(
        &mut self,
        _problem: &Problem,
        _settings: &FixedSourceSettings,
    ) -> Result<FixedSourceResult, Halt> {
        Err(Halt {
            reason: format!("{} does not support fixed-source mode", self.describe()),
        })
    }
}

/// Transport one batch on the current thread pool. This is the single
/// dispatch point from (algorithm, context) to the transport kernels —
/// `Serial`, `Threaded`, and the per-rank slices of the distributed
/// policy all funnel through the same code.
pub(crate) fn transport_on_current_pool(problem: &Problem, ctx: &BatchContext<'_>) -> BatchOutput {
    match ctx.algorithm {
        Algorithm::History => {
            let (outcome, mesh, spectrum) = crate::history::run_history_batch(
                problem,
                ctx.sources,
                ctx.streams,
                ctx.mesh,
                ctx.spectrum,
                ctx.profiler,
            );
            BatchOutput {
                outcome,
                mesh,
                spectrum,
                event_stats: None,
            }
        }
        Algorithm::EventBanking => {
            assert!(
                !ctx.spectrum,
                "the event pipeline does not score spectra; use Algorithm::History"
            );
            assert!(
                ctx.profiler.is_none(),
                "external profiling is a history-path feature (fig. 4); \
                 the event pipeline self-times its stages"
            );
            let (outcome, stats, mesh) = crate::event::event_transport_mesh_impl(
                problem,
                ctx.sources,
                ctx.streams,
                ctx.mesh,
                &ctx.queueing,
            );
            BatchOutput {
                outcome,
                mesh,
                spectrum: None,
                event_stats: Some(stats),
            }
        }
    }
}

/// Execute batches on a rayon thread pool.
///
/// [`Threaded::ambient`] uses whatever pool is already current (the
/// legacy drivers' behavior); [`Threaded::new`] builds a dedicated pool
/// with a fixed worker count. Thread count never changes results: the
/// chunk-fold contract makes every pool size bit-identical.
pub struct Threaded {
    pool: Option<rayon::ThreadPool>,
    threads: Option<usize>,
}

impl Threaded {
    /// Use the ambient (global or installed) rayon pool.
    pub fn ambient() -> Self {
        Threaded {
            pool: None,
            threads: None,
        }
    }

    /// Build a dedicated pool with `threads` workers (0 = ambient).
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            return Self::ambient();
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build engine thread pool");
        Threaded {
            pool: Some(pool),
            threads: Some(threads),
        }
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

impl ExecutionPolicy for Threaded {
    fn describe(&self) -> String {
        match self.threads {
            Some(n) => format!("threaded ({n} threads)"),
            None => "threaded (ambient pool)".to_string(),
        }
    }

    fn transport_batch(
        &mut self,
        problem: &Problem,
        ctx: &BatchContext<'_>,
    ) -> Result<BatchOutput, Halt> {
        Ok(self.install(|| transport_on_current_pool(problem, ctx)))
    }

    fn run_fixed_source(
        &mut self,
        problem: &Problem,
        settings: &FixedSourceSettings,
    ) -> Result<FixedSourceResult, Halt> {
        Ok(self.install(|| crate::fixed_source::run_fixed_source_impl(problem, settings)))
    }
}

/// Execute batches single-threaded (a dedicated 1-worker pool).
pub struct Serial {
    inner: Threaded,
}

impl Serial {
    /// Build the serial policy.
    pub fn new() -> Self {
        Serial {
            inner: Threaded::new(1),
        }
    }
}

impl Default for Serial {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionPolicy for Serial {
    fn describe(&self) -> String {
        "serial (1 thread)".to_string()
    }

    fn transport_batch(
        &mut self,
        problem: &Problem,
        ctx: &BatchContext<'_>,
    ) -> Result<BatchOutput, Halt> {
        self.inner.transport_batch(problem, ctx)
    }

    fn run_fixed_source(
        &mut self,
        problem: &Problem,
        settings: &FixedSourceSettings,
    ) -> Result<FixedSourceResult, Halt> {
        self.inner.run_fixed_source(problem, settings)
    }
}
