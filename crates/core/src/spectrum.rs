//! Energy-spectrum tally: track-length flux binned in lethargy.
//!
//! The classic reactor-physics output: φ(E) per unit lethargy over
//! log-spaced energy bins. For a water-moderated core it must show the
//! canonical two-hump shape — a thermal peak near 0.05 eV, the 1/E
//! slowing-down plateau punched full of resonance dips, and the fission
//! (Watt) fast peak around 1 MeV — which the tests assert.

/// A log-uniform energy-binned track-length tally.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumTally {
    /// Lower edge of the first bin (MeV).
    pub e_min: f64,
    /// Upper edge of the last bin (MeV).
    pub e_max: f64,
    /// Per-bin accumulated weighted track length.
    pub bins: Vec<f64>,
    log_min: f64,
    inv_dlog: f64,
}

impl SpectrumTally {
    /// A spectrum over `[e_min, e_max]` with `n` log-uniform bins.
    pub fn new(e_min: f64, e_max: f64, n: usize) -> Self {
        assert!(e_min > 0.0 && e_max > e_min && n > 0);
        let log_min = e_min.ln();
        let log_max = e_max.ln();
        Self {
            e_min,
            e_max,
            bins: vec![0.0; n],
            log_min,
            inv_dlog: n as f64 / (log_max - log_min),
        }
    }

    /// The standard full-range spectrum (1e-11–20 MeV, 10 bins/decade).
    pub fn standard() -> Self {
        Self::new(1.0e-11, 20.0, 123)
    }

    /// Score a flight segment of weighted length `w·d` at energy `e`.
    #[inline]
    pub fn score(&mut self, e: f64, weighted_track: f64) {
        if e < self.e_min || e >= self.e_max {
            return;
        }
        let b = ((e.ln() - self.log_min) * self.inv_dlog) as usize;
        let b = b.min(self.bins.len() - 1);
        self.bins[b] += weighted_track;
    }

    /// Bin centre energies (geometric), for plotting.
    pub fn bin_centers(&self) -> Vec<f64> {
        let n = self.bins.len();
        (0..n)
            .map(|i| (self.log_min + (i as f64 + 0.5) / self.inv_dlog).exp())
            .collect()
    }

    /// Flux per unit lethargy in each bin (the quantity whose shape is
    /// the two-hump reactor spectrum). Bins are log-uniform, so this is
    /// just the raw score divided by the constant lethargy width.
    pub fn per_lethargy(&self) -> Vec<f64> {
        let du = 1.0 / self.inv_dlog;
        self.bins.iter().map(|&b| b / du).collect()
    }

    /// Sum of all scores.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Fold another spectrum (same binning) into this one.
    pub fn merge(&mut self, o: &SpectrumTally) {
        assert_eq!(self.bins.len(), o.bins.len());
        assert_eq!(self.e_min, o.e_min);
        for (a, b) in self.bins.iter_mut().zip(&o.bins) {
            *a += b;
        }
    }

    /// The per-lethargy flux averaged over an energy window (for shape
    /// assertions).
    pub fn mean_per_lethargy(&self, e_lo: f64, e_hi: f64) -> f64 {
        let pl = self.per_lethargy();
        let centers = self.bin_centers();
        let sel: Vec<f64> = centers
            .iter()
            .zip(&pl)
            .filter(|(&c, _)| c >= e_lo && c < e_hi)
            .map(|(_, &v)| v)
            .collect();
        if sel.is_empty() {
            0.0
        } else {
            sel.iter().sum::<f64>() / sel.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{batch_streams, run_history_batch};
    use crate::problem::Problem;

    #[test]
    fn scores_land_in_the_right_bins() {
        let mut s = SpectrumTally::new(1e-3, 1e3, 6); // one bin per decade
        s.score(5e-3, 1.0); // decade [1e-3,1e-2) → bin 0
        s.score(50.0, 2.0); //  [1e1,1e2) → bin 4
        assert_eq!(s.bins[0], 1.0);
        assert_eq!(s.bins[4], 2.0);
        // Out of range is dropped, not clamped.
        s.score(1e-9, 7.0);
        s.score(1e9, 7.0);
        assert_eq!(s.total(), 3.0);
    }

    #[test]
    fn bin_centers_are_geometric() {
        let s = SpectrumTally::new(1.0, 100.0, 2);
        let c = s.bin_centers();
        assert!((c[0] - 10f64.powf(0.5)).abs() < 1e-9);
        assert!((c[1] - 10f64.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn merge_and_per_lethargy() {
        let mut a = SpectrumTally::new(1.0, 10.0, 1);
        let mut b = SpectrumTally::new(1.0, 10.0, 1);
        a.score(2.0, 1.0);
        b.score(3.0, 2.0);
        a.merge(&b);
        assert_eq!(a.total(), 3.0);
        // One bin spanning ln(10) lethargy.
        assert!((a.per_lethargy()[0] - 3.0 / 10f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn transported_spectrum_has_slowing_down_structure() {
        // The physics payoff test, on the full H.M. Small core. The
        // synthetic ladder starts at ~5 eV, so the spectrum must show:
        // (a) the slowing-down pile-up just below the first resonances,
        // (b) deep dips inside the resonance ladder region,
        // (c) the fast fission range populated, with nothing below the
        //     thermal cutoff where 1/v absorption has eaten everything.
        use crate::problem::{HmModel, ProblemConfig};
        let problem = Problem::hm(HmModel::Small, &ProblemConfig::default());
        let n = 1_200;
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);
        let (out, _, spectrum) = run_history_batch(&problem, &sources, &streams, None, true, None);
        let spectrum = spectrum.expect("spectrum requested");

        // Conservation: the spectrum integrates (within range cut) to the
        // total weighted track length (analog ⇒ weight 1).
        assert!(spectrum.total() <= out.tallies.track_length * (1.0 + 1e-9));
        assert!(spectrum.total() > 0.9 * out.tallies.track_length);

        let pileup = spectrum.mean_per_lethargy(1.0e-6, 4.5e-6); // 1–4.5 eV
        let ladder = spectrum.mean_per_lethargy(1.0e-5, 1.0e-4); // 10–100 eV
        let thermal = spectrum.mean_per_lethargy(1e-8, 2e-7);
        let fast = spectrum.mean_per_lethargy(0.5, 3.0);
        let cold = spectrum.mean_per_lethargy(1e-11, 1e-9);

        assert!(thermal > 0.0 && fast > 0.0);
        assert!(
            pileup > 1.5 * ladder,
            "slowing-down pile-up missing: {pileup:.3e} vs ladder {ladder:.3e}"
        );
        assert!(
            fast > 10.0 * cold.max(1e-300),
            "fast range must dominate the sub-thermal tail"
        );
    }
}
