//! Particle queueing for the event pipeline's XS-lookup stage.
//!
//! The banked lookup stage is memory-bound: each lookup gathers per-nuclide
//! rows addressed by the particle's energy, so the *order* the bank is
//! processed in decides gather locality. Tramm et al. (PAPERS.md) show that
//! on wide-vector hardware sorting/queueing particles by material and
//! energy is the dominant throughput lever, because neighbouring lookups
//! then touch neighbouring grid rows.
//!
//! Per-particle RNG streams and the canonical per-particle float-tally
//! slots make lookup order *physically irrelevant*: queueing permutes only
//! the order stage 2 resolves cross sections in, never a trajectory, an
//! RNG draw, or a tally fold. That is the determinism argument — any
//! partition produced here yields bit-identical transport results, which
//! the equivalence-matrix tests assert.
//!
//! Three modes, ordered by how much structure they impose:
//!
//! * [`QueueingMode::Off`] — live-list order, split only at material
//!   changes (a lookup task needs a single material). The locality
//!   baseline.
//! * [`QueueingMode::Material`] — bucket the bank by material, chunk each
//!   bucket. This is the event engine's historical behaviour.
//! * [`QueueingMode::MaterialEnergy`] — within each material bucket,
//!   stable counting-sort particles by log-energy bin. Consecutive lookups
//!   then carry near-equal energies, which the hash backend's warm-start
//!   driver ([`mcs_xs::XsContext::batch_macro_xs_simd_indexed_binned`])
//!   and the unionized backend's row gathers both convert into
//!   near-contiguous index walks.
//!
//! With `fuel_split`, fissionable materials queue ahead of non-fuel ones
//! (fuel lookups sum hundreds of nuclides, non-fuel a handful; separating
//! the queues keeps task cost uniform within each phase of the sweep).

use mcs_xs::Material;
use mcs_xs::{E_MAX, E_MIN};

/// How stage 2 orders the live bank for banked XS lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueingMode {
    /// Live-list order; tasks split only where the material changes.
    Off,
    /// Bucket by material (the historical event-engine behaviour).
    #[default]
    Material,
    /// Bucket by material, then stable-sort each bucket by log-E bin.
    MaterialEnergy,
}

impl QueueingMode {
    /// All modes, in ablation order.
    pub const ALL: [QueueingMode; 3] = [
        QueueingMode::Off,
        QueueingMode::Material,
        QueueingMode::MaterialEnergy,
    ];

    /// Stable name used in TOML, CLI flags, and result rows.
    pub fn name(&self) -> &'static str {
        match self {
            QueueingMode::Off => "off",
            QueueingMode::Material => "material",
            QueueingMode::MaterialEnergy => "material+energy",
        }
    }

    /// Parse a [`Self::name`] back.
    pub fn from_name(s: &str) -> Option<QueueingMode> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Stage-2 queueing configuration, carried by
/// [`crate::engine::RunPlan`] and threaded through every execution policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingConfig {
    /// Partitioning mode.
    pub mode: QueueingMode,
    /// Log-E bin count for [`QueueingMode::MaterialEnergy`]; must be a
    /// power of two. Finer than the hash backend's grid bins, so
    /// same-queue-bin neighbours usually share a hash bin and the
    /// warm-start scan pays ~0 steps.
    pub energy_bins: usize,
    /// Queue fissionable materials ahead of non-fuel materials.
    pub fuel_split: bool,
}

impl Default for QueueingConfig {
    fn default() -> Self {
        Self {
            mode: QueueingMode::Material,
            energy_bins: 4096,
            fuel_split: false,
        }
    }
}

impl QueueingConfig {
    /// Validate the configuration (the same rules `RunPlan::validate`
    /// applies when the fields arrive via TOML).
    pub fn validate(&self) -> Result<(), String> {
        if !self.energy_bins.is_power_of_two() {
            return Err(format!(
                "queueing_bins must be a power of two, got {}",
                self.energy_bins
            ));
        }
        Ok(())
    }
}

/// Maps energies to log-spaced queue bins over the library's tabulated
/// range. Distinct from [`mcs_xs::HashGrid`]'s bins: queue bins only order
/// particles, so they can be (and default to being) much finer.
#[derive(Debug, Clone, Copy)]
pub struct EnergyBinner {
    n_bins: usize,
    log_e_min: f64,
    inv_bin_width: f64,
}

impl EnergyBinner {
    /// A binner with `n_bins` log-spaced bins across `[E_MIN, E_MAX]`.
    pub fn new(n_bins: usize) -> Self {
        let log_e_min = E_MIN.ln();
        Self {
            n_bins,
            log_e_min,
            inv_bin_width: n_bins as f64 / (E_MAX.ln() - log_e_min),
        }
    }

    /// Bin of `e`, clamped to `[0, n_bins)`; NaN (from `e <= 0`) clamps
    /// to 0 like the hash grid's hash does.
    #[inline]
    pub fn bin_of(&self, e: f64) -> usize {
        let t = (e.ln() - self.log_e_min) * self.inv_bin_width;
        (t as isize).clamp(0, self.n_bins as isize - 1) as usize
    }

    /// Number of bins.
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }
}

/// One stage-2 lookup task: particles `queued[start..end]` share material
/// `mat`. `binned` marks energy-ordered tasks, which the driver routes to
/// the warm-start banked kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueTask {
    /// Material id shared by the task's particles.
    pub mat: u32,
    /// Start offset into [`QueueBuffers::queued`].
    pub start: u32,
    /// End offset (exclusive).
    pub end: u32,
    /// True when the task's particles are energy-ordered.
    pub binned: bool,
}

/// Reused scratch for [`build_queues`]: the per-material buckets, the
/// flattened queue, and the task list. Allocation-stable across event
/// generations.
#[derive(Debug, Default)]
pub struct QueueBuffers {
    buckets: Vec<Vec<u32>>,
    counts: Vec<u32>,
    scratch: Vec<u32>,
    /// The queued live list: a permutation of the `alive` slice handed to
    /// [`build_queues`], grouped per the queueing mode.
    pub queued: Vec<u32>,
    /// Lookup tasks over `queued`, each at most `chunk` long.
    pub tasks: Vec<QueueTask>,
}

impl QueueBuffers {
    /// Buffers for a problem with `n_materials` materials.
    pub fn new(n_materials: usize) -> Self {
        Self {
            buckets: vec![Vec::new(); n_materials],
            ..Self::default()
        }
    }
}

/// The order materials drain in: identity, or fissionable-first (stable)
/// when `fuel_split` is set.
pub fn material_order(materials: &[Material], fuel_split: bool) -> Vec<u32> {
    let mut order: Vec<u32> = (0..materials.len() as u32).collect();
    if fuel_split {
        order.sort_by_key(|&m| !materials[m as usize].is_fissionable());
    }
    order
}

/// Partition the live list into lookup tasks per `cfg`.
///
/// `alive` is the live particle list, `material`/`energy` the bank's SoA
/// columns indexed by particle id, `chunk` the task-size cap, `mat_order`
/// from [`material_order`]. On return `bufs.queued` is a permutation of
/// `alive` and `bufs.tasks` tiles it exactly; the partition depends only
/// on (`cfg`, `mat_order`, `alive` order) — never on thread count — so
/// instrumentation counters stay deterministic.
pub fn build_queues(
    cfg: &QueueingConfig,
    mat_order: &[u32],
    alive: &[u32],
    material: &[u32],
    energy: &[f64],
    chunk: usize,
    bufs: &mut QueueBuffers,
) {
    bufs.queued.clear();
    bufs.tasks.clear();
    if alive.is_empty() {
        return;
    }

    if cfg.mode == QueueingMode::Off {
        // Live-list order: emit a task at every material change or chunk
        // boundary. No reordering at all.
        bufs.queued.extend_from_slice(alive);
        let mut run_start = 0usize;
        let mut run_mat = material[alive[0] as usize];
        for (k, &iu) in alive.iter().enumerate().skip(1) {
            let m = material[iu as usize];
            if m != run_mat || k - run_start >= chunk {
                bufs.tasks.push(QueueTask {
                    mat: run_mat,
                    start: run_start as u32,
                    end: k as u32,
                    binned: false,
                });
                run_start = k;
                run_mat = m;
            }
        }
        bufs.tasks.push(QueueTask {
            mat: run_mat,
            start: run_start as u32,
            end: alive.len() as u32,
            binned: false,
        });
        return;
    }

    // Material and MaterialEnergy both start from per-material buckets,
    // built in one stable pass over the live list.
    for b in &mut bufs.buckets {
        b.clear();
    }
    for &iu in alive {
        bufs.buckets[material[iu as usize] as usize].push(iu);
    }

    let energy_sort = cfg.mode == QueueingMode::MaterialEnergy;
    let binner = EnergyBinner::new(cfg.energy_bins);
    for &m in mat_order {
        let bucket = &mut bufs.buckets[m as usize];
        if bucket.is_empty() {
            continue;
        }
        if energy_sort && bucket.len() > 1 {
            // Stable counting sort by queue bin: O(bucket + bins), and
            // stability keeps equal-bin particles in live-list order so
            // the permutation is deterministic.
            bufs.counts.clear();
            bufs.counts.resize(cfg.energy_bins + 1, 0);
            for &iu in bucket.iter() {
                bufs.counts[binner.bin_of(energy[iu as usize]) + 1] += 1;
            }
            for b in 1..bufs.counts.len() {
                bufs.counts[b] += bufs.counts[b - 1];
            }
            bufs.scratch.clear();
            bufs.scratch.resize(bucket.len(), 0);
            for &iu in bucket.iter() {
                let b = binner.bin_of(energy[iu as usize]);
                bufs.scratch[bufs.counts[b] as usize] = iu;
                bufs.counts[b] += 1;
            }
            bucket.copy_from_slice(&bufs.scratch);
        }
        let base = bufs.queued.len();
        bufs.queued.extend_from_slice(bucket);
        let mut start = base;
        while start < bufs.queued.len() {
            let end = (start + chunk).min(bufs.queued.len());
            bufs.tasks.push(QueueTask {
                mat: m,
                start: start as u32,
                end: end as u32,
                binned: energy_sort,
            });
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_xs::{LibrarySpec, NuclideLibrary};

    fn fake_bank(n: usize) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        let alive: Vec<u32> = (0..n as u32).collect();
        let material: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % 3) as u32).collect();
        let energy: Vec<f64> = (0..n)
            .map(|i| 1.5e-11 * 1.27f64.powi(((i * 13 + 5) % 80) as i32))
            .collect();
        (alive, material, energy)
    }

    fn check_partition(alive: &[u32], bufs: &QueueBuffers, material: &[u32]) {
        // queued is a permutation of alive…
        let mut a = alive.to_vec();
        let mut q = bufs.queued.clone();
        a.sort_unstable();
        q.sort_unstable();
        assert_eq!(a, q);
        // …and the tasks tile it exactly, each single-material.
        let mut cursor = 0u32;
        for t in &bufs.tasks {
            assert_eq!(t.start, cursor);
            assert!(t.end > t.start);
            cursor = t.end;
            for &iu in &bufs.queued[t.start as usize..t.end as usize] {
                assert_eq!(material[iu as usize], t.mat);
            }
        }
        assert_eq!(cursor as usize, bufs.queued.len());
    }

    #[test]
    fn every_mode_partitions_the_live_list() {
        let (alive, material, energy) = fake_bank(700);
        let order = [0u32, 1, 2];
        for mode in QueueingMode::ALL {
            let cfg = QueueingConfig {
                mode,
                ..QueueingConfig::default()
            };
            let mut bufs = QueueBuffers::new(3);
            build_queues(&cfg, &order, &alive, &material, &energy, 256, &mut bufs);
            check_partition(&alive, &bufs, &material);
        }
    }

    #[test]
    fn material_mode_matches_historical_bucketing() {
        let (alive, material, energy) = fake_bank(300);
        let cfg = QueueingConfig::default();
        let mut bufs = QueueBuffers::new(3);
        build_queues(&cfg, &[0, 1, 2], &alive, &material, &energy, 256, &mut bufs);
        // Bucketed concatenation in material order, stable within bucket.
        let mut expect = Vec::new();
        for m in 0..3u32 {
            expect.extend(alive.iter().copied().filter(|&i| material[i as usize] == m));
        }
        assert_eq!(bufs.queued, expect);
        assert!(bufs.tasks.iter().all(|t| !t.binned));
    }

    #[test]
    fn energy_mode_orders_bins_within_buckets() {
        let (alive, material, energy) = fake_bank(512);
        let cfg = QueueingConfig {
            mode: QueueingMode::MaterialEnergy,
            ..QueueingConfig::default()
        };
        let binner = EnergyBinner::new(cfg.energy_bins);
        let mut bufs = QueueBuffers::new(3);
        build_queues(&cfg, &[0, 1, 2], &alive, &material, &energy, 256, &mut bufs);
        check_partition(&alive, &bufs, &material);
        // Within each material, bins must be non-decreasing; equal bins
        // must preserve live-list order (stability).
        for m in 0..3u32 {
            let per: Vec<u32> = bufs
                .queued
                .iter()
                .copied()
                .filter(|&i| material[i as usize] == m)
                .collect();
            for w in per.windows(2) {
                let (b0, b1) = (
                    binner.bin_of(energy[w[0] as usize]),
                    binner.bin_of(energy[w[1] as usize]),
                );
                assert!(b0 <= b1);
                if b0 == b1 {
                    assert!(w[0] < w[1], "stability violated");
                }
            }
        }
        assert!(bufs.tasks.iter().all(|t| t.binned));
    }

    #[test]
    fn off_mode_preserves_live_order_and_splits_on_material_change() {
        let alive: Vec<u32> = (0..10).collect();
        let material = vec![0, 0, 1, 1, 1, 0, 2, 2, 2, 2];
        let energy = vec![1.0e-6; 10];
        let cfg = QueueingConfig {
            mode: QueueingMode::Off,
            ..QueueingConfig::default()
        };
        let mut bufs = QueueBuffers::new(3);
        build_queues(&cfg, &[0, 1, 2], &alive, &material, &energy, 256, &mut bufs);
        assert_eq!(bufs.queued, alive);
        let mats: Vec<u32> = bufs.tasks.iter().map(|t| t.mat).collect();
        assert_eq!(mats, vec![0, 1, 0, 2]);
    }

    #[test]
    fn tasks_respect_the_chunk_cap() {
        let (alive, material, energy) = fake_bank(2000);
        for mode in QueueingMode::ALL {
            let cfg = QueueingConfig {
                mode,
                ..QueueingConfig::default()
            };
            let mut bufs = QueueBuffers::new(3);
            build_queues(&cfg, &[0, 1, 2], &alive, &material, &energy, 128, &mut bufs);
            assert!(bufs.tasks.iter().all(|t| (t.end - t.start) as usize <= 128));
        }
    }

    #[test]
    fn fuel_split_orders_fissionable_first() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let mats = vec![
            Material::hm_water(&lib),
            Material::hm_fuel(&lib),
            Material::hm_clad(&lib),
        ];
        assert_eq!(material_order(&mats, false), vec![0, 1, 2]);
        // Fissionable (index 1) first, others in stable original order.
        assert_eq!(material_order(&mats, true), vec![1, 0, 2]);
    }

    #[test]
    fn binner_clamps_and_covers_the_range() {
        let b = EnergyBinner::new(4096);
        assert_eq!(b.bin_of(E_MIN / 10.0), 0);
        assert_eq!(b.bin_of(-1.0), 0);
        assert_eq!(b.bin_of(E_MAX * 10.0), 4095);
        let lo = b.bin_of(1.0e-9);
        let hi = b.bin_of(1.0);
        assert!(lo < hi);
    }

    #[test]
    fn config_validation_rejects_non_power_of_two() {
        let mut cfg = QueueingConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.energy_bins = 1000;
        assert!(cfg.validate().is_err());
        cfg.energy_bins = 1;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn mode_names_round_trip() {
        for m in QueueingMode::ALL {
            assert_eq!(QueueingMode::from_name(m.name()), Some(m));
        }
        assert_eq!(QueueingMode::from_name("bogus"), None);
    }

    #[test]
    fn empty_live_list_is_a_noop() {
        let cfg = QueueingConfig::default();
        let mut bufs = QueueBuffers::new(3);
        build_queues(&cfg, &[0, 1, 2], &[], &[], &[], 256, &mut bufs);
        assert!(bufs.queued.is_empty());
        assert!(bufs.tasks.is_empty());
    }
}
