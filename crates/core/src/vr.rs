//! Importance-based geometry splitting and roulette — the classic
//! variance-reduction technique for deep-penetration (shielding)
//! problems.
//!
//! An [`ImportanceMap`] assigns every mesh cell an importance `I`. When a
//! particle's flight carries it into a region whose importance differs
//! from where it was, the population is adjusted to keep the *weighted*
//! population constant:
//!
//! * `r = I_new/I_old > 1` — split into `⌈r⌉`-ish copies of weight `w/r`
//!   (the fractional part handled stochastically), pushing the extra
//!   copies onto a secondary stack;
//! * `r < 1` — Russian roulette: survive with probability `r` at weight
//!   `w/r`.
//!
//! Every adjustment preserves expected weight exactly, so all tallies
//! stay unbiased — verified by the tests against analog runs.

use mcs_geom::{Vec3, BOUNDARY_EPS};
use mcs_rng::Lcg63;

use crate::mesh::MeshSpec;
use crate::particle::{Particle, Site};
use crate::physics::{collide, CollisionOutcome};
use crate::problem::Problem;
use crate::spectrum::SpectrumTally;
use crate::tally::Tallies;
use crate::E_FLOOR;

/// A cell-wise importance map on a regular mesh.
#[derive(Debug, Clone)]
pub struct ImportanceMap {
    /// The mesh.
    pub spec: MeshSpec,
    /// Per-cell importances (must be > 0); outside the mesh the
    /// importance is taken as 1.
    pub importance: Vec<f64>,
}

impl ImportanceMap {
    /// Uniform (importance-1 everywhere: no splitting).
    pub fn uniform(spec: MeshSpec) -> Self {
        Self {
            importance: vec![1.0; spec.n_cells()],
            spec,
        }
    }

    /// Exponential ramp along +x: importance doubles every `e_fold`
    /// cells — the standard hand-crafted map for slab penetration.
    pub fn x_ramp(spec: MeshSpec, factor_per_cell: f64) -> Self {
        let mut importance = vec![1.0; spec.n_cells()];
        for k in 0..spec.nz {
            for j in 0..spec.ny {
                for i in 0..spec.nx {
                    importance[(k * spec.ny + j) * spec.nx + i] = factor_per_cell.powi(i as i32);
                }
            }
        }
        Self { spec, importance }
    }

    /// Importance at a point (1 outside the mesh).
    pub fn at(&self, p: Vec3) -> f64 {
        let s = &self.spec;
        let fx = (p.x - s.lo.x) / (s.hi.x - s.lo.x);
        let fy = (p.y - s.lo.y) / (s.hi.y - s.lo.y);
        let fz = (p.z - s.lo.z) / (s.hi.z - s.lo.z);
        if !(0.0..1.0).contains(&fx) || !(0.0..1.0).contains(&fy) || !(0.0..1.0).contains(&fz) {
            return 1.0;
        }
        let i = ((fx * s.nx as f64) as usize).min(s.nx - 1);
        let j = ((fy * s.ny as f64) as usize).min(s.ny - 1);
        let k = ((fz * s.nz as f64) as usize).min(s.nz - 1);
        self.importance[(k * s.ny + j) * s.nx + i]
    }
}

/// Outcome of transporting one source particle with splitting.
#[derive(Debug, Clone, Default)]
pub struct VrOutcome {
    /// Weighted tallies.
    pub tallies: Tallies,
    /// Weighted leakage (Σ of leaked weights).
    pub leaked_weight: f64,
    /// Splits performed.
    pub splits: u64,
    /// Roulette kills.
    pub roulette_kills: u64,
    /// Peak secondary-stack depth.
    pub peak_stack: usize,
}

/// Transport one source particle (and every split copy) to completion
/// under an importance map, scoring weighted tallies and the weighted
/// leak spectrum.
#[allow(clippy::too_many_arguments)]
pub fn transport_with_splitting(
    problem: &Problem,
    start: Particle,
    map: &ImportanceMap,
    out: &mut VrOutcome,
    leak_spectrum: Option<&mut SpectrumTally>,
    sites: &mut Vec<Site>,
) {
    let mut leak_spectrum = leak_spectrum;
    let mut stack: Vec<Particle> = vec![start];
    let mut clones: u32 = 0;
    while let Some(mut p) = stack.pop() {
        out.peak_stack = out.peak_stack.max(stack.len() + 1);
        out.tallies.n_particles += 1;
        let mut importance_here = map.at(p.pos);
        let mut seq = p.sites_banked;
        'flight: loop {
            let Some(cell) = problem.find(p.pos) else {
                out.tallies.leaks += 1;
                out.leaked_weight += p.weight;
                if let Some(ls) = leak_spectrum.as_deref_mut() {
                    ls.score(p.energy, p.weight);
                }
                break 'flight;
            };

            // Importance adjustment on entering a new-importance region.
            let imp = map.at(p.pos);
            if imp != importance_here {
                let r = imp / importance_here;
                importance_here = imp;
                if r > 1.0 {
                    // Split: n copies expected, each w/r.
                    let n_f = r;
                    let n = n_f.floor() as u32
                        + if p.rng.next_uniform() < n_f.fract() {
                            1
                        } else {
                            0
                        };
                    if n == 0 {
                        break 'flight; // stochastically rounded to nothing
                    }
                    p.weight /= n_f;
                    for c in 1..n {
                        let mut copy = p.clone();
                        // Daughters branch onto disjoint substreams.
                        clones += 1;
                        copy.rng = p.rng.skipped(7_919 * (clones as u64 + c as u64));
                        stack.push(copy);
                        out.splits += 1;
                    }
                } else {
                    // Roulette with survival probability r.
                    if p.rng.next_uniform() < r {
                        p.weight /= r;
                    } else {
                        out.roulette_kills += 1;
                        break 'flight;
                    }
                }
            }

            let xs = problem.macro_xs(cell.material, p.energy, &mut p.rng);
            let d_coll = -p.rng.next_uniform().ln() / xs.total;
            let d_bound = problem.distance_to_boundary(p.pos, p.dir);
            if d_bound <= d_coll {
                out.tallies.track_length += d_bound;
                out.tallies.k_track += p.weight * d_bound * xs.nu_fission;
                p.pos += p.dir * (d_bound + BOUNDARY_EPS);
                continue 'flight;
            }
            out.tallies.track_length += d_coll;
            out.tallies.k_track += p.weight * d_coll * xs.nu_fission;
            p.pos += p.dir * d_coll;
            out.tallies.record_collision(cell.material);
            out.tallies.k_collision += p.weight * xs.nu_fission / xs.total;

            let outcome = collide(
                &problem.xs,
                &problem.materials[cell.material as usize],
                &problem.physics,
                &problem.slots[cell.material as usize],
                p.pos,
                &mut p.dir,
                &mut p.energy,
                &mut p.weight,
                problem.treatment,
                &xs,
                &mut p.rng,
                p.index,
                &mut seq,
                sites,
            );
            match outcome {
                CollisionOutcome::Absorbed { fission } => {
                    out.tallies.record_absorption(cell.material, fission);
                    break 'flight;
                }
                CollisionOutcome::Scattered => {
                    if p.energy < E_FLOOR {
                        out.tallies.record_absorption(cell.material, false);
                        break 'flight;
                    }
                }
            }
        }
    }
}

/// Run `n` source particles through importance-mapped transport.
pub fn run_with_splitting(
    problem: &Problem,
    sources: &[crate::particle::SourceSite],
    map: &ImportanceMap,
    seed_salt: u64,
) -> VrOutcome {
    let mut out = VrOutcome::default();
    let mut sites = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let rng = Lcg63::for_history(problem.seed ^ seed_salt, i as u64, mcs_rng::STREAM_STRIDE);
        let p = Particle::born(s, i as u32, rng);
        transport_with_splitting(problem, p, map, &mut out, None, &mut sites);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn slab_map(problem: &Problem, factor: f64) -> ImportanceMap {
        ImportanceMap::x_ramp(MeshSpec::covering(problem.geometry.bounds, 8, 1, 1), factor)
    }

    #[test]
    fn uniform_importance_matches_analog_exactly() {
        // An importance-1 map must reproduce the plain history loop
        // draw-for-draw (no adjustment draws are taken).
        let problem = Problem::test_small();
        let sources = problem.sample_initial_source(200, 0);
        let map = ImportanceMap::uniform(MeshSpec::covering(problem.geometry.bounds, 4, 4, 2));
        let vr = run_with_splitting(&problem, &sources, &map, 0x77);

        let streams: Vec<_> = (0..200)
            .map(|i| {
                mcs_rng::Lcg63::for_history(problem.seed ^ 0x77, i as u64, mcs_rng::STREAM_STRIDE)
            })
            .collect();
        let (analog, _, _) =
            crate::history::run_history_batch(&problem, &sources, &streams, None, false, None);
        assert_eq!(vr.tallies.collisions, analog.tallies.collisions);
        assert_eq!(vr.tallies.leaks, analog.tallies.leaks);
        assert_eq!(vr.splits, 0);
        assert_eq!(vr.roulette_kills, 0);
    }

    #[test]
    fn splitting_is_unbiased_for_leakage() {
        // The ramped map splits aggressively toward +x; the *weighted*
        // leakage must agree with the analog leak count within MC noise.
        let problem = Problem::test_small();
        let n = 1_500;
        let sources = problem.sample_initial_source(n, 3);
        let analog = run_with_splitting(
            &problem,
            &sources,
            &ImportanceMap::uniform(MeshSpec::covering(problem.geometry.bounds, 8, 1, 1)),
            0x99,
        );
        let split = run_with_splitting(&problem, &sources, &slab_map(&problem, 1.8), 0x99);
        assert!(
            split.splits > 100,
            "map should actually split ({})",
            split.splits
        );
        assert!(split.roulette_kills > 0, "and roulette on the way back");

        let analog_leak = analog.tallies.leaks as f64 / n as f64;
        let vr_leak = split.leaked_weight / n as f64;
        let rel = (vr_leak - analog_leak).abs() / analog_leak;
        assert!(
            rel < 0.15,
            "weighted leakage biased: analog {analog_leak:.4} vs split {vr_leak:.4}"
        );
    }

    #[test]
    fn split_population_grows_toward_high_importance() {
        let problem = Problem::test_small();
        let sources = problem.sample_initial_source(400, 5);
        let split = run_with_splitting(&problem, &sources, &slab_map(&problem, 2.0), 0xAB);
        // More histories processed than sources (the split copies).
        assert!(split.tallies.n_particles > 400);
        assert!(split.peak_stack > 1);
    }

    #[test]
    fn importance_lookup_defaults_to_one_outside() {
        let problem = Problem::test_small();
        let map = slab_map(&problem, 2.0);
        assert_eq!(map.at(mcs_geom::Vec3::new(1e6, 0.0, 0.0)), 1.0);
        // Ramp increases along +x inside.
        let (lo, hi) = problem.geometry.bounds;
        let left = map.at(mcs_geom::Vec3::new(lo.x + 0.1, 0.0, 0.0));
        let right = map.at(mcs_geom::Vec3::new(hi.x - 0.1, 0.0, 0.0));
        assert!(right > left);
    }
}
