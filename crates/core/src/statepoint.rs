//! Statepoint checkpoint/restart for eigenvalue runs.
//!
//! OpenMC writes *statepoints* — the fission source bank plus accumulated
//! results — so a long power iteration can stop and resume bit-exactly.
//! Because this engine derives every stream from `(seed, batch, global
//! particle index)`, resuming from a statepoint reproduces the
//! uninterrupted run *exactly* (asserted by tests).
//!
//! The format is a small self-describing little-endian binary layout
//! (magic + version + counted sections) with an end-to-end checksum; no
//! external serialization dependency.

use std::io::{self, Read, Write};
use std::path::Path;

use mcs_geom::Vec3;

use crate::particle::SourceSite;
use crate::tally::Tallies;

const MAGIC: &[u8; 8] = b"MCSSTPT\x01";

/// A resumable snapshot of an eigenvalue run.
#[derive(Debug, Clone, PartialEq)]
pub struct Statepoint {
    /// Problem master seed (sanity-checked on resume).
    pub seed: u64,
    /// Batches already completed.
    pub completed_batches: usize,
    /// The source bank feeding the next batch.
    pub source: Vec<SourceSite>,
    /// Track-length k of every completed batch, in order.
    pub k_history: Vec<f64>,
    /// Accumulated tallies over completed *active* batches.
    pub tallies: Tallies,
}

fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

impl Statepoint {
    /// Serialize to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w_u64(w, self.seed)?;
        w_u64(w, self.completed_batches as u64)?;

        w_u64(w, self.source.len() as u64)?;
        let mut checksum = 0u64;
        let mut put = |w: &mut dyn Write, v: f64| -> io::Result<()> {
            checksum ^= v.to_bits().rotate_left((checksum % 63) as u32);
            w.write_all(&v.to_le_bytes())
        };
        for s in &self.source {
            put(w, s.pos.x)?;
            put(w, s.pos.y)?;
            put(w, s.pos.z)?;
            put(w, s.energy)?;
        }
        w_u64(w, self.k_history.len() as u64)?;
        for &k in &self.k_history {
            put(w, k)?;
        }
        // Tallies block.
        let t = &self.tallies;
        w_u64(w, t.n_particles)?;
        w_u64(w, t.segments)?;
        for i in 0..8 {
            w_u64(w, t.segments_by_material[i])?;
            w_u64(w, t.collisions_by_material[i])?;
            w_u64(w, t.absorptions_by_material[i])?;
            w_u64(w, t.fissions_by_material[i])?;
        }
        w_u64(w, t.collisions)?;
        w_u64(w, t.absorptions)?;
        w_u64(w, t.fissions)?;
        w_u64(w, t.leaks)?;
        for v in [t.track_length, t.k_track, t.k_collision, t.k_absorption] {
            w_f64(w, v)?;
        }
        w_u64(w, checksum)?;
        Ok(())
    }

    /// Deserialize from a reader.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an mcs statepoint (bad magic)",
            ));
        }
        let seed = r_u64(r)?;
        let completed_batches = r_u64(r)? as usize;

        let n_src = r_u64(r)? as usize;
        let mut checksum = 0u64;
        let mut get = |r: &mut dyn Read| -> io::Result<f64> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            let v = f64::from_le_bytes(b);
            checksum ^= v.to_bits().rotate_left((checksum % 63) as u32);
            Ok(v)
        };
        let mut source = Vec::with_capacity(n_src.min(1 << 24));
        for _ in 0..n_src {
            let (x, y, z, e) = (get(r)?, get(r)?, get(r)?, get(r)?);
            source.push(SourceSite {
                pos: Vec3::new(x, y, z),
                energy: e,
            });
        }
        let n_k = r_u64(r)? as usize;
        let mut k_history = Vec::with_capacity(n_k.min(1 << 20));
        for _ in 0..n_k {
            k_history.push(get(r)?);
        }
        let mut tallies = Tallies {
            n_particles: r_u64(r)?,
            segments: r_u64(r)?,
            ..Default::default()
        };
        for i in 0..8 {
            tallies.segments_by_material[i] = r_u64(r)?;
            tallies.collisions_by_material[i] = r_u64(r)?;
            tallies.absorptions_by_material[i] = r_u64(r)?;
            tallies.fissions_by_material[i] = r_u64(r)?;
        }
        tallies.collisions = r_u64(r)?;
        tallies.absorptions = r_u64(r)?;
        tallies.fissions = r_u64(r)?;
        tallies.leaks = r_u64(r)?;
        tallies.track_length = r_f64(r)?;
        tallies.k_track = r_f64(r)?;
        tallies.k_collision = r_f64(r)?;
        tallies.k_absorption = r_f64(r)?;

        let want = r_u64(r)?;
        if want != checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "statepoint checksum mismatch (corrupt file)",
            ));
        }
        Ok(Self {
            seed,
            completed_batches,
            source,
            k_history,
            tallies,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, RunPlan, Threaded};
    use crate::problem::Problem;

    fn plan() -> RunPlan {
        RunPlan {
            particles: 400,
            inactive: 2,
            active: 4,
            entropy_mesh: (4, 4, 4),
            ..RunPlan::default()
        }
    }

    fn checkpoint_at(problem: &Problem, plan: &RunPlan, stop: usize) -> Statepoint {
        engine::run_batches(problem, plan, &mut Threaded::ambient(), 0, stop, None).statepoint
    }

    #[test]
    fn roundtrip_through_bytes() {
        let problem = Problem::test_small();
        let sp = checkpoint_at(&problem, &plan(), 3);
        let mut buf = Vec::new();
        sp.write_to(&mut buf).unwrap();
        let back = Statepoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(sp, back);
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let problem = Problem::test_small();
        let sp = checkpoint_at(&problem, &plan(), 2);
        let mut buf = Vec::new();
        sp.write_to(&mut buf).unwrap();
        // Flip a byte in the middle of the source bank.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = Statepoint::read_from(&mut buf.as_slice());
        assert!(err.is_err(), "corruption must not pass the checksum");
        // And a bad magic is rejected immediately.
        let err2 = Statepoint::read_from(&mut b"NOTASTPT".as_slice());
        assert!(err2.is_err());
    }

    #[test]
    fn resume_is_bit_exact() {
        let problem = Problem::test_small();
        let p = plan();
        let full = engine::run_with_problem(&problem, &p, &mut Threaded::ambient())
            .into_eigenvalue()
            .result;

        let sp = checkpoint_at(&problem, &p, 3);
        // Round-trip the checkpoint through its file format.
        let mut buf = Vec::new();
        sp.write_to(&mut buf).unwrap();
        let sp = Statepoint::read_from(&mut buf.as_slice()).unwrap();

        let resumed =
            engine::resume_with_problem(&problem, &p, &mut Threaded::ambient(), &sp).result;
        assert_eq!(full.k_mean, resumed.k_mean, "resume must be bit-exact");
        assert_eq!(full.tallies, resumed.tallies);
        // Per-batch k's of the resumed tail match the full run's tail.
        for b in &resumed.batches {
            let same = full.batches.iter().find(|x| x.index == b.index).unwrap();
            assert_eq!(same.k_track, b.k_track, "batch {}", b.index);
        }
    }

    #[test]
    fn resume_rejects_foreign_problem() {
        let problem = Problem::test_small();
        let mut sp = checkpoint_at(&problem, &plan(), 2);
        sp.seed ^= 1;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine::resume_with_problem(&problem, &plan(), &mut Threaded::ambient(), &sp)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn save_and_load_files() {
        let problem = Problem::test_small();
        let sp = checkpoint_at(&problem, &plan(), 2);
        let path = std::env::temp_dir().join("mcs_statepoint_test.bin");
        sp.save(&path).unwrap();
        let back = Statepoint::load(&path).unwrap();
        assert_eq!(sp, back);
        let _ = std::fs::remove_file(path);
    }
}
