//! Monte Carlo neutron transport engine: history-based and event-based
//! (banking) algorithms over the same physics.
//!
//! This is the OpenMC-equivalent at the heart of the reproduction. The two
//! transport algorithms the paper contrasts are implemented over *shared*
//! physics routines and *per-particle* RNG streams, so they produce
//! identical particle trajectories (verified by tests) while exercising
//! completely different control flow and memory-access structure:
//!
//! * [`history`] — MIMD-style: each particle is tracked birth→death by one
//!   task; parallelism across particles ([`rayon`] stands in for OpenMP).
//! * [`event`] — SIMD-style: all live particles advance together through
//!   staged kernels (XS lookup over the bank, distance sampling over the
//!   bank, movement, collisions), with bank compaction between
//!   generations of events. This is the *full* banking implementation the
//!   paper lists as future work; its XS stage is the vectorized kernel
//!   measured in Fig. 2.
//!
//! Shared infrastructure: [`problem`] assembles cross sections, geometry,
//! materials and optional S(α,β)/URR physics into a [`problem::Problem`];
//! [`eigenvalue`] drives k-effective batch iterations (inactive + active,
//! fission-bank resampling, Shannon entropy); [`tally`] holds the default
//! global tallies (collision, absorption, track-length — the same set the
//! paper tallies); [`balance`] implements the α load-balancing formulas
//! (Eq. 2–3); [`distance`] contains the three Table-I distance-sampling
//! micro-kernels (naive, batch-RNG, batch-RNG + SIMD intrinsics).

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod balance;
pub mod catalog;
pub mod distance;
pub mod eigenvalue;
pub mod engine;
pub mod event;
pub mod fixed_source;
pub mod history;
pub mod mesh;
pub mod particle;
pub mod physics;
pub mod problem;
pub mod queueing;
pub mod spectrum;
pub mod statepoint;
pub mod tally;
pub mod vr;

pub use eigenvalue::{EigenvalueResult, EigenvalueSettings, TransportMode};
pub use engine::{
    Algorithm, BatchObserver, BatchProgress, ExecutionPolicy, ModelOverrides, ModelSpec,
    NoProgress, PlanError, PolicySpec, RunMode, RunOutput, RunPlan, RunReport, Serial, Threaded,
};
pub use fixed_source::{FixedSourceResult, FixedSourceSettings, SourceDef};
pub use mcs_geom::{CoreSpec, MaterialRole, RodPattern, TraversalKind};
pub use mesh::{MeshSpec, MeshTally};
pub use particle::{Particle, ParticleBank, Site, SourceSite};
pub use problem::{HmModel, Problem};
pub use queueing::{QueueingConfig, QueueingMode};
pub use spectrum::SpectrumTally;
pub use statepoint::Statepoint;
pub use tally::Tallies;
pub use vr::{run_with_splitting, ImportanceMap};

/// Energy floor (MeV): particles thermalizing below this are terminated
/// (counted as captures).
pub const E_FLOOR: f64 = 1.0e-11;
