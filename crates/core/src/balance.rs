//! Static load balancing between heterogeneous ranks (the paper's §III-B3).
//!
//! OpenMC splits particles evenly over MPI ranks; with CPUs and MICs in
//! the same job their calculation rates differ by the factor
//! `α = rate_cpu / rate_mic` (Eq. 2), so the even split leaves the fast
//! ranks idle. Eq. 3 assigns
//!
//! ```text
//! n_mic = n_total / (p_mic + p_cpu·α),    n_cpu = α · n_mic
//! ```
//!
//! [`proportional_split`] generalizes this to any rate vector with
//! largest-remainder rounding so assignments are integral and sum exactly
//! to `n_total`.

/// The calculation-rate ratio α (Eq. 2).
#[inline]
pub fn alpha(cpu_rate: f64, mic_rate: f64) -> f64 {
    cpu_rate / mic_rate
}

/// Eq. 3: particles per MIC rank and per CPU rank.
///
/// Returns `(n_mic, n_cpu)` as reals; use [`proportional_split`] when you
/// need an exact integral assignment.
pub fn partition_alpha(n_total: u64, p_mic: u64, p_cpu: u64, alpha: f64) -> (f64, f64) {
    assert!(p_mic + p_cpu > 0);
    let denom = p_mic as f64 + p_cpu as f64 * alpha;
    let n_mic = n_total as f64 / denom;
    (n_mic, alpha * n_mic)
}

/// Split `n_total` particles across ranks proportionally to their
/// `rates`, with largest-remainder rounding (assignments sum exactly to
/// `n_total`).
pub fn proportional_split(n_total: u64, rates: &[f64]) -> Vec<u64> {
    assert!(!rates.is_empty());
    let total_rate: f64 = rates.iter().sum();
    assert!(total_rate > 0.0, "all rates zero");
    let ideal: Vec<f64> = rates
        .iter()
        .map(|r| n_total as f64 * r / total_rate)
        .collect();
    let mut out: Vec<u64> = ideal.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = out.iter().sum();
    let mut remainder = n_total - assigned;
    // Hand the leftovers to the largest fractional parts.
    let mut frac: Vec<(f64, usize)> = ideal
        .iter()
        .enumerate()
        .map(|(i, &x)| (x - x.floor(), i))
        .collect();
    frac.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut cursor = 0;
    while remainder > 0 {
        out[frac[cursor % frac.len()].1] += 1;
        remainder -= 1;
        cursor += 1;
    }
    out
}

/// [`proportional_split`] quantized to the transport engine's canonical
/// reduction chunk: every rank boundary lands on a multiple of `chunk`
/// (the final ragged chunk, if `n_total` is not a multiple, goes to the
/// last rank with work). Assignments still sum exactly to `n_total`.
///
/// Chunk-aligned partitions are what let the distributed all-reduce
/// rebuild the serial summation tree bitwise — see
/// `run_histories_chunked` — so the fault-tolerant driver uses this for
/// every split it chooses itself (initial, adaptive, and post-death).
pub fn chunk_aligned_split(n_total: u64, weights: &[f64], chunk: u64) -> Vec<u64> {
    assert!(chunk > 0);
    if n_total == 0 {
        return vec![0; weights.len()];
    }
    let n_units = n_total.div_ceil(chunk);
    let units = proportional_split(n_units, weights);
    // Convert unit counts to particle counts: each unit is `chunk`
    // particles except the globally last one, which may be ragged.
    let mut out = Vec::with_capacity(weights.len());
    let mut start_unit = 0u64;
    for u in units {
        let lo = (start_unit * chunk).min(n_total);
        let hi = ((start_unit + u) * chunk).min(n_total);
        out.push(hi - lo);
        start_unit += u;
    }
    debug_assert_eq!(out.iter().sum::<u64>(), n_total);
    out
}

/// [`chunk_aligned_split`] over the surviving ranks only: dead ranks get
/// zero, the full `n_total` is re-split across ranks with
/// `alive[r] && weights[r] > 0` (equal weights if every survivor's
/// weight is zero). Panics if no rank is alive.
pub fn split_among_alive(n_total: u64, weights: &[f64], alive: &[bool], chunk: u64) -> Vec<u64> {
    assert_eq!(weights.len(), alive.len());
    let survivors: Vec<usize> = (0..alive.len()).filter(|&r| alive[r]).collect();
    assert!(!survivors.is_empty(), "every rank is dead");
    let mut w: Vec<f64> = survivors.iter().map(|&r| weights[r]).collect();
    if w.iter().all(|&x| x <= 0.0) {
        w = vec![1.0; w.len()];
    } else {
        // A survivor observed at zero weight still participates.
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        for x in w.iter_mut() {
            if *x <= 0.0 {
                *x = mean;
            }
        }
    }
    let split = chunk_aligned_split(n_total, &w, chunk);
    let mut out = vec![0u64; alive.len()];
    for (&r, &n) in survivors.iter().zip(&split) {
        out[r] = n;
    }
    out
}

/// Redistribute a dead rank's quota to the survivors, proportionally to
/// their previous assignments, keeping boundaries chunk-aligned. The
/// graceful-degradation move: total particles per batch is preserved, so
/// the physics (and k-eff) of the degraded run is identical to the
/// healthy run's.
pub fn redistribute_dead(assignments: &[u64], alive: &[bool], chunk: u64) -> Vec<u64> {
    let n_total: u64 = assignments.iter().sum();
    let weights: Vec<f64> = assignments.iter().map(|&a| a as f64).collect();
    split_among_alive(n_total, &weights, alive, chunk)
}

/// Aggregate rate after rank deaths, with the survivors rebalanced
/// proportionally to their rates (the degraded-mode column of the
/// Table III harness). Compare against [`ideal_rate`] of the survivors
/// to see the rebalancing quality, and against the full job's balanced
/// rate to see the cost of the loss.
pub fn degraded_rate(n_total: u64, rates: &[f64], alive: &[bool]) -> f64 {
    assert_eq!(rates.len(), alive.len());
    let surviving: Vec<f64> = (0..rates.len())
        .filter(|&r| alive[r])
        .map(|r| rates[r])
        .collect();
    assert!(!surviving.is_empty(), "every rank is dead");
    let split = proportional_split(n_total, &surviving);
    achieved_rate(&split, &surviving)
}

/// Wall time of a batch given per-rank assignments and rates: the slowest
/// rank gates the batch (everyone synchronizes at the fission-bank
/// reduction).
pub fn batch_time(assignments: &[u64], rates: &[f64]) -> f64 {
    assignments
        .iter()
        .zip(rates)
        .map(|(&n, &r)| n as f64 / r)
        .fold(0.0, f64::max)
}

/// Aggregate calculation rate achieved by a partition (total particles
/// over the gating rank's time).
pub fn achieved_rate(assignments: &[u64], rates: &[f64]) -> f64 {
    let n_total: u64 = assignments.iter().sum();
    n_total as f64 / batch_time(assignments, rates)
}

/// The ideal aggregate rate: the sum of rank rates (perfect balance, no
/// synchronization loss).
pub fn ideal_rate(rates: &[f64]) -> f64 {
    rates.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numbers() {
        // §III-B3: n_total = 1e7, α = 0.62, one CPU and one MIC rank
        // → n_mic = 6,172,840 and n_cpu = 3,827,160.
        let (n_mic, n_cpu) = partition_alpha(10_000_000, 1, 1, 0.62);
        assert!((n_mic - 6_172_839.5).abs() < 1.0, "n_mic = {n_mic}");
        assert!((n_cpu - 3_827_160.5).abs() < 1.0);

        let split = proportional_split(10_000_000, &[1.0, 0.62]);
        assert_eq!(split.iter().sum::<u64>(), 10_000_000);
        assert_eq!(split[0], 6_172_840); // mic (rate 1)
        assert_eq!(split[1], 3_827_160); // cpu (rate 0.62)
    }

    #[test]
    fn proportional_split_sums_exactly() {
        for n in [1u64, 7, 100, 999_999] {
            let split = proportional_split(n, &[3.0, 1.0, 2.0, 0.5]);
            assert_eq!(split.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn equal_rates_give_equal_split() {
        let split = proportional_split(100, &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(split, vec![25, 25, 25, 25]);
    }

    #[test]
    fn balanced_partition_beats_even_split() {
        // One fast rank (rate 1.0) and one slow (rate 0.62): even split
        // wastes the fast rank; the balanced split approaches ideal.
        let rates = [1.0, 0.62];
        let even = [5_000_000u64, 5_000_000];
        let balanced = proportional_split(10_000_000, &rates);
        let r_even = achieved_rate(&even, &rates);
        let r_bal = achieved_rate(&balanced, &rates);
        let r_ideal = ideal_rate(&rates);
        assert!(r_bal > r_even);
        assert!(r_bal / r_ideal > 0.999);
        // Even split achieves 2·min(rate) = 1.24 vs ideal 1.62: a ~23%
        // loss (the paper measures 16% for CPU+1MIC because its "ideal"
        // baseline already includes some synchronization overhead; the
        // Table III *shape* — balanced ≈ ideal ≫ even split — holds).
        let loss = 1.0 - r_even / r_ideal;
        assert!((loss - 0.2346).abs() < 0.01, "loss = {loss}");
    }

    #[test]
    fn chunk_aligned_split_sums_and_aligns() {
        for (n, weights) in [
            (300u64, vec![1.0, 1.0]),
            (300, vec![1.0, 1.0, 1.0, 1.0]),
            (1_000, vec![3.0, 1.0, 2.0]),
            (256, vec![1.0, 5.0]),
            (255, vec![1.0, 1.0]),
            (10_000, vec![1.0, 0.62]),
        ] {
            let split = chunk_aligned_split(n, &weights, 256);
            assert_eq!(split.iter().sum::<u64>(), n, "{weights:?}");
            // Every boundary except the last is a multiple of the chunk.
            let mut prefix = 0u64;
            for &a in &split[..split.len() - 1] {
                prefix += a;
                assert!(
                    prefix % 256 == 0 || prefix == n,
                    "boundary {prefix} not aligned for n={n} {weights:?}"
                );
            }
        }
    }

    #[test]
    fn zero_particles_split_to_zero() {
        assert_eq!(chunk_aligned_split(0, &[1.0, 2.0], 256), vec![0, 0]);
    }

    #[test]
    fn redistribute_dead_preserves_total_and_zeroes_the_dead() {
        let before = vec![512u64, 256, 256];
        let after = redistribute_dead(&before, &[true, false, true], 256);
        assert_eq!(after.iter().sum::<u64>(), 1024);
        assert_eq!(after[1], 0);
        assert!(after[0] > 0 && after[2] > 0);
        // Survivors keep their 2:1 proportion, chunk-aligned.
        assert_eq!(after[0] % 256, 0);
    }

    #[test]
    fn split_among_alive_handles_zero_weight_survivors() {
        // A survivor whose last assignment was zero re-enters at the
        // mean weight instead of being starved forever.
        let out = split_among_alive(1024, &[512.0, 0.0, 512.0], &[true, true, false], 256);
        assert_eq!(out.iter().sum::<u64>(), 1024);
        assert_eq!(out[2], 0);
        assert!(out[1] > 0, "zero-weight survivor must get work: {out:?}");
    }

    #[test]
    #[should_panic(expected = "every rank is dead")]
    fn all_dead_is_rejected() {
        let _ = split_among_alive(100, &[1.0, 1.0], &[false, false], 256);
    }

    #[test]
    fn degraded_rate_sits_between_lone_survivor_and_full_ideal() {
        let rates = [4_050.0, 6_641.0, 6_641.0]; // cpu + 2 mics
        let alive = [true, true, false]; // one mic died
        let d = degraded_rate(100_000, &rates, &alive);
        let survivor_ideal = rates[0] + rates[1];
        assert!(
            d > 0.99 * survivor_ideal,
            "rebalanced survivors near ideal: {d}"
        );
        assert!(d <= survivor_ideal + 1e-9);
        assert!(d < ideal_rate(&rates), "a death must cost throughput");
    }

    #[test]
    fn batch_time_is_gated_by_slowest() {
        let t = batch_time(&[100, 100], &[10.0, 1.0]);
        assert_eq!(t, 100.0);
    }

    #[test]
    fn alpha_is_a_plain_ratio() {
        assert!((alpha(620.0, 1000.0) - 0.62).abs() < 1e-12);
    }
}
