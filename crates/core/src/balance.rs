//! Static load balancing between heterogeneous ranks (the paper's §III-B3).
//!
//! OpenMC splits particles evenly over MPI ranks; with CPUs and MICs in
//! the same job their calculation rates differ by the factor
//! `α = rate_cpu / rate_mic` (Eq. 2), so the even split leaves the fast
//! ranks idle. Eq. 3 assigns
//!
//! ```text
//! n_mic = n_total / (p_mic + p_cpu·α),    n_cpu = α · n_mic
//! ```
//!
//! [`proportional_split`] generalizes this to any rate vector with
//! largest-remainder rounding so assignments are integral and sum exactly
//! to `n_total`.

/// The calculation-rate ratio α (Eq. 2).
#[inline]
pub fn alpha(cpu_rate: f64, mic_rate: f64) -> f64 {
    cpu_rate / mic_rate
}

/// Eq. 3: particles per MIC rank and per CPU rank.
///
/// Returns `(n_mic, n_cpu)` as reals; use [`proportional_split`] when you
/// need an exact integral assignment.
pub fn partition_alpha(n_total: u64, p_mic: u64, p_cpu: u64, alpha: f64) -> (f64, f64) {
    assert!(p_mic + p_cpu > 0);
    let denom = p_mic as f64 + p_cpu as f64 * alpha;
    let n_mic = n_total as f64 / denom;
    (n_mic, alpha * n_mic)
}

/// Split `n_total` particles across ranks proportionally to their
/// `rates`, with largest-remainder rounding (assignments sum exactly to
/// `n_total`).
pub fn proportional_split(n_total: u64, rates: &[f64]) -> Vec<u64> {
    assert!(!rates.is_empty());
    let total_rate: f64 = rates.iter().sum();
    assert!(total_rate > 0.0, "all rates zero");
    let ideal: Vec<f64> = rates
        .iter()
        .map(|r| n_total as f64 * r / total_rate)
        .collect();
    let mut out: Vec<u64> = ideal.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = out.iter().sum();
    let mut remainder = n_total - assigned;
    // Hand the leftovers to the largest fractional parts.
    let mut frac: Vec<(f64, usize)> = ideal
        .iter()
        .enumerate()
        .map(|(i, &x)| (x - x.floor(), i))
        .collect();
    frac.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut cursor = 0;
    while remainder > 0 {
        out[frac[cursor % frac.len()].1] += 1;
        remainder -= 1;
        cursor += 1;
    }
    out
}

/// Wall time of a batch given per-rank assignments and rates: the slowest
/// rank gates the batch (everyone synchronizes at the fission-bank
/// reduction).
pub fn batch_time(assignments: &[u64], rates: &[f64]) -> f64 {
    assignments
        .iter()
        .zip(rates)
        .map(|(&n, &r)| n as f64 / r)
        .fold(0.0, f64::max)
}

/// Aggregate calculation rate achieved by a partition (total particles
/// over the gating rank's time).
pub fn achieved_rate(assignments: &[u64], rates: &[f64]) -> f64 {
    let n_total: u64 = assignments.iter().sum();
    n_total as f64 / batch_time(assignments, rates)
}

/// The ideal aggregate rate: the sum of rank rates (perfect balance, no
/// synchronization loss).
pub fn ideal_rate(rates: &[f64]) -> f64 {
    rates.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numbers() {
        // §III-B3: n_total = 1e7, α = 0.62, one CPU and one MIC rank
        // → n_mic = 6,172,840 and n_cpu = 3,827,160.
        let (n_mic, n_cpu) = partition_alpha(10_000_000, 1, 1, 0.62);
        assert!((n_mic - 6_172_839.5).abs() < 1.0, "n_mic = {n_mic}");
        assert!((n_cpu - 3_827_160.5).abs() < 1.0);

        let split = proportional_split(10_000_000, &[1.0, 0.62]);
        assert_eq!(split.iter().sum::<u64>(), 10_000_000);
        assert_eq!(split[0], 6_172_840); // mic (rate 1)
        assert_eq!(split[1], 3_827_160); // cpu (rate 0.62)
    }

    #[test]
    fn proportional_split_sums_exactly() {
        for n in [1u64, 7, 100, 999_999] {
            let split = proportional_split(n, &[3.0, 1.0, 2.0, 0.5]);
            assert_eq!(split.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn equal_rates_give_equal_split() {
        let split = proportional_split(100, &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(split, vec![25, 25, 25, 25]);
    }

    #[test]
    fn balanced_partition_beats_even_split() {
        // One fast rank (rate 1.0) and one slow (rate 0.62): even split
        // wastes the fast rank; the balanced split approaches ideal.
        let rates = [1.0, 0.62];
        let even = [5_000_000u64, 5_000_000];
        let balanced = proportional_split(10_000_000, &rates);
        let r_even = achieved_rate(&even, &rates);
        let r_bal = achieved_rate(&balanced, &rates);
        let r_ideal = ideal_rate(&rates);
        assert!(r_bal > r_even);
        assert!(r_bal / r_ideal > 0.999);
        // Even split achieves 2·min(rate) = 1.24 vs ideal 1.62: a ~23%
        // loss (the paper measures 16% for CPU+1MIC because its "ideal"
        // baseline already includes some synchronization overhead; the
        // Table III *shape* — balanced ≈ ideal ≫ even split — holds).
        let loss = 1.0 - r_even / r_ideal;
        assert!((loss - 0.2346).abs() < 0.01, "loss = {loss}");
    }

    #[test]
    fn batch_time_is_gated_by_slowest() {
        let t = batch_time(&[100, 100], &[10.0, 1.0]);
        assert_eq!(t, 100.0);
    }

    #[test]
    fn alpha_is_a_plain_ratio() {
        assert!((alpha(620.0, 1000.0) - 0.62).abs() < 1e-12);
    }
}
