//! History-based transport: each particle tracked birth→death.
//!
//! This is OpenMC's algorithm and the paper's baseline: MIMD-style
//! parallelism where each thread owns whole histories and every particle's
//! control flow diverges independently (§I). Parallelism over particles
//! uses fixed-size chunks folded in chunk order, so results are bitwise
//! identical for any thread count.
//!
//! The `run_histories_*` driver zoo is collapsed into one parameterized
//! batch function consumed by `mcs_core::engine`; the old entry points
//! are gone — go through the engine.

use mcs_geom::{Vec3, BOUNDARY_EPS};
use mcs_prof::ThreadProfiler;
use mcs_rng::Lcg63;
use rayon::prelude::*;

use crate::mesh::{MeshSpec, MeshTally};
use crate::particle::{Particle, Site, SourceSite};
use crate::physics::{collide, CollisionOutcome};
use crate::problem::Problem;
use crate::spectrum::SpectrumTally;
use crate::tally::Tallies;
use crate::E_FLOOR;

/// Tallies plus the fission bank produced by a set of histories.
#[derive(Debug, Clone, Default)]
pub struct TransportOutcome {
    /// Global tallies.
    pub tallies: Tallies,
    /// Banked fission sites, in (parent, seq) order.
    pub sites: Vec<Site>,
}

/// Chunk size for deterministic parallel reduction.
pub const CHUNK: usize = 256;

/// Hard cap on flight segments per history (defensive; a particle in this
/// problem dies in well under a thousand segments).
const MAX_SEGMENTS: usize = 2_000_000;

/// Track one particle to completion, accumulating tallies and fission
/// sites. `prof` (when present) attributes time to the same routine names
/// the paper's Fig. 4 profile shows.
pub fn transport_particle(
    problem: &Problem,
    p: &mut Particle,
    tallies: &mut Tallies,
    sites: &mut Vec<Site>,
    prof: Option<&ThreadProfiler>,
) {
    transport_particle_full(problem, p, tallies, sites, prof, None, None, None)
}

/// [`transport_particle`] with an optional user-defined mesh tally scored
/// along every flight segment (the paper's "tallies throughout phase
/// space" that make active batches cost more than inactive ones).
pub fn transport_particle_mesh(
    problem: &Problem,
    p: &mut Particle,
    tallies: &mut Tallies,
    sites: &mut Vec<Site>,
    prof: Option<&ThreadProfiler>,
    mesh: Option<&mut MeshTally>,
) {
    transport_particle_full(problem, p, tallies, sites, prof, mesh, None, None)
}

/// The fully-instrumented history loop: optional mesh tally and optional
/// energy-spectrum tally scored along every flight segment, plus an
/// optional leakage spectrum scored at escape (the shielding output of
/// fixed-source runs).
///
/// Float tallies accumulate into a per-particle partial that is folded
/// into `tallies` once the history ends. This fixes a canonical
/// summation tree — per-particle in segment order, then particles in
/// index order — that the event driver reproduces exactly, making the
/// two transport algorithms' float tallies (and therefore k-eff)
/// bit-identical, not merely close.
#[allow(clippy::too_many_arguments)]
pub fn transport_particle_full(
    problem: &Problem,
    p: &mut Particle,
    tallies: &mut Tallies,
    sites: &mut Vec<Site>,
    prof: Option<&ThreadProfiler>,
    mesh: Option<&mut MeshTally>,
    spectrum: Option<&mut SpectrumTally>,
    leak_spectrum: Option<&mut SpectrumTally>,
) {
    let mut per_particle = Tallies::default();
    transport_particle_inner(
        problem,
        p,
        &mut per_particle,
        sites,
        prof,
        mesh,
        spectrum,
        leak_spectrum,
    );
    tallies.merge(&per_particle);
}

#[allow(clippy::too_many_arguments)]
fn transport_particle_inner(
    problem: &Problem,
    p: &mut Particle,
    tallies: &mut Tallies,
    sites: &mut Vec<Site>,
    prof: Option<&ThreadProfiler>,
    mut mesh: Option<&mut MeshTally>,
    mut spectrum: Option<&mut SpectrumTally>,
    mut leak_spectrum: Option<&mut SpectrumTally>,
) {
    tallies.n_particles += 1;
    let mut seq = p.sites_banked;
    for _ in 0..MAX_SEGMENTS {
        // Locate.
        let Some(cell) = problem.find(p.pos) else {
            tallies.leaks += 1;
            if let Some(ls) = leak_spectrum.as_deref_mut() {
                ls.score(p.energy, p.weight);
            }
            return;
        };

        // Cross-section lookup (the bottleneck routine). Uses the
        // vectorized nuclide-loop kernel — the paper's first SIMD
        // algorithm operates inside history transport — which also makes
        // the lookup bit-identical to the event driver's batched kernel.
        tallies.record_segment(cell.material);
        let xs = {
            let _g = prof.map(|t| t.enter("calculate_xs"));
            problem.macro_xs_vector(cell.material, p.energy, &mut p.rng)
        };
        debug_assert!(xs.total > 0.0, "non-positive total xs");

        // Distance to collision (Eq. 1) vs distance to boundary.
        let d_coll = -p.rng.next_uniform().ln() / xs.total;
        let d_bound = {
            let _g = prof.map(|t| t.enter("distance_to_boundary"));
            problem.distance_to_boundary(p.pos, p.dir)
        };

        if d_bound <= d_coll {
            // Surface crossing.
            tallies.track_length += d_bound;
            tallies.k_track += p.weight * d_bound * xs.nu_fission;
            if let Some(m) = mesh.as_deref_mut() {
                m.score_track(p.pos, p.dir, d_bound);
            }
            if let Some(sp) = spectrum.as_deref_mut() {
                sp.score(p.energy, p.weight * d_bound);
            }
            p.pos += p.dir * (d_bound + BOUNDARY_EPS);
            continue;
        }

        // Collision.
        tallies.track_length += d_coll;
        tallies.k_track += p.weight * d_coll * xs.nu_fission;
        if let Some(m) = mesh.as_deref_mut() {
            m.score_track(p.pos, p.dir, d_coll);
        }
        if let Some(sp) = spectrum.as_deref_mut() {
            sp.score(p.energy, p.weight * d_coll);
        }
        p.pos += p.dir * d_coll;
        tallies.record_collision(cell.material);
        let w_before = p.weight;
        tallies.k_collision += w_before * xs.nu_fission / xs.total;
        let survival = !matches!(
            problem.treatment,
            crate::physics::AbsorptionTreatment::Analog
        );
        if survival && xs.absorption > 0.0 {
            // Implicit-capture absorption estimator: the weight absorbed
            // this collision times ν Σ_f / Σ_a.
            tallies.k_absorption +=
                w_before * (xs.absorption / xs.total) * (xs.nu_fission / xs.absorption);
        }

        let outcome = {
            let _g = prof.map(|t| t.enter("sample_reaction"));
            collide(
                &problem.xs,
                &problem.materials[cell.material as usize],
                &problem.physics,
                &problem.slots[cell.material as usize],
                p.pos,
                &mut p.dir,
                &mut p.energy,
                &mut p.weight,
                problem.treatment,
                &xs,
                &mut p.rng,
                p.index,
                &mut seq,
                sites,
            )
        };
        match outcome {
            CollisionOutcome::Absorbed { fission } => {
                tallies.record_absorption(cell.material, fission);
                if !survival && xs.absorption > 0.0 {
                    tallies.k_absorption += xs.nu_fission / xs.absorption;
                }
                p.sites_banked = seq;
                return;
            }
            CollisionOutcome::Scattered => {
                if p.energy < E_FLOOR {
                    // Thermalized below the data floor: terminate as capture.
                    tallies.record_absorption(cell.material, false);
                    p.sites_banked = seq;
                    return;
                }
            }
        }
    }
    panic!("particle exceeded {MAX_SEGMENTS} flight segments");
}

/// The collapsed history batch driver: every `run_histories_*` variant
/// is this one function with different knobs.
///
/// * `mesh_spec` — score a mesh tally along every segment.
/// * `want_spectrum` — score a full-range energy spectrum.
/// * `profiler` — run *sequentially* on the calling thread under the
///   `transport_total` region with per-routine attribution (the fig. 4
///   measurement; its single-accumulator float fold is part of the
///   measurement and differs from the chunked tree above `CHUNK`
///   particles, which is why the profiled path stays sequential).
///
/// The parallel path chunks `CHUNK` particles per task and folds partial
/// results in chunk order, so every thread count reproduces the serial
/// summation tree bit for bit.
pub(crate) fn run_history_batch(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    mesh_spec: Option<MeshSpec>,
    want_spectrum: bool,
    profiler: Option<&ThreadProfiler>,
) -> (TransportOutcome, Option<MeshTally>, Option<SpectrumTally>) {
    assert_eq!(sources.len(), streams.len());

    if let Some(prof) = profiler {
        // Sequential instrumented path: one accumulator, no chunk fold —
        // bit-identical to the historical `run_histories_profiled`.
        let mut out = TransportOutcome::default();
        let mut mesh = mesh_spec.map(MeshTally::new);
        let mut spectrum = want_spectrum.then(SpectrumTally::standard);
        let _total = prof.enter("transport_total");
        for (i, (&site, &rng)) in sources.iter().zip(streams).enumerate() {
            let mut p = Particle::born(site, i as u32, rng);
            transport_particle_full(
                problem,
                &mut p,
                &mut out.tallies,
                &mut out.sites,
                Some(prof),
                mesh.as_mut(),
                spectrum.as_mut(),
                None,
            );
        }
        return (out, mesh, spectrum);
    }

    let partials: Vec<(TransportOutcome, Option<MeshTally>, Option<SpectrumTally>)> = sources
        .par_chunks(CHUNK)
        .zip(streams.par_chunks(CHUNK))
        .enumerate()
        .map(|(chunk_idx, (src, stream))| {
            let mut out = TransportOutcome::default();
            let mut mesh = mesh_spec.map(MeshTally::new);
            let mut spectrum = want_spectrum.then(SpectrumTally::standard);
            for (i, (&site, &rng)) in src.iter().zip(stream).enumerate() {
                let index = (chunk_idx * CHUNK + i) as u32;
                let mut p = Particle::born(site, index, rng);
                transport_particle_full(
                    problem,
                    &mut p,
                    &mut out.tallies,
                    &mut out.sites,
                    None,
                    mesh.as_mut(),
                    spectrum.as_mut(),
                    None,
                );
            }
            (out, mesh, spectrum)
        })
        .collect();

    let mut merged = TransportOutcome::default();
    let mut mesh = mesh_spec.map(MeshTally::new);
    let mut spectrum = want_spectrum.then(SpectrumTally::standard);
    for (part, part_mesh, part_spectrum) in partials {
        merged.tallies.merge(&part.tallies);
        merged.sites.extend(part.sites);
        if let (Some(m), Some(pm)) = (mesh.as_mut(), part_mesh.as_ref()) {
            m.merge(pm);
        }
        if let (Some(sp), Some(ps)) = (spectrum.as_mut(), part_spectrum.as_ref()) {
            sp.merge(ps);
        }
    }
    (merged, mesh, spectrum)
}

/// [`run_history_batch`] exposing the per-chunk partial outcomes instead
/// of the merged result, in chunk order (chunk `i` covers local particles
/// `i*CHUNK .. (i+1)*CHUNK`).
///
/// This is the building block for *partition-invariant* distributed
/// reduction: the canonical summation tree fixed by PR 2 is per-particle
/// partials folded in index order within `CHUNK`-sized chunks, then
/// chunks folded in chunk order. A distributed rank whose slice starts
/// at a multiple of `CHUNK` produces chunk partials that coincide with
/// the serial run's chunks, so the all-reduce can rebuild the *serial*
/// fold exactly — merging whole-rank partials cannot (float addition is
/// not associative across different groupings).
pub(crate) fn run_histories_chunked_impl(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
) -> Vec<TransportOutcome> {
    assert_eq!(sources.len(), streams.len());
    sources
        .par_chunks(CHUNK)
        .zip(streams.par_chunks(CHUNK))
        .enumerate()
        .map(|(chunk_idx, (src, stream))| {
            let mut out = TransportOutcome::default();
            for (i, (&site, &rng)) in src.iter().zip(stream).enumerate() {
                let index = (chunk_idx * CHUNK + i) as u32;
                let mut p = Particle::born(site, index, rng);
                transport_particle(problem, &mut p, &mut out.tallies, &mut out.sites, None);
            }
            out
        })
        .collect()
}

/// The per-history RNG streams for batch `batch_index` of a run: particle
/// `i` gets the stream starting `(<batch offset> + i) · STRIDE` draws into
/// the master sequence.
pub fn batch_streams(seed: u64, batch_index: u64, n: usize) -> Vec<Lcg63> {
    (0..n)
        .map(|i| {
            Lcg63::for_history(
                seed,
                batch_index * (n as u64) + i as u64,
                mcs_rng::STREAM_STRIDE,
            )
        })
        .collect()
}

/// Where the transport flight loop starts for external drivers: exposes
/// the same per-segment stepping used internally, for tests that need to
/// cross-check intermediate state.
pub fn segment_pos_after(problem: &Problem, start: Vec3, dir: Vec3, d: f64) -> Option<Vec3> {
    let p = start + dir * d;
    problem.find(p).map(|_| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn small_run(n: usize) -> (Problem, TransportOutcome) {
        let problem = Problem::test_small();
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);
        let out = run_history_batch(&problem, &sources, &streams, None, false, None).0;
        (problem, out)
    }

    #[test]
    fn histories_conserve_particles() {
        let n = 200;
        let (_, out) = small_run(n);
        assert_eq!(out.tallies.n_particles, n as u64);
        // Every particle ends exactly one way.
        assert_eq!(out.tallies.absorptions + out.tallies.leaks, n as u64);
        assert!(out.tallies.collisions > 0);
        assert!(out.tallies.track_length > 0.0);
    }

    #[test]
    fn k_estimators_are_positive_and_similar() {
        let n = 2000;
        let (_, out) = small_run(n);
        let kt = out.tallies.k_track_estimate();
        let kc = out.tallies.k_collision_estimate();
        let ka = out.tallies.k_absorption_estimate();
        assert!(kt > 0.0 && kc > 0.0 && ka > 0.0);
        // The three estimators agree within Monte Carlo noise.
        assert!((kt - kc).abs() / kt < 0.2, "kt={kt} kc={kc}");
        assert!((kt - ka).abs() / kt < 0.2, "kt={kt} ka={ka}");
    }

    #[test]
    fn per_material_breakdowns_are_consistent() {
        let (_, out) = small_run(800);
        let t = out.tallies;
        assert_eq!(t.absorptions_by_material.iter().sum::<u64>(), t.absorptions);
        assert_eq!(t.fissions_by_material.iter().sum::<u64>(), t.fissions);
        // Fission only happens in fuel (material 0).
        assert_eq!(t.fissions_by_material[0], t.fissions);
        assert!(t.fissions_by_material[1] == 0 && t.fissions_by_material[2] == 0);
        // Fuel absorbs the most.
        assert!(t.absorptions_by_material[0] > t.absorptions_by_material[1]);
    }

    #[test]
    fn fission_sites_ordered_and_tagged() {
        let (_, out) = small_run(500);
        assert!(!out.sites.is_empty(), "no fission in a fueled assembly?");
        for w in out.sites.windows(2) {
            assert!((w[0].parent, w[0].seq) < (w[1].parent, w[1].seq));
        }
    }

    #[test]
    fn deterministic_across_thread_pools() {
        let problem = Problem::test_small();
        let sources = problem.sample_initial_source(300, 1);
        let streams = batch_streams(problem.seed, 0, 300);

        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let a =
            pool1.install(|| run_history_batch(&problem, &sources, &streams, None, false, None).0);
        let b =
            pool4.install(|| run_history_batch(&problem, &sources, &streams, None, false, None).0);
        assert_eq!(a.tallies, b.tallies);
        assert_eq!(a.sites, b.sites);
    }

    #[test]
    fn profiled_run_matches_parallel_run() {
        let problem = Problem::test_small();
        let sources = problem.sample_initial_source(100, 2);
        let streams = batch_streams(problem.seed, 0, 100);
        let prof = mcs_prof::ThreadProfiler::new();
        let a = run_history_batch(&problem, &sources, &streams, None, false, Some(&prof)).0;
        let b = run_history_batch(&problem, &sources, &streams, None, false, None).0;
        assert_eq!(a.tallies, b.tallies);
        assert_eq!(a.sites, b.sites);
        let profile = prof.finish();
        assert!(profile.get("calculate_xs").unwrap().calls > 0);
        assert!(profile.get("transport_total").is_some());
    }

    #[test]
    fn chunked_partials_rebuild_the_merged_run_bitwise() {
        let problem = Problem::test_small();
        let n = 600; // 3 chunks: 256 + 256 + 88
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);
        let merged = run_history_batch(&problem, &sources, &streams, None, false, None).0;
        let chunks = run_histories_chunked_impl(&problem, &sources, &streams);
        assert_eq!(chunks.len(), n.div_ceil(CHUNK));
        let mut rebuilt = TransportOutcome::default();
        for c in &chunks {
            rebuilt.tallies.merge(&c.tallies);
            rebuilt.sites.extend(c.sites.iter().copied());
        }
        // Bitwise, not approximately: the fold tree is identical.
        assert_eq!(rebuilt.tallies, merged.tallies);
        assert_eq!(rebuilt.sites, merged.sites);
    }

    #[test]
    fn leaks_occur_in_small_geometry() {
        // A single short assembly leaks plenty of fast neutrons.
        let (_, out) = small_run(500);
        assert!(out.tallies.leaks > 0);
    }
}
