//! Global tallies and batch statistics.
//!
//! The paper's experiments collect only OpenMC's default global tallies
//! (total collisions, absorptions, and track-lengths, §III-B1); the same
//! set is accumulated here, together with the three standard k-effective
//! estimators.

/// Accumulated global tallies for one batch (or a merged set of batches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tallies {
    /// Source particles contributing.
    pub n_particles: u64,
    /// Flight segments (= XS lookups performed).
    pub segments: u64,
    /// Segments broken down by material id (ids ≥ 7 fold into slot 7).
    pub segments_by_material: [u64; 8],
    /// Collisions broken down by material id.
    pub collisions_by_material: [u64; 8],
    /// Absorption events broken down by material id.
    pub absorptions_by_material: [u64; 8],
    /// Fission events broken down by material id.
    pub fissions_by_material: [u64; 8],
    /// Collision events.
    pub collisions: u64,
    /// Absorption events (capture + fission + energy-floor terminations).
    pub absorptions: u64,
    /// Fission events.
    pub fissions: u64,
    /// Leakage events.
    pub leaks: u64,
    /// Total flight path length (cm).
    pub track_length: f64,
    /// Track-length estimator sum: Σ w·d·νΣ_f.
    pub k_track: f64,
    /// Collision estimator sum: Σ w·νΣ_f/Σ_t at collisions.
    pub k_collision: f64,
    /// Absorption estimator sum: Σ w·νΣ_f/Σ_a at absorptions.
    pub k_absorption: f64,
}

impl Tallies {
    /// Record one flight segment in material `m`.
    #[inline]
    pub fn record_segment(&mut self, m: u32) {
        self.segments += 1;
        self.segments_by_material[(m as usize).min(7)] += 1;
    }

    /// Record one collision in material `m`.
    #[inline]
    pub fn record_collision(&mut self, m: u32) {
        self.collisions += 1;
        self.collisions_by_material[(m as usize).min(7)] += 1;
    }

    /// Record one absorption (optionally a fission) in material `m`.
    #[inline]
    pub fn record_absorption(&mut self, m: u32, fission: bool) {
        self.absorptions += 1;
        self.absorptions_by_material[(m as usize).min(7)] += 1;
        if fission {
            self.fissions += 1;
            self.fissions_by_material[(m as usize).min(7)] += 1;
        }
    }

    /// Fold another tally set into this one.
    pub fn merge(&mut self, o: &Tallies) {
        self.n_particles += o.n_particles;
        self.segments += o.segments;
        for i in 0..8 {
            self.segments_by_material[i] += o.segments_by_material[i];
            self.collisions_by_material[i] += o.collisions_by_material[i];
            self.absorptions_by_material[i] += o.absorptions_by_material[i];
            self.fissions_by_material[i] += o.fissions_by_material[i];
        }
        self.collisions += o.collisions;
        self.absorptions += o.absorptions;
        self.fissions += o.fissions;
        self.leaks += o.leaks;
        self.track_length += o.track_length;
        self.k_track += o.k_track;
        self.k_collision += o.k_collision;
        self.k_absorption += o.k_absorption;
    }

    /// Linearly rescale the per-particle structure to a batch of `n`
    /// source particles.
    ///
    /// The figure/table harnesses probe transport with a small measured
    /// batch and then price a paper-scale batch on the machine models;
    /// only the count fields the models consume (segments, collisions,
    /// and their per-material breakdowns) are rescaled.
    pub fn scaled_to(&self, n: u64) -> Tallies {
        let f = n as f64 / self.n_particles.max(1) as f64;
        let mut t = *self;
        t.n_particles = n;
        t.segments = (t.segments as f64 * f) as u64;
        t.collisions = (t.collisions as f64 * f) as u64;
        for i in 0..8 {
            t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
            t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
        }
        t
    }

    /// Track-length k estimate for this batch.
    pub fn k_track_estimate(&self) -> f64 {
        self.k_track / self.n_particles.max(1) as f64
    }

    /// Collision k estimate for this batch.
    pub fn k_collision_estimate(&self) -> f64 {
        self.k_collision / self.n_particles.max(1) as f64
    }

    /// Absorption k estimate for this batch.
    pub fn k_absorption_estimate(&self) -> f64 {
        self.k_absorption / self.n_particles.max(1) as f64
    }
}

/// Online mean/variance accumulator for per-batch scalars (k estimates,
/// entropy, rates).
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    values: Vec<f64>,
}

impl BatchStats {
    /// Record one batch value.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of recorded batches.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// All recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Standard error of the mean (0 for < 2 samples).
    pub fn std_error(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64;
        (var / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = Tallies {
            n_particles: 10,
            segments: 150,
            segments_by_material: [100, 50, 0, 0, 0, 0, 0, 0],
            collisions_by_material: [60, 40, 0, 0, 0, 0, 0, 0],
            absorptions_by_material: [4, 2, 0, 0, 0, 0, 0, 0],
            fissions_by_material: [2, 0, 0, 0, 0, 0, 0, 0],
            collisions: 100,
            absorptions: 6,
            fissions: 2,
            leaks: 4,
            track_length: 50.0,
            k_track: 9.5,
            k_collision: 9.4,
            k_absorption: 9.6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.n_particles, 20);
        assert_eq!(a.segments, 300);
        assert_eq!(a.segments_by_material[0], 200);
        assert_eq!(a.collisions_by_material[1], 80);
        assert_eq!(a.absorptions_by_material[0], 8);
        assert_eq!(a.fissions_by_material[0], 4);
        assert_eq!(a.collisions, 200);
        assert_eq!(a.track_length, 100.0);
        assert_eq!(a.k_track, 19.0);
    }

    #[test]
    fn k_estimates_normalize_by_particles() {
        let t = Tallies {
            n_particles: 100,
            k_track: 95.0,
            k_collision: 93.0,
            k_absorption: 97.0,
            ..Default::default()
        };
        assert!((t.k_track_estimate() - 0.95).abs() < 1e-12);
        assert!((t.k_collision_estimate() - 0.93).abs() < 1e-12);
        assert!((t.k_absorption_estimate() - 0.97).abs() < 1e-12);
    }

    #[test]
    fn batch_stats_mean_and_error() {
        let mut s = BatchStats::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.n(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        // var = 5/3, se = sqrt(5/12)
        assert!((s.std_error() - (5.0f64 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = BatchStats::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        let t = Tallies::default();
        assert_eq!(t.k_track_estimate(), 0.0);
    }
}
