//! Collision physics shared by the history and event algorithms.
//!
//! Both transport algorithms call the *same* routines in the *same*
//! per-particle RNG-draw order, which is what makes their trajectories
//! bitwise identical (an integration test asserts this). Draw order per
//! flight segment:
//!
//! 1. XS lookup — one draw per in-range URR nuclide present in the
//!    material (probability-table band selection).
//! 2. Distance sampling — one draw (`d = −ln ξ / Σ_t`, the paper's Eq. 1).
//! 3. On collision: absorption test (1 draw); then either fission test
//!    (1 draw) + site production (1 + 2·sites draws minimum), or scatter
//!    nuclide selection (1 draw) + outgoing kinematics (2 draws).

use mcs_geom::Vec3;
use mcs_rng::Lcg63;
use mcs_xs::sab::{SabTable, SAB_CUTOFF};
use mcs_xs::urr::UrrTable;
use mcs_xs::{MacroXs, Material, XsContext};

use crate::particle::Site;

/// Thermal scattering physics bound to one nuclide (hydrogen in water).
#[derive(Debug, Clone)]
pub struct SabPhysics {
    /// Library index of the bound nuclide.
    pub nuclide: u32,
    /// The table.
    pub table: SabTable,
    /// Material temperature (K) for the table branch.
    pub temperature: f64,
}

/// URR probability-table physics bound to one nuclide.
#[derive(Debug, Clone)]
pub struct UrrPhysics {
    /// Library index.
    pub nuclide: u32,
    /// The table.
    pub table: UrrTable,
}

/// Optional physics treatments. The paper's vectorized micro-benchmarks
/// strip both (§III-A1); the full-physics runs include them.
#[derive(Debug, Clone)]
pub struct Physics {
    /// S(α,β) thermal scattering (at most one bound nuclide).
    pub sab: Option<SabPhysics>,
    /// URR tables, applied in order.
    pub urr: Vec<UrrPhysics>,
    /// Free-gas target motion for elastic scattering below
    /// `400·kT` (the on-the-fly thermal treatment of §II-A3; gives
    /// physical up-scattering and a proper thermal equilibrium).
    pub free_gas: bool,
    /// Material temperature (K) for the free-gas Maxwellian.
    pub temperature_k: f64,
}

impl Default for Physics {
    fn default() -> Self {
        Self {
            sab: None,
            urr: Vec::new(),
            free_gas: false,
            temperature_k: 293.6,
        }
    }
}

impl Physics {
    /// No optional physics (the stripped configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if any optional treatment is enabled (the ones that affect
    /// cross-section *lookups* — free-gas motion only affects outgoing
    /// kinematics).
    pub fn any(&self) -> bool {
        self.sab.is_some() || !self.urr.is_empty()
    }

    /// kT at the configured temperature, in MeV.
    pub fn kt_mev(&self) -> f64 {
        8.617_333_262e-11 * self.temperature_k
    }
}

/// Precomputed positions of the physics nuclides within one material's
/// nuclide list (`None` = not present).
#[derive(Debug, Clone, Default)]
pub struct MaterialSlots {
    /// Position of each `Physics::urr` entry's nuclide in the material.
    pub urr: Vec<Option<u32>>,
    /// Position of the S(α,β) nuclide in the material.
    pub sab: Option<u32>,
}

impl MaterialSlots {
    /// Compute slots for `mat` under `phys`.
    pub fn build(mat: &Material, phys: &Physics) -> Self {
        let find = |nuclide: u32| {
            mat.nuclides
                .iter()
                .position(|&k| k == nuclide)
                .map(|j| j as u32)
        };
        Self {
            urr: phys.urr.iter().map(|u| find(u.nuclide)).collect(),
            sab: phys.sab.as_ref().and_then(|s| find(s.nuclide)),
        }
    }
}

/// Apply URR band sampling and the S(α,β) elastic enhancement on top of a
/// base (smooth) macroscopic lookup. Consumes one draw per applicable URR
/// nuclide; S(α,β) is deterministic.
///
/// Note on consistency: the adjusted Σ governs distance sampling and the
/// absorption/fission decisions; the scatter-nuclide walk re-applies the
/// S(α,β) factor but uses the *smooth* URR values (the URR factors are
/// mean-one, so the nuclide-selection bias is zero on average — OpenMC
/// makes the same simplification for its ptable "inelastic competition").
#[allow(clippy::too_many_arguments)]
pub fn apply_physics(
    ctx: &XsContext,
    mat: &Material,
    e: f64,
    phys: &Physics,
    slots: &MaterialSlots,
    rng: &mut Lcg63,
    xs: &mut MacroXs,
) {
    // URR: replace the in-range nuclides' smooth contribution by the
    // sampled-band contribution.
    for (entry, slot) in phys.urr.iter().zip(&slots.urr) {
        if !entry.table.in_range(e) {
            continue;
        }
        let Some(j) = *slot else { continue };
        let j = j as usize;
        let xi = rng.next_uniform();
        let fac = entry.table.sample(e, xi);
        let k = mat.nuclides[j];
        let micro = ctx
            .lib()
            .nuclide(k)
            .micro_at_index(ctx.nuclide_index(e, k as usize) as usize, e);
        let adjusted = fac.apply(micro);
        let d = mat.densities[j];
        let dn = mat.densities_nu[j];
        // Subtract smooth, add adjusted.
        xs.accumulate(-d, -dn, micro);
        xs.accumulate(d, dn, adjusted);
    }

    // S(α,β): enhance the bound nuclide's elastic cross section.
    if let (Some(sab), Some(j)) = (&phys.sab, slots.sab) {
        if sab.table.in_range(e) {
            let j = j as usize;
            let factor = sab.table.elastic_factor(e, sab.temperature);
            let k = mat.nuclides[j];
            let micro = ctx
                .lib()
                .nuclide(k)
                .micro_at_index(ctx.nuclide_index(e, k as usize) as usize, e);
            let delta = mat.densities[j] * (factor - 1.0) * micro.elastic;
            xs.elastic += delta;
            xs.total += delta;
        }
    }
}

/// How absorption is treated during transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsorptionTreatment {
    /// Analog: absorption kills the particle outright (the paper's mode).
    Analog,
    /// Survival biasing (implicit capture): the particle's weight is
    /// reduced by the absorption probability at every collision, fission
    /// sites are banked in expectation, and low-weight particles play
    /// Russian roulette — OpenMC's `survival_biasing` option.
    SurvivalBiasing {
        /// Roulette trigger weight.
        weight_cutoff: f64,
        /// Weight assigned to roulette survivors.
        survival_weight: f64,
    },
}

impl AbsorptionTreatment {
    /// OpenMC's default survival-biasing parameters.
    pub fn survival_default() -> Self {
        Self::SurvivalBiasing {
            weight_cutoff: 0.25,
            survival_weight: 1.0,
        }
    }
}

/// Watt fission spectrum parameters for thermal U-235 (MeV, 1/MeV).
pub const WATT_A: f64 = 0.988;
/// See [`WATT_A`].
pub const WATT_B: f64 = 2.249;

/// Sample the Watt fission spectrum by the Everett–Cashwell rejection
/// algorithm (the sampler OpenMC and MCNP use).
pub fn sample_watt(rng: &mut Lcg63, a: f64, b: f64) -> f64 {
    let k = 1.0 + a * b / 8.0;
    let l = a * (k + (k * k - 1.0).sqrt());
    let m = l / a - 1.0;
    loop {
        let x = -rng.next_uniform().ln();
        let y = -rng.next_uniform().ln();
        let t = y - m * (x + 1.0);
        if t * t <= b * l * x {
            return l * x;
        }
    }
}

/// Sample the squared reduced target speed and the target-neutron cosine
/// for a free-gas (Maxwellian, constant-σ) target — OpenMC's
/// `sample_cxs_target_velocity` rejection algorithm. Returns
/// `(beta_vt_sq, mu_target)` in reduced units where `β² = A·v²/(2kT)`.
pub fn sample_free_gas_target(beta_vn: f64, rng: &mut Lcg63) -> (f64, f64) {
    let pi = std::f64::consts::PI;
    let alpha = 1.0 / (1.0 + pi.sqrt() * beta_vn / 2.0);
    loop {
        let beta_vt_sq = if rng.next_uniform() < alpha {
            -(rng.next_uniform() * rng.next_uniform()).ln()
        } else {
            let c = (pi / 2.0 * rng.next_uniform()).cos();
            -rng.next_uniform().ln() - rng.next_uniform().ln() * c * c
        };
        let beta_vt = beta_vt_sq.sqrt();
        let mu = 2.0 * rng.next_uniform() - 1.0;
        let accept = ((beta_vn * beta_vn + beta_vt_sq - 2.0 * beta_vn * beta_vt * mu).sqrt())
            / (beta_vn + beta_vt);
        if rng.next_uniform() < accept {
            return (beta_vt_sq, mu);
        }
    }
}

/// Elastic scattering off a *moving* free-gas target: full two-body
/// kinematics with the target velocity drawn from the relative-speed-
/// weighted Maxwellian. Returns the lab outgoing energy and direction.
pub fn free_gas_scatter(e: f64, dir: Vec3, awr: f64, kt: f64, rng: &mut Lcg63) -> (f64, Vec3) {
    // Work in velocity units where v = sqrt(E) for the neutron (mass-
    // normalized); the target's Maxwellian has variance kT/awr in these
    // units.
    let v_n = e.sqrt();
    let beta_vn = (awr * e / kt).sqrt();
    let (beta_vt_sq, mu_t) = sample_free_gas_target(beta_vn, rng);
    let v_t = (beta_vt_sq * kt / awr).sqrt();
    let phi_t = 2.0 * std::f64::consts::PI * rng.next_uniform();
    let u_t = dir.rotate_scatter(mu_t, phi_t);

    // Centre-of-mass frame.
    let v_cm = (dir * v_n + u_t * (awr * v_t)) * (1.0 / (awr + 1.0));
    let v_rel = dir * v_n - v_cm;
    let speed_cm = v_rel.norm();
    // Isotropic in CM.
    let u_out = Vec3::isotropic(rng.next_uniform(), rng.next_uniform());
    let v_out = u_out * speed_cm + v_cm;
    let e_out = v_out.dot(v_out).max(crate::E_FLOOR * 0.5);
    (e_out, v_out * (1.0 / e_out.sqrt()))
}

/// Elastic scattering off a free target at rest, isotropic in the centre
/// of mass: returns the lab-frame outgoing energy and scattering cosine.
#[inline]
pub fn elastic_kinematics(e: f64, awr: f64, mu_cm: f64) -> (f64, f64) {
    let a = awr;
    let denom = (a + 1.0) * (a + 1.0);
    let e_out = e * (a * a + 2.0 * a * mu_cm + 1.0) / denom;
    let mu_lab = (a * mu_cm + 1.0) / (a * a + 2.0 * a * mu_cm + 1.0).sqrt();
    (e_out, mu_lab.clamp(-1.0, 1.0))
}

/// Discrete-level inelastic scattering: two-body kinematics with an
/// excitation energy `Q` left in the target, isotropic in the centre of
/// mass. Returns the lab outgoing energy and scattering cosine. Requires
/// `e > Q·(A+1)/A` (the threshold).
#[inline]
pub fn inelastic_kinematics(e: f64, awr: f64, q: f64, mu_cm: f64) -> (f64, f64) {
    let a = awr;
    // Fraction of the CM speed retained after exciting the level.
    let g = (1.0 - q * (a + 1.0) / (a * e)).max(0.0).sqrt();
    let denom = (a + 1.0) * (a + 1.0);
    let e_out = e * (1.0 + a * a * g * g + 2.0 * a * g * mu_cm) / denom;
    let mu_lab = (1.0 + a * g * mu_cm) / (1.0 + a * a * g * g + 2.0 * a * g * mu_cm).sqrt();
    (e_out.max(crate::E_FLOOR * 0.5), mu_lab.clamp(-1.0, 1.0))
}

/// What happened at a collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollisionOutcome {
    /// Particle absorbed (captured or caused fission); it is dead.
    Absorbed {
        /// True if the absorption was a fission.
        fission: bool,
    },
    /// Particle scattered; energy and direction were updated in place.
    Scattered,
}

/// Resolve a collision. Updates `energy`/`dir` on scatter and `weight`
/// under survival biasing; pushes fission sites (tagged `parent`/starting
/// at `*seq`).
#[allow(clippy::too_many_arguments)]
pub fn collide(
    ctx: &XsContext,
    mat: &Material,
    phys: &Physics,
    slots: &MaterialSlots,
    pos: Vec3,
    dir: &mut Vec3,
    energy: &mut f64,
    weight: &mut f64,
    treatment: AbsorptionTreatment,
    xs: &MacroXs,
    rng: &mut Lcg63,
    parent: u32,
    seq: &mut u32,
    sites: &mut Vec<Site>,
) -> CollisionOutcome {
    if let AbsorptionTreatment::SurvivalBiasing {
        weight_cutoff,
        survival_weight,
    } = treatment
    {
        // Fission sites banked in expectation at EVERY collision
        // (collision-estimator production), weight-1 sites.
        let expected = *weight * xs.nu_fission / xs.total;
        let n_sites = (expected + rng.next_uniform()).floor() as u32;
        for _ in 0..n_sites {
            let e_fis = sample_watt(rng, WATT_A, WATT_B);
            sites.push(Site {
                pos,
                energy: e_fis,
                parent,
                seq: *seq,
            });
            *seq += 1;
        }
        // Implicit capture.
        *weight *= 1.0 - xs.absorption / xs.total;
        // Always scatter.
        scatter(ctx, mat, phys, slots, dir, energy, xs, rng);
        // Russian roulette.
        if *weight < weight_cutoff {
            if rng.next_uniform() < *weight / survival_weight {
                *weight = survival_weight;
            } else {
                return CollisionOutcome::Absorbed { fission: false };
            }
        }
        return CollisionOutcome::Scattered;
    }

    // Analog game. Absorption test: ξ Σ_t < Σ_a  (the paper's §II-A2
    // criterion, at the macroscopic level).
    let xi_abs = rng.next_uniform();
    if xi_abs * xs.total < xs.absorption {
        // Fission test: ξ Σ_a < Σ_f.
        let xi_fis = rng.next_uniform();
        if xi_fis * xs.absorption < xs.fission {
            // ν at this energy/material from the production ratio.
            let nu = if xs.fission > 0.0 {
                xs.nu_fission / xs.fission
            } else {
                0.0
            };
            let n_sites = (nu + rng.next_uniform()).floor() as u32;
            for _ in 0..n_sites {
                let e_fis = sample_watt(rng, WATT_A, WATT_B);
                sites.push(Site {
                    pos,
                    energy: e_fis,
                    parent,
                    seq: *seq,
                });
                *seq += 1;
            }
            return CollisionOutcome::Absorbed { fission: true };
        }
        return CollisionOutcome::Absorbed { fission: false };
    }

    scatter(ctx, mat, phys, slots, dir, energy, xs, rng);
    CollisionOutcome::Scattered
}

/// The shared scattering step: select the target nuclide ∝ N_j σ_s,j(E)
/// (with the S(α,β) enhancement folded in so the walk is consistent with
/// Σ_s), then outgoing kinematics.
#[allow(clippy::too_many_arguments)]
fn scatter(
    ctx: &XsContext,
    mat: &Material,
    phys: &Physics,
    slots: &MaterialSlots,
    dir: &mut Vec3,
    energy: &mut f64,
    xs: &MacroXs,
    rng: &mut Lcg63,
) {
    // Walk over the total scattering (elastic + inelastic) of each
    // nuclide, remembering each one's inelastic share so the channel can
    // be chosen afterwards without a second walk.
    let xi_nuc = rng.next_uniform();
    let target = xi_nuc * (xs.elastic + xs.inelastic);
    let ix = ctx.indexer(e_clamped(*energy));
    let mut cum = 0.0;
    let mut chosen = mat.nuclides.len() - 1;
    let mut chosen_inelastic_frac = 0.0;
    for (j, (k, density)) in mat.iter().enumerate() {
        let micro = ctx
            .lib()
            .nuclide(k)
            .micro_at_index(ix.index(k as usize) as usize, *energy);
        let mut sig_s = density * micro.elastic;
        if let (Some(sab), Some(sj)) = (&phys.sab, slots.sab) {
            if sj as usize == j && sab.table.in_range(*energy) {
                sig_s *= sab.table.elastic_factor(*energy, sab.temperature);
            }
        }
        let sig_i = density * micro.inelastic;
        cum += sig_s + sig_i;
        if target < cum {
            chosen = j;
            chosen_inelastic_frac = if sig_s + sig_i > 0.0 {
                sig_i / (sig_s + sig_i)
            } else {
                0.0
            };
            break;
        }
    }

    let k = mat.nuclides[chosen];

    // Channel choice within the chosen nuclide.
    if chosen_inelastic_frac > 0.0 && rng.next_uniform() < chosen_inelastic_frac {
        let nuc = ctx.lib().nuclide(k);
        let mu_cm = 2.0 * rng.next_uniform() - 1.0;
        let (e_out, mu_lab) = inelastic_kinematics(*energy, nuc.awr, nuc.q_inelastic, mu_cm);
        let phi = 2.0 * std::f64::consts::PI * rng.next_uniform();
        *dir = dir.rotate_scatter(mu_lab, phi);
        *energy = e_out;
        return;
    }

    let use_sab = matches!((&phys.sab, slots.sab), (Some(sab), Some(sj))
        if sj as usize == chosen && sab.table.in_range(*energy) && *energy < SAB_CUTOFF);

    if use_sab {
        let sab = phys.sab.as_ref().unwrap();
        let xi1 = rng.next_uniform();
        let xi2 = rng.next_uniform();
        let (e_out, mu) = sab.table.sample_outgoing(*energy, xi1, xi2);
        let xi_phi = rng.next_uniform();
        let phi = 2.0 * std::f64::consts::PI * xi_phi;
        *dir = dir.rotate_scatter(mu, phi);
        *energy = e_out.max(crate::E_FLOOR);
    } else {
        let awr = ctx.lib().nuclide(k).awr;
        let kt = phys.kt_mev();
        if phys.free_gas && *energy < 400.0 * kt {
            let (e_out, d_out) = free_gas_scatter(*energy, *dir, awr, kt, rng);
            *dir = d_out;
            *energy = e_out.max(crate::E_FLOOR);
        } else {
            let mu_cm = 2.0 * rng.next_uniform() - 1.0;
            let (e_out, mu_lab) = elastic_kinematics(*energy, awr, mu_cm);
            let phi = 2.0 * std::f64::consts::PI * rng.next_uniform();
            *dir = dir.rotate_scatter(mu_lab, phi);
            *energy = e_out;
        }
    }
}

#[inline]
fn e_clamped(e: f64) -> f64 {
    e.clamp(mcs_xs::E_MIN, mcs_xs::E_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_spectrum_mean_is_about_2mev() {
        let mut rng = Lcg63::new(1);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += sample_watt(&mut rng, WATT_A, WATT_B);
        }
        let mean = sum / n as f64;
        // Analytic mean: a(3/2 + a·b/4) ≈ 2.031 MeV.
        let expect = WATT_A * (1.5 + WATT_A * WATT_B / 4.0);
        assert!((mean - expect).abs() / expect < 0.02, "mean = {mean}");
    }

    #[test]
    fn watt_samples_are_positive_and_bounded() {
        let mut rng = Lcg63::new(2);
        for _ in 0..10_000 {
            let e = sample_watt(&mut rng, WATT_A, WATT_B);
            assert!(e > 0.0 && e < 50.0);
        }
    }

    #[test]
    fn elastic_kinematics_limits() {
        // Head-on off hydrogen (A≈1): neutron stops (E→0), grazing keeps E.
        let (e_back, _) = elastic_kinematics(1.0, 1.0, -1.0);
        assert!(e_back < 1e-12);
        let (e_fwd, mu_fwd) = elastic_kinematics(1.0, 1.0, 1.0);
        assert!((e_fwd - 1.0).abs() < 1e-12);
        assert!((mu_fwd - 1.0).abs() < 1e-12);
        // Heavy target: energy loss is tiny even backscattering.
        let (e_b, _) = elastic_kinematics(1.0, 238.0, -1.0);
        assert!(e_b > 0.98);
    }

    #[test]
    fn elastic_energy_in_valid_range_for_random_mu() {
        let mut rng = Lcg63::new(3);
        for _ in 0..1000 {
            let mu = 2.0 * rng.next_uniform() - 1.0;
            let awr = 0.999 + 200.0 * rng.next_uniform();
            let (e_out, mu_lab) = elastic_kinematics(2.0, awr, mu);
            let alpha = ((awr - 1.0) / (awr + 1.0)).powi(2);
            assert!(e_out >= 2.0 * alpha - 1e-12 && e_out <= 2.0 + 1e-12);
            assert!((-1.0..=1.0).contains(&mu_lab));
        }
    }

    #[test]
    fn inelastic_kinematics_reduces_to_elastic_at_q_zero() {
        for &(e, awr, mu) in &[(1.0, 236.0, 0.3), (0.5, 12.0, -0.7), (2.0, 56.0, 0.9)] {
            let (ee, me) = elastic_kinematics(e, awr, mu);
            let (ei, mi) = inelastic_kinematics(e, awr, 0.0, mu);
            assert!((ee - ei).abs() < 1e-12 * ee);
            assert!((me - mi).abs() < 1e-12);
        }
    }

    #[test]
    fn inelastic_kinematics_removes_at_least_q() {
        // Lab energy loss is at least ~Q (up to recoil corrections).
        let awr = 236.0;
        let q = 0.045;
        let e = 1.0;
        let mut rng = Lcg63::new(9);
        for _ in 0..2_000 {
            let mu = 2.0 * rng.next_uniform() - 1.0;
            let (e_out, mu_lab) = inelastic_kinematics(e, awr, q, mu);
            assert!(e_out < e - 0.9 * q, "e_out {e_out}");
            assert!(e_out > 0.0);
            assert!((-1.0..=1.0).contains(&mu_lab));
        }
    }

    #[test]
    fn inelastic_near_threshold_drops_to_cm_energy() {
        // Exactly at threshold the outgoing CM speed is 0: the neutron
        // exits with the CM kinetic energy E/(A+1)². (The approach is
        // slow — A·g must be ≪ 1 — so probe within a part per billion.)
        let awr = 236.0;
        let q = 0.045;
        let thr = q * (awr + 1.0) / awr;
        let e = thr * (1.0 + 1e-9);
        let (e_out, _) = inelastic_kinematics(e, awr, q, 0.0);
        let e_cm = e / ((awr + 1.0) * (awr + 1.0));
        assert!((e_out - e_cm).abs() < 0.05 * e_cm, "{e_out} vs {e_cm}");
    }

    #[test]
    fn free_gas_reduces_to_target_at_rest_at_high_energy() {
        // E ≫ kT: the moving-target kinematics converge to the
        // target-at-rest result statistically. For isotropic CM elastic,
        // mean E_out/E = (1 + α)/2 with α = ((A−1)/(A+1))².
        let mut rng = Lcg63::new(4);
        let awr = 11.9; // carbon-ish
        let e = 1.0; // MeV, vs kT = 2.5e-8
        let kt = 2.53e-8;
        let n = 20_000;
        let mut sum = 0.0;
        let dir = Vec3::new(0.0, 0.0, 1.0);
        for _ in 0..n {
            let (e_out, d_out) = free_gas_scatter(e, dir, awr, kt, &mut rng);
            assert!((d_out.norm() - 1.0).abs() < 1e-9);
            sum += e_out / e;
        }
        let mean = sum / n as f64;
        let alpha = ((awr - 1.0) / (awr + 1.0)).powi(2);
        let expect = (1.0 + alpha) / 2.0;
        assert!((mean - expect).abs() < 0.01, "mean {mean} vs {expect}");
    }

    #[test]
    fn free_gas_produces_upscatter_at_thermal() {
        // At E = kT/2, collisions with the hot Maxwellian gas frequently
        // INCREASE the neutron energy — impossible with a target at rest.
        let mut rng = Lcg63::new(5);
        let kt = 2.53e-8;
        let e = 0.5 * kt;
        let dir = Vec3::new(1.0, 0.0, 0.0);
        let mut up = 0;
        let n = 5_000;
        for _ in 0..n {
            let (e_out, _) = free_gas_scatter(e, dir, 0.9992, kt, &mut rng);
            if e_out > e {
                up += 1;
            }
        }
        let frac = up as f64 / n as f64;
        assert!(frac > 0.3, "upscatter fraction {frac}");
    }

    #[test]
    fn free_gas_thermalizes_to_maxwellian_scale() {
        // Repeated scattering off hydrogen gas drives any starting energy
        // toward the thermal equilibrium (mean neutron energy ~ 2kT for
        // the collision-sampled population; assert the loose window).
        let mut rng = Lcg63::new(6);
        let kt = 2.53e-8;
        let mut energies = Vec::new();
        for start_exp in [-3.0f64, -7.0, -9.0] {
            let mut e = 10f64.powf(start_exp);
            let mut dir = Vec3::new(1.0, 0.0, 0.0);
            for _ in 0..200 {
                let (e2, d2) = free_gas_scatter(e, dir, 0.9992, kt, &mut rng);
                e = e2;
                dir = d2;
            }
            // Sample the equilibrated walk.
            for _ in 0..300 {
                let (e2, d2) = free_gas_scatter(e, dir, 0.9992, kt, &mut rng);
                e = e2;
                dir = d2;
                energies.push(e);
            }
        }
        let mean = energies.iter().sum::<f64>() / energies.len() as f64;
        assert!(
            (0.8 * kt..4.0 * kt).contains(&mean),
            "equilibrium mean {mean:e} vs kT {kt:e}"
        );
    }

    #[test]
    fn target_sampler_acceptance_terminates_and_is_positive() {
        let mut rng = Lcg63::new(7);
        for &beta in &[1e-3, 0.5, 2.0, 30.0] {
            for _ in 0..200 {
                let (b2, mu) = sample_free_gas_target(beta, &mut rng);
                assert!(b2 >= 0.0 && b2.is_finite());
                assert!((-1.0..=1.0).contains(&mu));
            }
        }
    }

    #[test]
    fn material_slots_find_positions() {
        let mat = Material::new("m", &[(5, 1.0), (9, 2.0), (11, 3.0)]);
        let phys = Physics {
            sab: Some(SabPhysics {
                nuclide: 9,
                table: SabTable::synthesize(1),
                temperature: 293.6,
            }),
            urr: vec![
                UrrPhysics {
                    nuclide: 11,
                    table: UrrTable::synthesize(1, 4),
                },
                UrrPhysics {
                    nuclide: 77,
                    table: UrrTable::synthesize(2, 4),
                },
            ],
            ..Physics::default()
        };
        let slots = MaterialSlots::build(&mat, &phys);
        assert_eq!(slots.sab, Some(1));
        assert_eq!(slots.urr, vec![Some(2), None]);
    }
}
