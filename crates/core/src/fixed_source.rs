//! Fixed-source transport mode.
//!
//! The second of OpenMC's two run modes: instead of iterating on the
//! fission source, an *external* source emits particles and every history
//! is followed to completion **including its fission progeny** (the
//! subcritical multiplication chain). Requires k_eff < 1, or chains never
//! die; the runner enforces a chain-length cap and reports if it trips.
//!
//! The interesting physics output is the net multiplication
//! `M = (source + fission neutrons) / source`, which for a point value of
//! k approaches `1/(1 − k)` — asserted against the eigenvalue solver's k
//! in the tests.

use mcs_geom::Vec3;
use mcs_rng::Lcg63;
use rayon::prelude::*;

use crate::history::{transport_particle_full, CHUNK};
use crate::particle::{Particle, Site, SourceSite};
use crate::problem::Problem;
use crate::spectrum::SpectrumTally;
use crate::tally::Tallies;

/// An external source definition.
#[derive(Debug, Clone)]
pub enum SourceDef {
    /// Monoenergetic isotropic point source.
    Point {
        /// Emission point.
        pos: Vec3,
        /// Emission energy (MeV).
        energy: f64,
    },
    /// Watt-spectrum source uniform over the problem's fuel regions (the
    /// same sampler the eigenvalue mode starts from).
    FuelWatt,
}

/// Settings for a fixed-source run.
#[derive(Debug, Clone)]
pub struct FixedSourceSettings {
    /// Source particles to emit.
    pub particles: usize,
    /// The source.
    pub source: SourceDef,
    /// Cap on fission generations followed per source particle
    /// (trips only if the system is critical or worse).
    pub max_chain: usize,
}

/// Result of a fixed-source run.
#[derive(Debug, Clone)]
pub struct FixedSourceResult {
    /// Tallies over all histories (source + progeny).
    pub tallies: Tallies,
    /// Source particles emitted.
    pub source_particles: u64,
    /// Fission neutrons born in the chains.
    pub progeny: u64,
    /// Histories whose chains hit the generation cap.
    pub truncated_chains: u64,
    /// Energy spectrum of neutrons escaping the geometry (the shielding
    /// observable).
    pub leak_spectrum: SpectrumTally,
}

impl FixedSourceResult {
    /// Net neutron multiplication `M = (source + progeny) / source`.
    pub fn multiplication(&self) -> f64 {
        (self.source_particles + self.progeny) as f64 / self.source_particles.max(1) as f64
    }
}

fn emit(problem: &Problem, def: &SourceDef, index: usize, n: usize) -> SourceSite {
    match def {
        SourceDef::Point { pos, energy } => SourceSite {
            pos: *pos,
            energy: *energy,
        },
        SourceDef::FuelWatt => {
            // Deterministic: sample the whole batch once per call site.
            // (The runner pre-samples; this arm is unreachable there.)
            problem.sample_initial_source(n, 0xF1ED)[index]
        }
    }
}

/// The fixed-source chain runner ([`crate::engine`]'s fixed-source
/// dispatch target; thread-local policies wrap it in their pool).
pub(crate) fn run_fixed_source_impl(
    problem: &Problem,
    settings: &FixedSourceSettings,
) -> FixedSourceResult {
    let n = settings.particles;
    // Pre-sample fuel-Watt sources once (deterministic); point sources
    // are trivially per-index.
    let presampled = match settings.source {
        SourceDef::FuelWatt => Some(problem.sample_initial_source(n, 0xF1ED)),
        _ => None,
    };

    let partials: Vec<(Tallies, u64, u64, SpectrumTally)> = (0..n)
        .collect::<Vec<_>>()
        .par_chunks(CHUNK)
        .map(|chunk| {
            let mut tallies = Tallies::default();
            let mut progeny = 0u64;
            let mut truncated = 0u64;
            let mut leak_spectrum = SpectrumTally::standard();
            for &i in chunk {
                let site = match &presampled {
                    Some(v) => v[i],
                    None => emit(problem, &settings.source, i, n),
                };
                // Source particle stream = global index; progeny use
                // sub-streams derived from (index, birth order).
                let rng =
                    Lcg63::for_history(problem.seed ^ 0xF15D, i as u64, mcs_rng::STREAM_STRIDE);
                let mut stack: Vec<(SourceSite, u32)> = vec![(site, 0)];
                let mut born = 0u32;
                let mut generations = 0usize;
                while let Some((s, gen)) = stack.pop() {
                    if gen as usize >= settings.max_chain {
                        truncated += 1;
                        continue;
                    }
                    generations = generations.max(gen as usize);
                    // Each chain member gets a distinct sub-stream.
                    let member_rng = rng.skipped(born as u64 * 211);
                    born += 1;
                    let mut p = Particle::born(s, i as u32, member_rng);
                    let mut sites: Vec<Site> = Vec::new();
                    transport_particle_full(
                        problem,
                        &mut p,
                        &mut tallies,
                        &mut sites,
                        None,
                        None,
                        None,
                        Some(&mut leak_spectrum),
                    );
                    progeny += sites.len() as u64;
                    for site in sites {
                        stack.push((
                            SourceSite {
                                pos: site.pos,
                                energy: site.energy,
                            },
                            gen + 1,
                        ));
                    }
                }
                let _ = generations;
            }
            (tallies, progeny, truncated, leak_spectrum)
        })
        .collect();

    let mut tallies = Tallies::default();
    let mut progeny = 0;
    let mut truncated = 0;
    let mut leak_spectrum = SpectrumTally::standard();
    for (t, p, tr, ls) in partials {
        tallies.merge(&t);
        progeny += p;
        truncated += tr;
        leak_spectrum.merge(&ls);
    }
    FixedSourceResult {
        tallies,
        source_particles: n as u64,
        progeny,
        truncated_chains: truncated,
        leak_spectrum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, RunPlan, Threaded};
    use crate::problem::Problem;

    fn settings(n: usize) -> FixedSourceSettings {
        FixedSourceSettings {
            particles: n,
            source: SourceDef::FuelWatt,
            max_chain: 10_000,
        }
    }

    #[test]
    fn fixed_source_is_deterministic() {
        let problem = Problem::test_small();
        let a = run_fixed_source_impl(&problem, &settings(300));
        let b = run_fixed_source_impl(&problem, &settings(300));
        assert_eq!(a.tallies, b.tallies);
        assert_eq!(a.progeny, b.progeny);
    }

    #[test]
    fn fixed_source_is_grid_backend_invariant() {
        // Every grid backend resolves the same lower-bound index, so the
        // full subcritical fission chains — source sampling, transport,
        // progeny, and the leak spectrum — must be bitwise identical.
        use crate::problem::GridBackendKind;
        let reference = run_fixed_source_impl(&Problem::test_small(), &settings(300));
        for kind in GridBackendKind::ALL {
            let problem = Problem::test_small_with_backend(kind);
            let r = run_fixed_source_impl(&problem, &settings(300));
            assert_eq!(r.tallies, reference.tallies, "backend {}", kind.name());
            assert_eq!(r.progeny, reference.progeny, "backend {}", kind.name());
            assert_eq!(r.truncated_chains, reference.truncated_chains);
            assert_eq!(
                r.leak_spectrum,
                reference.leak_spectrum,
                "leak spectrum diverged under backend {}",
                kind.name()
            );
        }
    }

    #[test]
    fn multiplication_matches_generation_resolved_k() {
        // The subcritical multiplication identity, generation-resolved:
        // the fixed-source chains start from the SAME flat fuel source
        // the eigenvalue iteration starts from, so
        //   M = 1 + k₀ + k₀k₁ + k₀k₁k₂ + ...
        // with k_g the eigenvalue run's per-batch (per-generation) k's,
        // extended with the converged k for the tail. This is tighter
        // than 1/(1−k_mode), which ignores source-shape convergence.
        let problem = Problem::test_small();
        let fixed = run_fixed_source_impl(&problem, &settings(3_000));
        assert_eq!(fixed.truncated_chains, 0, "subcritical chains must die");
        let m = fixed.multiplication();

        let plan = RunPlan {
            particles: 3_000,
            inactive: 4,
            active: 6,
            entropy_mesh: (4, 4, 4),
            ..RunPlan::default()
        };
        let eig = engine::run_with_problem(&problem, &plan, &mut Threaded::ambient())
            .into_eigenvalue()
            .result;
        let ks: Vec<f64> = eig.batches.iter().map(|b| b.k_track).collect();
        let k_mode = eig.k_mean;
        assert!(k_mode < 0.95, "identity needs a clearly subcritical system");
        let mut m_expected = 1.0;
        let mut chain = 1.0;
        for &k in &ks {
            chain *= k;
            m_expected += chain;
        }
        // Geometric tail at the converged k.
        m_expected += chain * k_mode / (1.0 - k_mode);
        assert!(
            (m / m_expected - 1.0).abs() < 0.15,
            "M = {m:.3} vs generation-resolved prediction {m_expected:.3} (k_mode = {k_mode:.4})"
        );
    }

    #[test]
    fn leak_spectrum_counts_every_leak_and_is_fast_dominated() {
        // The leak spectrum must integrate to the leak count, and a small
        // water-moderated assembly leaks across the whole range: a strong
        // fast component (uncollided fission neutrons) plus a small
        // thermal component (moderated escapees; most thermal neutrons
        // are absorbed before reaching the boundary).
        let problem = Problem::test_small();
        let r = run_fixed_source_impl(&problem, &settings(1_000));
        let total: f64 = r.leak_spectrum.total();
        assert!((total - r.tallies.leaks as f64).abs() < 1e-9);
        let in_range = |lo: f64, hi: f64| -> f64 {
            r.leak_spectrum
                .bin_centers()
                .iter()
                .zip(&r.leak_spectrum.bins)
                .filter(|(&c, _)| c >= lo && c < hi)
                .map(|(_, &b)| b)
                .sum()
        };
        let fast = in_range(0.1, 20.0);
        let thermal = in_range(1e-11, 1e-6);
        assert!(fast > 0.2 * total, "fast fraction {}", fast / total);
        assert!(
            thermal > 0.02 * total,
            "thermal fraction {}",
            thermal / total
        );
    }

    #[test]
    fn point_source_emits_from_the_point() {
        let problem = Problem::test_small();
        let s = FixedSourceSettings {
            particles: 200,
            source: SourceDef::Point {
                pos: Vec3::new(0.63, 0.63, 0.0), // inside a fuel pin
                energy: 2.0,
            },
            max_chain: 10_000,
        };
        let r = run_fixed_source_impl(&problem, &s);
        assert_eq!(r.tallies.n_particles, (200 + r.progeny) as u64);
        assert!(r.tallies.collisions > 0);
        assert_eq!(
            r.tallies.absorptions + r.tallies.leaks,
            r.tallies.n_particles
        );
    }

    #[test]
    fn chain_cap_reports_truncation() {
        // With a cap of 0 generations, every source particle's chain is
        // cut before it even starts.
        let problem = Problem::test_small();
        let mut s = settings(50);
        s.max_chain = 0;
        let r = run_fixed_source_impl(&problem, &s);
        assert_eq!(r.truncated_chains, 50);
        assert_eq!(r.tallies.n_particles, 0);
    }
}
