//! Particle state: AoS form for history transport, SoA bank for event
//! transport.

use mcs_geom::Vec3;
use mcs_rng::Lcg63;

/// A source site: where and with what energy a particle is born.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceSite {
    /// Birth position.
    pub pos: Vec3,
    /// Birth energy (MeV).
    pub energy: f64,
}

/// A fission site banked during transport, tagged for deterministic
/// ordering (the event loop discovers sites in stage order; sorting by
/// `(parent, seq)` restores the history loop's ordering exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Site {
    /// Position of the fission event.
    pub pos: Vec3,
    /// Energy of the banked fission neutron (already sampled from the
    /// Watt spectrum).
    pub energy: f64,
    /// Index of the parent particle within its batch.
    pub parent: u32,
    /// Birth order within the parent's history.
    pub seq: u32,
}

/// Canonical ordering for site banks (parent, then sequence).
pub fn sort_sites(sites: &mut [Site]) {
    sites.sort_by_key(|s| (s.parent, s.seq));
}

/// Full per-particle state for the history algorithm (array-of-structs,
/// the layout OpenMC uses).
#[derive(Debug, Clone)]
pub struct Particle {
    /// Current position.
    pub pos: Vec3,
    /// Unit flight direction.
    pub dir: Vec3,
    /// Kinetic energy (MeV).
    pub energy: f64,
    /// Statistical weight (1.0 analog; reduced by implicit capture under
    /// survival biasing).
    pub weight: f64,
    /// Dedicated RNG stream.
    pub rng: Lcg63,
    /// Batch-local index (for site tagging).
    pub index: u32,
    /// Number of fission sites this particle has banked.
    pub sites_banked: u32,
}

impl Particle {
    /// Born from a source site with a dedicated stream; direction is the
    /// stream's first two draws.
    pub fn born(site: SourceSite, index: u32, mut rng: Lcg63) -> Self {
        let dir = Vec3::isotropic(rng.next_uniform(), rng.next_uniform());
        Self {
            pos: site.pos,
            dir,
            energy: site.energy,
            weight: 1.0,
            rng,
            index,
            sites_banked: 0,
        }
    }
}

/// Struct-of-arrays particle bank for the event algorithm.
///
/// Positions/directions/energies live in parallel flat arrays so the
/// staged kernels stream through them; `alive` holds the indices of
/// not-yet-terminated particles and is compacted after every event
/// generation.
#[derive(Debug, Clone, Default)]
pub struct ParticleBank {
    /// x positions.
    pub x: Vec<f64>,
    /// y positions.
    pub y: Vec<f64>,
    /// z positions.
    pub z: Vec<f64>,
    /// Direction x components.
    pub u: Vec<f64>,
    /// Direction y components.
    pub v: Vec<f64>,
    /// Direction z components.
    pub w: Vec<f64>,
    /// Energies (MeV).
    pub energy: Vec<f64>,
    /// Statistical weights.
    pub weight: Vec<f64>,
    /// Per-particle RNG streams.
    pub rng: Vec<Lcg63>,
    /// Current material (refreshed by the locate stage).
    pub material: Vec<u32>,
    /// Sites banked per particle (sequence counter).
    pub sites_banked: Vec<u32>,
    /// Indices of live particles.
    pub alive: Vec<u32>,
}

impl ParticleBank {
    /// Build a bank from source sites; particle `i` gets stream
    /// `streams[i]` and its direction from that stream's first two draws
    /// (identical to [`Particle::born`]).
    pub fn from_sources(sites: &[SourceSite], streams: &[Lcg63]) -> Self {
        assert_eq!(sites.len(), streams.len());
        let n = sites.len();
        let mut bank = Self {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            u: Vec::with_capacity(n),
            v: Vec::with_capacity(n),
            w: Vec::with_capacity(n),
            energy: Vec::with_capacity(n),
            weight: vec![1.0; n],
            rng: Vec::with_capacity(n),
            material: vec![u32::MAX; n],
            sites_banked: vec![0; n],
            alive: (0..n as u32).collect(),
        };
        for (s, &stream) in sites.iter().zip(streams) {
            let mut rng = stream;
            let dir = Vec3::isotropic(rng.next_uniform(), rng.next_uniform());
            bank.x.push(s.pos.x);
            bank.y.push(s.pos.y);
            bank.z.push(s.pos.z);
            bank.u.push(dir.x);
            bank.v.push(dir.y);
            bank.w.push(dir.z);
            bank.energy.push(s.energy);
            bank.rng.push(rng);
        }
        bank
    }

    /// Total particles (live + dead).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.x.len()
    }

    /// Live particle count.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.alive.len()
    }

    /// Position of particle `i`.
    #[inline]
    pub fn pos(&self, i: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    /// Direction of particle `i`.
    #[inline]
    pub fn dir(&self, i: usize) -> Vec3 {
        Vec3::new(self.u[i], self.v[i], self.w[i])
    }

    /// Set position of particle `i`.
    #[inline]
    pub fn set_pos(&mut self, i: usize, p: Vec3) {
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.z[i] = p.z;
    }

    /// Set direction of particle `i`.
    #[inline]
    pub fn set_dir(&mut self, i: usize, d: Vec3) {
        self.u[i] = d.x;
        self.v[i] = d.y;
        self.w[i] = d.z;
    }

    /// Remove the given (sorted, deduplicated) live-list positions from
    /// the alive list, preserving the order of the survivors. `dead_slots`
    /// are positions *within* `alive`, not particle indices.
    ///
    /// Compaction is a single in-place forward scan that slides survivors
    /// left over the holes, so it allocates nothing and the live list
    /// stays sorted whenever it started sorted.
    pub fn compact(&mut self, dead_slots: &[usize]) {
        if dead_slots.is_empty() {
            return;
        }
        let mut write = dead_slots[0];
        let mut d = 1usize;
        for read in write + 1..self.alive.len() {
            if d < dead_slots.len() && dead_slots[d] == read {
                d += 1;
            } else {
                self.alive[write] = self.alive[read];
                write += 1;
            }
        }
        self.alive.truncate(write);
    }

    /// Drop live-list entries whose particle is flagged in `dead`
    /// (indexed by particle, not by live-list position), preserving
    /// order — the event pipeline's compaction stage. Same in-place
    /// swap-scan as [`ParticleBank::compact`]: no allocation, and a
    /// sorted live list stays sorted.
    pub fn retain_alive(&mut self, dead: &[bool]) {
        let mut write = 0usize;
        for read in 0..self.alive.len() {
            let idx = self.alive[read];
            if !dead[idx as usize] {
                if write != read {
                    self.alive[write] = idx;
                }
                write += 1;
            }
        }
        self.alive.truncate(write);
    }

    /// Approximate in-memory size of the per-particle state in bytes
    /// (used by the PCIe transfer model for Table II): position (3×8),
    /// direction (3×8), energy (8), RNG state (8), material (4),
    /// bookkeeping (8).
    pub fn bytes_per_particle() -> usize {
        3 * 8 + 3 * 8 + 8 + 8 + 4 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(n: usize) -> (Vec<SourceSite>, Vec<Lcg63>) {
        let sites: Vec<SourceSite> = (0..n)
            .map(|i| SourceSite {
                pos: Vec3::new(i as f64, 0.0, 0.0),
                energy: 1.0 + i as f64,
            })
            .collect();
        let streams: Vec<Lcg63> = (0..n)
            .map(|i| Lcg63::for_history(7, i as u64, 101))
            .collect();
        (sites, streams)
    }

    #[test]
    fn bank_birth_matches_particle_birth() {
        let (sites, streams) = sources(5);
        let bank = ParticleBank::from_sources(&sites, &streams);
        for i in 0..5 {
            let p = Particle::born(sites[i], i as u32, streams[i]);
            assert_eq!(bank.pos(i), p.pos);
            assert_eq!(bank.dir(i), p.dir);
            assert_eq!(bank.energy[i], p.energy);
            assert_eq!(bank.rng[i], p.rng);
        }
    }

    #[test]
    fn compact_removes_listed_slots() {
        let (sites, streams) = sources(6);
        let mut bank = ParticleBank::from_sources(&sites, &streams);
        bank.compact(&[1, 4]); // remove particles 1 and 4
        assert_eq!(bank.alive, vec![0, 2, 3, 5]);
        bank.compact(&[0, 3]); // remove particles 0 and 5
        assert_eq!(bank.alive, vec![2, 3]);
        bank.compact(&[]);
        assert_eq!(bank.alive, vec![2, 3]);
    }

    #[test]
    fn compact_is_in_place_and_order_stable() {
        let (sites, streams) = sources(64);
        let mut bank = ParticleBank::from_sources(&sites, &streams);
        let ptr_before = bank.alive.as_ptr();
        let cap_before = bank.alive.capacity();
        bank.compact(&(0..64).step_by(3).collect::<Vec<_>>());
        assert_eq!(bank.alive.as_ptr(), ptr_before, "compact reallocated");
        assert_eq!(bank.alive.capacity(), cap_before);
        // Survivors keep ascending order.
        assert!(bank.alive.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn retain_alive_matches_compact() {
        let (sites, streams) = sources(40);
        let mut by_slots = ParticleBank::from_sources(&sites, &streams);
        let mut by_flags = ParticleBank::from_sources(&sites, &streams);
        let mut dead = vec![false; 40];
        // Kill a scattered set, in two rounds (as the event loop does).
        for round in 0..2 {
            let doomed: Vec<u32> = by_slots
                .alive
                .iter()
                .copied()
                .filter(|&i| (i as usize + round) % 3 == 0)
                .collect();
            let slots: Vec<usize> = by_slots
                .alive
                .iter()
                .enumerate()
                .filter(|(_, i)| doomed.contains(i))
                .map(|(s, _)| s)
                .collect();
            by_slots.compact(&slots);
            for &i in &doomed {
                dead[i as usize] = true;
            }
            by_flags.retain_alive(&dead);
            assert_eq!(by_slots.alive, by_flags.alive, "round {round}");
        }
        assert!(!by_slots.alive.is_empty());
    }

    #[test]
    fn sort_sites_orders_by_parent_then_seq() {
        let mk = |parent, seq| Site {
            pos: Vec3::ZERO,
            energy: 1.0,
            parent,
            seq,
        };
        let mut v = vec![mk(2, 0), mk(0, 1), mk(0, 0), mk(1, 0)];
        sort_sites(&mut v);
        let order: Vec<_> = v.iter().map(|s| (s.parent, s.seq)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (2, 0)]);
    }

    #[test]
    fn directions_are_unit() {
        let (sites, streams) = sources(32);
        let bank = ParticleBank::from_sources(&sites, &streams);
        for i in 0..32 {
            assert!((bank.dir(i).norm() - 1.0).abs() < 1e-12);
        }
    }
}
