//! Event-based (banking) transport: the full implementation of the
//! algorithm the paper prototypes in micro-benchmarks and lists as future
//! work — here as a multithreaded, SIMD-batched stage pipeline.
//!
//! All live particles advance together, one *event generation* per
//! iteration, through staged kernels:
//!
//! 1. **Locate** — resolve each particle's cell (leaks terminate here).
//! 2. **XS lookup** — the bank is partitioned into per-material (and
//!    optionally per-log-E-bin) queues by [`crate::queueing`] and each
//!    queue is fed through the gather-indexed banked kernel
//!    ([`mcs_xs::XsContext::batch_macro_xs_simd_indexed`], Fig. 2's
//!    banked lookup with the inner loop over nuclides vectorized;
//!    energy-ordered queues take the warm-start variant).
//! 3. **Distance sampling** — `d = −ln ξ / Σ_t` across the bank (the
//!    Table I kernel): uniforms via the batched-stream fill in
//!    `mcs-rng`, the negate/divide 8-wide in [`F64x8`].
//! 4. **Boundary** — ray-trace each particle (divergent; the stage the
//!    paper notes resists vectorization).
//! 5. **Advance/Collide** — move to the nearer of boundary/collision and
//!    apply the shared collision physics.
//! 6. **Compact** — dead particles are squeezed out of the live list by
//!    an in-place, order-stable scan.
//!
//! Every stage runs in parallel over fixed [`CHUNK`]-sized chunks of the
//! live list, with the same chunk-order reduction the history loop uses,
//! so results are **bitwise identical for any thread count** (including
//! one: chunking, not threading, fixes every accumulation order). Because
//! every particle owns its RNG stream and the stages consume draws in the
//! same per-particle order as the history loop, the two algorithms also
//! produce *identical trajectories* — asserted by integration tests.
//!
//! Stage timing goes through `mcs-prof`: the driver opens one profiler
//! region per stage dispatch, and since stages are barrier-synchronized,
//! each region's inclusive time is that stage's wall time even when the
//! workers inside run concurrently.

use mcs_geom::{Vec3, BOUNDARY_EPS};
use mcs_prof::ThreadProfiler;
use mcs_rng::batch::lcg_fill_uniform;
use mcs_rng::Lcg63;
use mcs_simd::F64x8;
use mcs_xs::MacroXs;
use rayon::prelude::*;

use crate::history::{TransportOutcome, CHUNK};
use crate::mesh::{MeshSpec, MeshTally};
use crate::particle::{sort_sites, ParticleBank, Site, SourceSite};
use crate::physics::{apply_physics, collide, CollisionOutcome};
use crate::problem::Problem;
use crate::queueing::{build_queues, material_order, QueueBuffers, QueueingConfig};
use crate::tally::Tallies;
use crate::E_FLOOR;

/// Counters describing how the event loop executed (fed to the device
/// model for offload-time estimation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventStats {
    /// Event generations executed.
    pub iterations: u64,
    /// Total XS lookups performed (= total flight segments).
    pub lookups: u64,
    /// Peak live-bank size.
    pub peak_bank: u64,
    /// Measured wall time per stage, seconds:
    /// `[locate, xs_lookup, distance, boundary, collide, compact]`.
    pub stage_seconds: [f64; 6],
}

impl EventStats {
    /// Stage display names, aligned with `stage_seconds`.
    pub const STAGE_NAMES: [&'static str; 6] = [
        "locate",
        "xs_lookup",
        "sample_distance",
        "boundary",
        "advance_collide",
        "compact",
    ];

    /// Total measured stage time.
    pub fn total_seconds(&self) -> f64 {
        self.stage_seconds.iter().sum()
    }

    /// Fold another run's counters into this one: counts add, the peak
    /// is the max of peaks, stage timers add (used by the eigenvalue
    /// driver to aggregate over batches).
    pub fn merge(&mut self, other: &Self) {
        self.iterations += other.iterations;
        self.lookups += other.lookups;
        self.peak_bank = self.peak_bank.max(other.peak_bank);
        for (a, b) in self.stage_seconds.iter_mut().zip(&other.stage_seconds) {
            *a += b;
        }
    }
}

/// Shared view of a mutable slice for stages that scatter results to
/// disjoint particle indices from parallel chunk tasks.
///
/// Safety contract: concurrent tasks must touch disjoint indices. The
/// event driver guarantees this structurally — every task owns a disjoint
/// sub-slice of the live list (or of a material bucket), and live-list
/// entries are unique particle indices.
struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T: Copy> SyncSlice<'a, T> {
    fn new(s: &'a mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            _borrow: std::marker::PhantomData,
        }
    }

    /// Read element `i`. Caller must not race a write to `i`.
    #[inline(always)]
    unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Write element `i`. Caller must be the only task touching `i`.
    #[inline(always)]
    unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }
}

/// Raw pipeline output before the canonical float fold: integer tallies
/// and sorted sites in `out`, floats still in per-particle slots.
struct PipelineRaw {
    out: TransportOutcome,
    stats: EventStats,
    mesh: Option<MeshTally>,
    tl_pp: Vec<f64>,
    kt_pp: Vec<f64>,
    kc_pp: Vec<f64>,
    ka_pp: Vec<f64>,
}

/// The collapsed event batch driver ([`crate::engine`]'s event path):
/// run the staged pipeline and apply the canonical CHUNK=256 float fold.
pub(crate) fn event_transport_mesh_impl(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    mesh_spec: Option<MeshSpec>,
    queueing: &QueueingConfig,
) -> (TransportOutcome, EventStats, Option<MeshTally>) {
    let mut raw = event_pipeline(problem, sources, streams, mesh_spec, queueing);
    // Canonical float-tally reduction: each particle's slot already holds
    // its segment-ordered sum; folding CHUNK slots per partial and the
    // partials in order rebuilds the exact reduction tree the history
    // driver uses, so these four sums — and every k estimator derived
    // from them — are bit-identical to the history loop's, independent
    // of event-generation interleaving.
    let fold = |pp: &[f64]| {
        pp.chunks(CHUNK)
            .map(|c| c.iter().sum::<f64>())
            .fold(0.0, |acc, s| acc + s)
    };
    raw.out.tallies.track_length = fold(&raw.tl_pp);
    raw.out.tallies.k_track = fold(&raw.kt_pp);
    raw.out.tallies.k_collision = fold(&raw.kc_pp);
    raw.out.tallies.k_absorption = fold(&raw.ka_pp);
    (raw.out, raw.stats, raw.mesh)
}

/// The event bank transported into CHUNK=256 keyed partials, for the
/// distributed chunk-keyed all-reduce: chunk `k`'s float fields hold the
/// sum of per-particle slots `[k*CHUNK, (k+1)*CHUNK)` — exactly the
/// chunk partials of the serial fold — while every (associative) integer
/// tally rides in chunk 0. Folding the chunks in index order therefore
/// rebuilds the serial result bit for bit, and chunks from ranks whose
/// slices start at CHUNK-aligned offsets coincide with the serial run's
/// chunks. Sites come back sorted by (parent, seq), parents local to
/// this slice.
pub(crate) fn run_event_transport_chunked_impl(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    queueing: &QueueingConfig,
) -> (Vec<Tallies>, Vec<Site>, EventStats) {
    let raw = event_pipeline(problem, sources, streams, None, queueing);
    let n = sources.len();
    let n_chunks = n.div_ceil(CHUNK);
    let mut chunk_tallies = vec![Tallies::default(); n_chunks];
    if n_chunks > 0 {
        // `raw.out.tallies`' float fields are still zero here, so chunk 0
        // starts as pure integer totals.
        chunk_tallies[0] = raw.out.tallies;
        for (k, t) in chunk_tallies.iter_mut().enumerate() {
            let lo = k * CHUNK;
            let hi = ((k + 1) * CHUNK).min(n);
            t.track_length = raw.tl_pp[lo..hi].iter().sum::<f64>();
            t.k_track = raw.kt_pp[lo..hi].iter().sum::<f64>();
            t.k_collision = raw.kc_pp[lo..hi].iter().sum::<f64>();
            t.k_absorption = raw.ka_pp[lo..hi].iter().sum::<f64>();
        }
    }
    (chunk_tallies, raw.out.sites, raw.stats)
}

/// The staged pipeline proper: stages 1–6 over the live bank. Integer
/// tallies accumulate into `out.tallies` (chunk-order partial merges);
/// float tallies land in per-particle slots and are *not* folded here.
fn event_pipeline(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    mesh_spec: Option<MeshSpec>,
    queueing: &QueueingConfig,
) -> PipelineRaw {
    let mut mesh = mesh_spec.map(MeshTally::new);
    let mut bank = ParticleBank::from_sources(sources, streams);
    let n = bank.capacity();
    let mut out = TransportOutcome::default();
    out.tallies.n_particles = n as u64;
    let mut stats = EventStats::default();
    let prof = ThreadProfiler::new();
    // Lookup accounting comes from the instrumented context layer: the
    // stage-2 batch drivers bump `problem.xs`'s counter, and the delta
    // over this run is the pipeline's lookup count.
    let lookups0 = problem.xs.lookups();

    let mut xs_buf: Vec<MacroXs> = vec![MacroXs::default(); n];
    let mut d_coll = vec![0.0f64; n];
    let mut d_bound = vec![0.0f64; n];
    // Per-particle death flags, written by the locate and collide stages
    // and consumed by compaction. Never cleared: a flagged particle
    // leaves the live list at the next compaction and is never visited
    // again, so a stale `true` cannot be observed.
    let mut dead = vec![false; n];
    // Per-particle float-tally slots. A particle's contributions land in
    // its own slot in segment order — the same per-particle sums the
    // history loop forms — and the canonical fold after the pipeline
    // reproduces the history loop's reduction tree exactly, so the float
    // tallies (and k-eff) are bit-identical between the two algorithms.
    let mut tl_pp = vec![0.0f64; n];
    let mut kt_pp = vec![0.0f64; n];
    let mut kc_pp = vec![0.0f64; n];
    let mut ka_pp = vec![0.0f64; n];
    let mat_order = material_order(&problem.materials, queueing.fuel_split);
    let mut qbufs = QueueBuffers::new(problem.n_materials());
    let survival = !matches!(
        problem.treatment,
        crate::physics::AbsorptionTreatment::Analog
    );

    while bank.n_alive() > 0 {
        stats.iterations += 1;
        stats.peak_bank = stats.peak_bank.max(bank.n_alive() as u64);

        // --- Stage 1: locate ------------------------------------------
        {
            let _g = prof.enter(EventStats::STAGE_NAMES[0]);
            let leaks: u64 = {
                let ParticleBank {
                    x,
                    y,
                    z,
                    material,
                    alive,
                    ..
                } = &mut bank;
                let (x, y, z, alive) = (&x[..], &y[..], &z[..], &alive[..]);
                let material = SyncSlice::new(material);
                let dead_w = SyncSlice::new(&mut dead);
                alive
                    .par_chunks(CHUNK)
                    .map(|chunk| {
                        let mut leaks = 0u64;
                        for &iu in chunk {
                            let i = iu as usize;
                            match problem.find(Vec3::new(x[i], y[i], z[i])) {
                                // SAFETY: each live index appears in
                                // exactly one chunk.
                                Some(c) => unsafe { material.set(i, c.material) },
                                None => {
                                    leaks += 1;
                                    unsafe { dead_w.set(i, true) };
                                }
                            }
                        }
                        leaks
                    })
                    .sum()
            };
            out.tallies.leaks += leaks;
            bank.retain_alive(&dead);
        }
        if bank.n_alive() == 0 {
            break;
        }

        // --- Stage 2: banked XS lookups over material/energy queues ----
        // Per-particle RNG streams make the processing order irrelevant
        // to reproducibility, so the queueing layer is free to permute
        // the live list ([`crate::queueing`]): by material (a lookup task
        // needs one material), and optionally by log-E bin within each
        // material so the banked gathers walk near-contiguous grid rows.
        // A single serial partition pass builds ≤CHUNK-sized tasks; the
        // tasks then run in parallel, each gathering its queue's energies
        // into the vectorized banked kernel (warm-start variant for
        // energy-ordered queues) and applying the per-particle physics
        // corrections (URR sampling draws) afterwards — exactly
        // `Problem::macro_xs_vector`, batched.
        {
            let _g = prof.enter(EventStats::STAGE_NAMES[1]);
            for &iu in &bank.alive {
                out.tallies.record_segment(bank.material[iu as usize]);
            }
            build_queues(
                queueing,
                &mat_order,
                &bank.alive,
                &bank.material,
                &bank.energy,
                CHUNK,
                &mut qbufs,
            );
            let energy = &bank.energy[..];
            let queued = &qbufs.queued[..];
            let rng = SyncSlice::new(&mut bank.rng);
            let xs_w = SyncSlice::new(&mut xs_buf);
            qbufs.tasks.par_iter().for_each(|t| {
                let mat_id = t.mat;
                let idxs = &queued[t.start as usize..t.end as usize];
                let mat = &problem.materials[mat_id as usize];
                let mut base = [MacroXs::default(); CHUNK];
                let m = idxs.len();
                if t.binned {
                    problem.xs.batch_macro_xs_simd_indexed_binned(
                        mat,
                        energy,
                        idxs,
                        &mut base[..m],
                    );
                } else {
                    problem
                        .xs
                        .batch_macro_xs_simd_indexed(mat, energy, idxs, &mut base[..m]);
                }
                for (k, &iu) in idxs.iter().enumerate() {
                    let i = iu as usize;
                    let mut xs = base[k];
                    // SAFETY: buckets partition the live list, chunks
                    // partition buckets, so index `i` belongs to this
                    // task alone.
                    if problem.physics.any() {
                        let mut r = unsafe { rng.get(i) };
                        apply_physics(
                            &problem.xs,
                            mat,
                            energy[i],
                            &problem.physics,
                            &problem.slots[mat_id as usize],
                            &mut r,
                            &mut xs,
                        );
                        unsafe { rng.set(i, r) };
                    }
                    unsafe { xs_w.set(i, xs) };
                }
            });
        }

        // --- Stage 3: sample collision distances ----------------------
        // One uniform per particle from its own stream (bit-identical to
        // the scalar path for any batching), then d = −ln ξ / Σ_t with
        // the negate/divide vectorized 8 lanes at a time. IEEE −x and x/y
        // are exact, so the vector arithmetic matches the scalar
        // expression bit for bit; only ln stays scalar (its libm result
        // is the reference the history loop uses).
        {
            let _g = prof.enter(EventStats::STAGE_NAMES[2]);
            let alive = &bank.alive[..];
            let rng = SyncSlice::new(&mut bank.rng);
            let xs = &xs_buf[..];
            let d_w = SyncSlice::new(&mut d_coll);
            alive.par_chunks(CHUNK).for_each(|chunk| {
                let m = chunk.len();
                let mut streams = [Lcg63::new(0); CHUNK];
                let mut xi = [0.0f64; CHUNK];
                let mut tot = [0.0f64; CHUNK];
                let mut d = [0.0f64; CHUNK];
                for (k, &iu) in chunk.iter().enumerate() {
                    let i = iu as usize;
                    // SAFETY: disjoint chunks of unique live indices.
                    streams[k] = unsafe { rng.get(i) };
                    tot[k] = xs[i].total;
                }
                lcg_fill_uniform(&mut streams[..m], &mut xi[..m]);
                for v in &mut xi[..m] {
                    *v = v.ln();
                }
                let full = m / F64x8::LANES * F64x8::LANES;
                let mut k = 0;
                while k < full {
                    let q = -F64x8::from_slice(&xi[k..]) / F64x8::from_slice(&tot[k..]);
                    q.write_to_slice(&mut d[k..]);
                    k += F64x8::LANES;
                }
                for k in full..m {
                    d[k] = -xi[k] / tot[k];
                }
                for (k, &iu) in chunk.iter().enumerate() {
                    let i = iu as usize;
                    unsafe {
                        rng.set(i, streams[k]);
                        d_w.set(i, d[k]);
                    }
                }
            });
        }

        // --- Stage 4: boundary distances -------------------------------
        {
            let _g = prof.enter(EventStats::STAGE_NAMES[3]);
            let alive = &bank.alive[..];
            let bank_ref = &bank;
            let d_w = SyncSlice::new(&mut d_bound);
            alive.par_chunks(CHUNK).for_each(|chunk| {
                for &iu in chunk {
                    let i = iu as usize;
                    let d = problem.distance_to_boundary(bank_ref.pos(i), bank_ref.dir(i));
                    // SAFETY: disjoint chunks of unique live indices.
                    unsafe { d_w.set(i, d) };
                }
            });
        }

        // --- Stage 5: advance / collide --------------------------------
        // Each chunk accumulates its own (integer tallies, sites, mesh)
        // partial; partials merge in chunk order below, so results are
        // invariant to the thread count (the history loop's scheme).
        // Float tallies bypass the chunk partials entirely: they land in
        // per-particle slots and fold canonically after the pipeline.
        {
            let _g = prof.enter(EventStats::STAGE_NAMES[4]);
            let partials: Vec<(Tallies, Vec<Site>, Option<MeshTally>)> = {
                let ParticleBank {
                    x,
                    y,
                    z,
                    u,
                    v,
                    w,
                    energy,
                    weight,
                    rng,
                    material,
                    sites_banked,
                    alive,
                } = &mut bank;
                let alive = &alive[..];
                let material = &material[..];
                let xw = SyncSlice::new(x);
                let yw = SyncSlice::new(y);
                let zw = SyncSlice::new(z);
                let uw = SyncSlice::new(u);
                let vw = SyncSlice::new(v);
                let ww = SyncSlice::new(w);
                let ew = SyncSlice::new(energy);
                let wtw = SyncSlice::new(weight);
                let rngw = SyncSlice::new(rng);
                let sbw = SyncSlice::new(sites_banked);
                let dead_w = SyncSlice::new(&mut dead);
                let xs_all = &xs_buf[..];
                let dc = &d_coll[..];
                let db = &d_bound[..];
                let tlw = SyncSlice::new(&mut tl_pp);
                let ktw = SyncSlice::new(&mut kt_pp);
                let kcw = SyncSlice::new(&mut kc_pp);
                let kaw = SyncSlice::new(&mut ka_pp);

                alive
                    .par_chunks(CHUNK)
                    .map(|chunk| {
                        let mut t = Tallies::default();
                        let mut sites: Vec<Site> = Vec::new();
                        let mut pmesh = mesh_spec.map(MeshTally::new);
                        for &iu in chunk {
                            let i = iu as usize;
                            let xsi = &xs_all[i];
                            // SAFETY (all accesses below): disjoint chunks
                            // of unique live indices — this task is the
                            // only one touching particle `i`.
                            let pos = unsafe { Vec3::new(xw.get(i), yw.get(i), zw.get(i)) };
                            let dir = unsafe { Vec3::new(uw.get(i), vw.get(i), ww.get(i)) };
                            let wt_before = unsafe { wtw.get(i) };
                            if db[i] <= dc[i] {
                                let d = db[i];
                                unsafe {
                                    tlw.set(i, tlw.get(i) + d);
                                    ktw.set(i, ktw.get(i) + wt_before * d * xsi.nu_fission);
                                }
                                if let Some(m) = pmesh.as_mut() {
                                    m.score_track(pos, dir, d);
                                }
                                let np = pos + dir * (d + BOUNDARY_EPS);
                                unsafe {
                                    xw.set(i, np.x);
                                    yw.set(i, np.y);
                                    zw.set(i, np.z);
                                }
                                continue;
                            }
                            let d = dc[i];
                            unsafe {
                                tlw.set(i, tlw.get(i) + d);
                                ktw.set(i, ktw.get(i) + wt_before * d * xsi.nu_fission);
                            }
                            if let Some(m) = pmesh.as_mut() {
                                m.score_track(pos, dir, d);
                            }
                            let new_pos = pos + dir * d;
                            unsafe {
                                xw.set(i, new_pos.x);
                                yw.set(i, new_pos.y);
                                zw.set(i, new_pos.z);
                            }
                            t.record_collision(material[i]);
                            unsafe {
                                kcw.set(i, kcw.get(i) + wt_before * xsi.nu_fission / xsi.total);
                            }
                            if survival && xsi.absorption > 0.0 {
                                let ka = wt_before
                                    * (xsi.absorption / xsi.total)
                                    * (xsi.nu_fission / xsi.absorption);
                                unsafe { kaw.set(i, kaw.get(i) + ka) };
                            }

                            let mat_id = material[i] as usize;
                            let mut r = unsafe { rngw.get(i) };
                            let mut dirm = dir;
                            let mut e = unsafe { ew.get(i) };
                            let mut wt = wt_before;
                            let mut seq = unsafe { sbw.get(i) };
                            let outcome = collide(
                                &problem.xs,
                                &problem.materials[mat_id],
                                &problem.physics,
                                &problem.slots[mat_id],
                                new_pos,
                                &mut dirm,
                                &mut e,
                                &mut wt,
                                problem.treatment,
                                xsi,
                                &mut r,
                                iu,
                                &mut seq,
                                &mut sites,
                            );
                            unsafe {
                                rngw.set(i, r);
                                uw.set(i, dirm.x);
                                vw.set(i, dirm.y);
                                ww.set(i, dirm.z);
                                ew.set(i, e);
                                wtw.set(i, wt);
                                sbw.set(i, seq);
                            }

                            match outcome {
                                CollisionOutcome::Absorbed { fission } => {
                                    t.record_absorption(material[i], fission);
                                    if !survival && xsi.absorption > 0.0 {
                                        let ka = xsi.nu_fission / xsi.absorption;
                                        unsafe { kaw.set(i, kaw.get(i) + ka) };
                                    }
                                    unsafe { dead_w.set(i, true) };
                                }
                                CollisionOutcome::Scattered => {
                                    if e < E_FLOOR {
                                        t.record_absorption(material[i], false);
                                        unsafe { dead_w.set(i, true) };
                                    }
                                }
                            }
                        }
                        (t, sites, pmesh)
                    })
                    .collect()
            };
            for (t, s, pm) in partials {
                out.tallies.merge(&t);
                out.sites.extend(s);
                if let (Some(m), Some(pm)) = (mesh.as_mut(), pm.as_ref()) {
                    m.merge(pm);
                }
            }
        }

        // --- Stage 6: compact ------------------------------------------
        {
            let _g = prof.enter(EventStats::STAGE_NAMES[5]);
            bank.retain_alive(&dead);
        }
    }

    // Events discover sites in generation order; restore history order.
    sort_sites(&mut out.sites);

    stats.lookups = problem.xs.lookups().saturating_sub(lookups0);

    // Stages are barrier-synchronized, so each region's inclusive time is
    // its stage's wall time; the sum is the staged region's wall time.
    let profile = prof.finish();
    for (k, name) in EventStats::STAGE_NAMES.iter().enumerate() {
        if let Some(r) = profile.get(name) {
            stats.stage_seconds[k] = r.inclusive.as_secs_f64();
        }
    }
    PipelineRaw {
        out,
        stats,
        mesh,
        tl_pp,
        kt_pp,
        kc_pp,
        ka_pp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::batch_streams;
    use crate::problem::Problem;

    /// Test shorthand for the merged event run without a mesh, default
    /// (material) queueing.
    fn run_event(
        problem: &Problem,
        sources: &[SourceSite],
        streams: &[Lcg63],
    ) -> (TransportOutcome, EventStats) {
        let (out, stats, _) =
            event_transport_mesh_impl(problem, sources, streams, None, &QueueingConfig::default());
        (out, stats)
    }

    /// Test shorthand for the merged history run.
    fn run_hist(problem: &Problem, sources: &[SourceSite], streams: &[Lcg63]) -> TransportOutcome {
        crate::history::run_history_batch(problem, sources, streams, None, false, None).0
    }

    #[test]
    fn event_matches_history_exactly() {
        let problem = Problem::test_small();
        let n = 400;
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);

        let hist = run_hist(&problem, &sources, &streams);
        let (evt, stats) = run_event(&problem, &sources, &streams);

        // Integer tallies must be identical: same trajectories.
        assert_eq!(hist.tallies.segments, evt.tallies.segments);
        assert_eq!(
            hist.tallies.segments_by_material,
            evt.tallies.segments_by_material
        );
        assert_eq!(
            hist.tallies.collisions_by_material,
            evt.tallies.collisions_by_material
        );
        assert_eq!(
            hist.tallies.absorptions_by_material,
            evt.tallies.absorptions_by_material
        );
        assert_eq!(
            hist.tallies.fissions_by_material,
            evt.tallies.fissions_by_material
        );
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
        assert_eq!(hist.tallies.absorptions, evt.tallies.absorptions);
        assert_eq!(hist.tallies.fissions, evt.tallies.fissions);
        assert_eq!(hist.tallies.leaks, evt.tallies.leaks);
        // Float tallies are bit-identical: both drivers accumulate per
        // particle in segment order and fold in the same chunked tree.
        assert_eq!(
            hist.tallies.track_length.to_bits(),
            evt.tallies.track_length.to_bits()
        );
        assert_eq!(
            hist.tallies.k_track.to_bits(),
            evt.tallies.k_track.to_bits()
        );
        assert_eq!(
            hist.tallies.k_collision.to_bits(),
            evt.tallies.k_collision.to_bits()
        );
        assert_eq!(
            hist.tallies.k_absorption.to_bits(),
            evt.tallies.k_absorption.to_bits()
        );
        // Fission banks identical site-for-site.
        assert_eq!(hist.sites.len(), evt.sites.len());
        for (a, b) in hist.sites.iter().zip(&evt.sites) {
            assert_eq!(a, b);
        }
        assert!(stats.iterations > 1);
        assert_eq!(stats.peak_bank, n as u64);
        assert!(stats.lookups >= stats.iterations);
        // Stage timers sum to something positive, with the XS stage
        // contributing (the bottleneck stage of §III-A).
        assert!(stats.total_seconds() > 0.0);
        assert!(stats.stage_seconds[1] > 0.0, "xs stage not timed");
    }

    #[test]
    fn event_deterministic_across_thread_pools() {
        // The event-path mirror of the history loop's
        // `deterministic_across_thread_pools`: the full TransportOutcome
        // (float tallies bitwise included), the banked sites, and the
        // mesh tally must be identical for 1, 2, and 8 threads, and the
        // 1-thread pool must equal the dedicated serial entry point.
        let problem = Problem::test_small();
        let n = 300;
        let sources = problem.sample_initial_source(n, 1);
        let streams = batch_streams(problem.seed, 0, n);
        let spec = crate::mesh::MeshSpec::covering(problem.geometry.bounds, 4, 4, 2);

        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                event_transport_mesh_impl(
                    &problem,
                    &sources,
                    &streams,
                    Some(spec),
                    &QueueingConfig::default(),
                )
            })
        };
        let (out1, stats1, mesh1) = run(1);
        let (out2, stats2, mesh2) = run(2);
        let (out8, stats8, mesh8) = run(8);

        assert_eq!(out1.tallies, out2.tallies);
        assert_eq!(out1.tallies, out8.tallies);
        assert_eq!(out1.sites, out2.sites);
        assert_eq!(out1.sites, out8.sites);
        assert_eq!(mesh1.as_ref().unwrap().bins, mesh2.as_ref().unwrap().bins);
        assert_eq!(mesh1.as_ref().unwrap().bins, mesh8.as_ref().unwrap().bins);
        // Counters (everything but the timers) identical too.
        for (a, b) in [(&stats1, &stats2), (&stats1, &stats8)] {
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.lookups, b.lookups);
            assert_eq!(a.peak_bank, b.peak_bank);
        }

        let serial_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let (out_serial, _) = serial_pool.install(|| run_event(&problem, &sources, &streams));
        assert_eq!(out_serial.tallies, out1.tallies);
        assert_eq!(out_serial.sites, out1.sites);
    }

    #[test]
    fn event_counters_identical_serial_vs_parallel() {
        let problem = Problem::test_small();
        let n = 256;
        let sources = problem.sample_initial_source(n, 3);
        let streams = batch_streams(problem.seed, 1, n);
        let serial_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let (_, serial) = serial_pool.install(|| run_event(&problem, &sources, &streams));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (_, parallel) = pool.install(|| run_event(&problem, &sources, &streams));
        assert_eq!(serial.iterations, parallel.iterations);
        assert_eq!(serial.lookups, parallel.lookups);
        assert_eq!(serial.peak_bank, parallel.peak_bank);
        // Same op counts ⇒ same device-model offload estimate.
        assert!(serial.lookups > 0);
    }

    #[test]
    fn event_stats_merge_accumulates() {
        let mut a = EventStats {
            iterations: 3,
            lookups: 100,
            peak_bank: 40,
            stage_seconds: [1.0; 6],
        };
        let b = EventStats {
            iterations: 2,
            lookups: 50,
            peak_bank: 70,
            stage_seconds: [0.5; 6],
        };
        a.merge(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.lookups, 150);
        assert_eq!(a.peak_bank, 70);
        assert_eq!(a.stage_seconds, [1.5; 6]);
    }

    #[test]
    fn event_loop_drains_bank() {
        let problem = Problem::test_small();
        let n = 64;
        let sources = problem.sample_initial_source(n, 5);
        let streams = batch_streams(problem.seed, 3, n);
        let (out, _) = run_event(&problem, &sources, &streams);
        assert_eq!(out.tallies.absorptions + out.tallies.leaks, n as u64);
    }

    #[test]
    fn chunked_event_partials_rebuild_the_merged_run_bitwise() {
        let problem = Problem::test_small();
        let n = 600; // 3 chunks: 256 + 256 + 88
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);
        let (merged, merged_stats) = run_event(&problem, &sources, &streams);
        let (chunks, sites, stats) = run_event_transport_chunked_impl(
            &problem,
            &sources,
            &streams,
            &QueueingConfig::default(),
        );
        assert_eq!(chunks.len(), n.div_ceil(CHUNK));
        let mut rebuilt = Tallies::default();
        for c in &chunks {
            rebuilt.merge(c);
        }
        // Bitwise: the chunk float sums are the serial fold's partials.
        assert_eq!(rebuilt, merged.tallies);
        assert_eq!(sites, merged.sites);
        assert_eq!(stats.iterations, merged_stats.iterations);
        assert_eq!(stats.lookups, merged_stats.lookups);
        // Integer totals ride in chunk 0 only.
        assert_eq!(chunks[0].segments, merged.tallies.segments);
        assert_eq!(chunks[1].segments, 0);
    }

    #[test]
    fn bank_of_immediate_leakers_terminates_in_one_iteration() {
        use mcs_geom::Vec3;
        let problem = Problem::test_small();
        // All particles born outside the geometry.
        let sources: Vec<crate::particle::SourceSite> = (0..16)
            .map(|i| crate::particle::SourceSite {
                pos: Vec3::new(500.0 + i as f64, 0.0, 0.0),
                energy: 1.0,
            })
            .collect();
        let streams = batch_streams(problem.seed, 0, 16);
        let (out, stats) = run_event(&problem, &sources, &streams);
        assert_eq!(out.tallies.leaks, 16);
        assert_eq!(out.tallies.collisions, 0);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.lookups, 0);
    }

    #[test]
    fn mixed_bank_with_some_leakers_stays_consistent() {
        use mcs_geom::Vec3;
        let problem = Problem::test_small();
        let mut sources = problem.sample_initial_source(20, 0);
        // Replace half with out-of-geometry births.
        for (i, s) in sources.iter_mut().enumerate().take(10) {
            s.pos = Vec3::new(400.0 + i as f64, 0.0, 0.0);
        }
        let streams = batch_streams(problem.seed, 0, 20);
        let hist = run_hist(&problem, &sources, &streams);
        let (evt, _) = run_event(&problem, &sources, &streams);
        assert!(hist.tallies.leaks >= 10);
        assert_eq!(hist.tallies.leaks, evt.tallies.leaks);
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
        assert_eq!(hist.sites, evt.sites);
    }

    #[test]
    fn near_floor_source_energies_are_handled() {
        // Particles born at the data floor thermal-walk briefly and die
        // by capture without panicking, identically in both engines.
        let problem = Problem::test_small();
        let mut sources = problem.sample_initial_source(12, 0);
        for s in &mut sources {
            s.energy = crate::E_FLOOR * 2.0;
        }
        let streams = batch_streams(problem.seed, 0, 12);
        let hist = run_hist(&problem, &sources, &streams);
        let (evt, _) = run_event(&problem, &sources, &streams);
        assert_eq!(hist.tallies.absorptions + hist.tallies.leaks, 12);
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
    }

    #[test]
    fn empty_bank_is_a_noop() {
        let problem = Problem::test_small();
        let (out, stats) = run_event(&problem, &[], &[]);
        assert_eq!(out.tallies.n_particles, 0);
        assert_eq!(stats.iterations, 0);
    }

    /// Queueing permutes only the lookup order: every mode (and the fuel
    /// split) must reproduce the default run bit for bit — tallies,
    /// sites, mesh, and op counters alike.
    #[test]
    fn queueing_modes_are_bitwise_equivalent() {
        use crate::queueing::QueueingMode;
        let problem = Problem::test_small();
        let n = 500;
        let sources = problem.sample_initial_source(n, 2);
        let streams = batch_streams(problem.seed, 1, n);
        let spec = MeshSpec::covering(problem.geometry.bounds, 4, 4, 2);
        let run = |cfg: &QueueingConfig| {
            event_transport_mesh_impl(&problem, &sources, &streams, Some(spec), cfg)
        };
        let (base, base_stats, base_mesh) = run(&QueueingConfig::default());
        let variants = [
            QueueingConfig {
                mode: QueueingMode::Off,
                ..QueueingConfig::default()
            },
            QueueingConfig {
                mode: QueueingMode::MaterialEnergy,
                ..QueueingConfig::default()
            },
            QueueingConfig {
                mode: QueueingMode::MaterialEnergy,
                energy_bins: 64,
                fuel_split: true,
            },
            QueueingConfig {
                fuel_split: true,
                ..QueueingConfig::default()
            },
        ];
        for cfg in &variants {
            let (out, stats, mesh) = run(cfg);
            assert_eq!(base.tallies, out.tallies, "{:?}", cfg.mode);
            assert_eq!(base.sites, out.sites, "{:?}", cfg.mode);
            assert_eq!(
                base_mesh.as_ref().unwrap().bins,
                mesh.as_ref().unwrap().bins,
                "{:?}",
                cfg.mode
            );
            assert_eq!(base_stats.iterations, stats.iterations);
            assert_eq!(base_stats.lookups, stats.lookups);
            assert_eq!(base_stats.peak_bank, stats.peak_bank);
        }
    }

    /// On the hash backend, energy queueing + warm-start must spend fewer
    /// in-bin scan steps per lookup than material-only queueing — the
    /// locality claim of the ablation, asserted at test scale.
    #[test]
    fn energy_queueing_reduces_hash_scan_steps() {
        use crate::problem::GridBackendKind;
        use crate::queueing::QueueingMode;
        let problem = Problem::test_small_with_backend(GridBackendKind::HashBinned);
        let n = 600;
        let sources = problem.sample_initial_source(n, 4);
        let streams = batch_streams(problem.seed, 2, n);
        let run = |mode: QueueingMode| {
            problem.xs.reset_counters();
            let cfg = QueueingConfig {
                mode,
                ..QueueingConfig::default()
            };
            let (out, _, _) = event_transport_mesh_impl(&problem, &sources, &streams, None, &cfg);
            (out, problem.xs.bin_scan_steps(), problem.xs.lookups())
        };
        let (base, mat_steps, mat_lookups) = run(QueueingMode::Material);
        let (binned, bin_steps, bin_lookups) = run(QueueingMode::MaterialEnergy);
        assert_eq!(base.tallies, binned.tallies);
        assert_eq!(mat_lookups, bin_lookups);
        assert!(
            bin_steps < mat_steps,
            "energy queueing took {bin_steps} scan steps vs {mat_steps} material-only"
        );
    }
}
