//! Event-based (banking) transport: the full implementation of the
//! algorithm the paper prototypes in micro-benchmarks and lists as future
//! work.
//!
//! All live particles advance together, one *event generation* per
//! iteration, through staged kernels:
//!
//! 1. **Locate** — resolve each particle's cell (leaks terminate here).
//! 2. **XS lookup** — the bank is processed grouped by material with the
//!    vectorized inner-loop-over-nuclides kernel (Fig. 2's banked lookup).
//! 3. **Distance sampling** — `d = −ln ξ / Σ_t` across the bank (the
//!    Table I kernel).
//! 4. **Boundary** — ray-trace each particle (divergent; the stage the
//!    paper notes resists vectorization).
//! 5. **Advance/Collide** — move to the nearer of boundary/collision and
//!    apply the shared collision physics.
//! 6. **Compact** — dead particles are squeezed out of the live list.
//!
//! Because every particle owns its RNG stream and the stages consume draws
//! in the same per-particle order as the history loop, the two algorithms
//! produce *identical trajectories* — asserted by integration tests.

use mcs_geom::BOUNDARY_EPS;
use mcs_rng::Lcg63;
use mcs_xs::kernel::MacroXs;

use crate::history::TransportOutcome;
use crate::mesh::{MeshSpec, MeshTally};
use crate::particle::{sort_sites, ParticleBank, SourceSite};
use crate::physics::{collide, CollisionOutcome};
use crate::problem::Problem;
use crate::E_FLOOR;

/// Counters describing how the event loop executed (fed to the device
/// model for offload-time estimation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventStats {
    /// Event generations executed.
    pub iterations: u64,
    /// Total XS lookups performed (= total flight segments).
    pub lookups: u64,
    /// Peak live-bank size.
    pub peak_bank: u64,
    /// Measured wall time per stage, seconds:
    /// `[locate, xs_lookup, distance, boundary, collide, compact]`.
    pub stage_seconds: [f64; 6],
}

impl EventStats {
    /// Stage display names, aligned with `stage_seconds`.
    pub const STAGE_NAMES: [&'static str; 6] = [
        "locate",
        "xs_lookup",
        "sample_distance",
        "boundary",
        "advance_collide",
        "compact",
    ];

    /// Total measured stage time.
    pub fn total_seconds(&self) -> f64 {
        self.stage_seconds.iter().sum()
    }
}

/// Run the full event-based transport over a bank born from `sources`.
pub fn run_event_transport(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
) -> (TransportOutcome, EventStats) {
    let (out, stats, _) = run_event_transport_mesh(problem, sources, streams, None);
    (out, stats)
}

/// [`run_event_transport`] with an optional mesh tally scored in the
/// advance stage.
pub fn run_event_transport_mesh(
    problem: &Problem,
    sources: &[SourceSite],
    streams: &[Lcg63],
    mesh_spec: Option<MeshSpec>,
) -> (TransportOutcome, EventStats, Option<MeshTally>) {
    let mut mesh = mesh_spec.map(MeshTally::new);
    let mut bank = ParticleBank::from_sources(sources, streams);
    let n = bank.capacity();
    let mut out = TransportOutcome::default();
    out.tallies.n_particles = n as u64;
    let mut stats = EventStats::default();

    let mut xs_buf: Vec<MacroXs> = vec![MacroXs::default(); n];
    let mut d_coll = vec![0.0f64; n];
    let mut d_bound = vec![0.0f64; n];
    let mut dead: Vec<usize> = Vec::new();
    let n_materials = problem.n_materials();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_materials];

    while bank.n_alive() > 0 {
        stats.iterations += 1;
        stats.peak_bank = stats.peak_bank.max(bank.n_alive() as u64);
        let mut stage_t = std::time::Instant::now();
        let mut lap = |slot: &mut f64| {
            let now = std::time::Instant::now();
            *slot += (now - stage_t).as_secs_f64();
            stage_t = now;
        };

        // --- Stage 1: locate ------------------------------------------
        dead.clear();
        for slot in 0..bank.n_alive() {
            let i = bank.alive[slot] as usize;
            match problem.geometry.find(bank.pos(i)) {
                Some(c) => bank.material[i] = c.material,
                None => {
                    out.tallies.leaks += 1;
                    dead.push(slot);
                }
            }
        }
        bank.compact(&dead);
        lap(&mut stats.stage_seconds[0]);
        if bank.n_alive() == 0 {
            break;
        }

        // --- Stage 2: banked XS lookups, grouped by material ----------
        // Per-particle RNG streams make the processing order irrelevant
        // to reproducibility, so grouping by material is free. A single
        // bucketing pass replaces per-material rescans of the live list,
        // and processing each bucket contiguously keeps that material's
        // tables hot in cache.
        for b in &mut buckets {
            b.clear();
        }
        for slot in 0..bank.n_alive() {
            let i = bank.alive[slot] as usize;
            buckets[bank.material[i] as usize].push(i as u32);
        }
        for (mat_id, bucket) in buckets.iter().enumerate() {
            for &iu in bucket {
                let i = iu as usize;
                let mut rng = bank.rng[i];
                xs_buf[i] = problem.macro_xs_vector(mat_id as u32, bank.energy[i], &mut rng);
                bank.rng[i] = rng;
            }
        }
        stats.lookups += bank.n_alive() as u64;
        for slot in 0..bank.n_alive() {
            let i = bank.alive[slot] as usize;
            out.tallies.record_segment(bank.material[i]);
        }

        lap(&mut stats.stage_seconds[1]);

        // --- Stage 3: sample collision distances ----------------------
        for slot in 0..bank.n_alive() {
            let i = bank.alive[slot] as usize;
            let xi = bank.rng[i].next_uniform();
            d_coll[i] = -xi.ln() / xs_buf[i].total;
        }
        lap(&mut stats.stage_seconds[2]);

        // --- Stage 4: boundary distances -------------------------------
        for slot in 0..bank.n_alive() {
            let i = bank.alive[slot] as usize;
            d_bound[i] = problem.geometry.distance_to_boundary(bank.pos(i), bank.dir(i));
        }

        lap(&mut stats.stage_seconds[3]);

        // --- Stage 5: advance / collide --------------------------------
        dead.clear();
        for slot in 0..bank.n_alive() {
            let i = bank.alive[slot] as usize;
            let xs = &xs_buf[i];
            if d_bound[i] <= d_coll[i] {
                let d = d_bound[i];
                out.tallies.track_length += d;
                out.tallies.k_track += bank.weight[i] * d * xs.nu_fission;
                if let Some(m) = mesh.as_mut() {
                    m.score_track(bank.pos(i), bank.dir(i), d);
                }
                let new_pos = bank.pos(i) + bank.dir(i) * (d + BOUNDARY_EPS);
                bank.set_pos(i, new_pos);
                continue;
            }
            let d = d_coll[i];
            out.tallies.track_length += d;
            out.tallies.k_track += bank.weight[i] * d * xs.nu_fission;
            if let Some(m) = mesh.as_mut() {
                m.score_track(bank.pos(i), bank.dir(i), d);
            }
            let new_pos = bank.pos(i) + bank.dir(i) * d;
            bank.set_pos(i, new_pos);
            out.tallies.record_collision(bank.material[i]);
            let w_before = bank.weight[i];
            out.tallies.k_collision += w_before * xs.nu_fission / xs.total;
            let survival =
                !matches!(problem.treatment, crate::physics::AbsorptionTreatment::Analog);
            if survival && xs.absorption > 0.0 {
                out.tallies.k_absorption +=
                    w_before * (xs.absorption / xs.total) * (xs.nu_fission / xs.absorption);
            }

            let mat_id = bank.material[i] as usize;
            let mut rng = bank.rng[i];
            let mut dir = bank.dir(i);
            let mut energy = bank.energy[i];
            let mut weight = bank.weight[i];
            let mut seq = bank.sites_banked[i];
            let outcome = collide(
                &problem.library,
                &problem.grid,
                &problem.materials[mat_id],
                &problem.physics,
                &problem.slots[mat_id],
                new_pos,
                &mut dir,
                &mut energy,
                &mut weight,
                problem.treatment,
                xs,
                &mut rng,
                i as u32,
                &mut seq,
                &mut out.sites,
            );
            bank.rng[i] = rng;
            bank.set_dir(i, dir);
            bank.energy[i] = energy;
            bank.weight[i] = weight;
            bank.sites_banked[i] = seq;

            match outcome {
                CollisionOutcome::Absorbed { fission } => {
                    out.tallies.record_absorption(bank.material[i], fission);
                    if !survival && xs.absorption > 0.0 {
                        out.tallies.k_absorption += xs.nu_fission / xs.absorption;
                    }
                    dead.push(slot);
                }
                CollisionOutcome::Scattered => {
                    if bank.energy[i] < E_FLOOR {
                        out.tallies.record_absorption(bank.material[i], false);
                        dead.push(slot);
                    }
                }
            }
        }

        lap(&mut stats.stage_seconds[4]);

        // --- Stage 6: compact -------------------------------------------
        bank.compact(&dead);
        lap(&mut stats.stage_seconds[5]);
    }

    // Events discover sites in generation order; restore history order.
    sort_sites(&mut out.sites);
    (out, stats, mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{batch_streams, run_histories};
    use crate::problem::Problem;

    #[test]
    fn event_matches_history_exactly() {
        let problem = Problem::test_small();
        let n = 400;
        let sources = problem.sample_initial_source(n, 0);
        let streams = batch_streams(problem.seed, 0, n);

        let hist = run_histories(&problem, &sources, &streams);
        let (evt, stats) = run_event_transport(&problem, &sources, &streams);

        // Integer tallies must be identical: same trajectories.
        assert_eq!(hist.tallies.segments, evt.tallies.segments);
        assert_eq!(hist.tallies.segments_by_material, evt.tallies.segments_by_material);
        assert_eq!(hist.tallies.collisions_by_material, evt.tallies.collisions_by_material);
        assert_eq!(hist.tallies.absorptions_by_material, evt.tallies.absorptions_by_material);
        assert_eq!(hist.tallies.fissions_by_material, evt.tallies.fissions_by_material);
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
        assert_eq!(hist.tallies.absorptions, evt.tallies.absorptions);
        assert_eq!(hist.tallies.fissions, evt.tallies.fissions);
        assert_eq!(hist.tallies.leaks, evt.tallies.leaks);
        // Float tallies agree to accumulation-order tolerance.
        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-300);
        assert!(rel(hist.tallies.track_length, evt.tallies.track_length) < 1e-9);
        assert!(rel(hist.tallies.k_track, evt.tallies.k_track) < 1e-9);
        assert!(rel(hist.tallies.k_collision, evt.tallies.k_collision) < 1e-9);
        // Fission banks identical site-for-site.
        assert_eq!(hist.sites.len(), evt.sites.len());
        for (a, b) in hist.sites.iter().zip(&evt.sites) {
            assert_eq!(a, b);
        }
        assert!(stats.iterations > 1);
        assert_eq!(stats.peak_bank, n as u64);
        assert!(stats.lookups >= stats.iterations);
        // Stage timers sum to something positive, with the XS stage
        // contributing (the bottleneck stage of §III-A).
        assert!(stats.total_seconds() > 0.0);
        assert!(stats.stage_seconds[1] > 0.0, "xs stage not timed");
    }

    #[test]
    fn event_loop_drains_bank() {
        let problem = Problem::test_small();
        let n = 64;
        let sources = problem.sample_initial_source(n, 5);
        let streams = batch_streams(problem.seed, 3, n);
        let (out, _) = run_event_transport(&problem, &sources, &streams);
        assert_eq!(out.tallies.absorptions + out.tallies.leaks, n as u64);
    }

    #[test]
    fn bank_of_immediate_leakers_terminates_in_one_iteration() {
        use mcs_geom::Vec3;
        let problem = Problem::test_small();
        // All particles born outside the geometry.
        let sources: Vec<crate::particle::SourceSite> = (0..16)
            .map(|i| crate::particle::SourceSite {
                pos: Vec3::new(500.0 + i as f64, 0.0, 0.0),
                energy: 1.0,
            })
            .collect();
        let streams = batch_streams(problem.seed, 0, 16);
        let (out, stats) = run_event_transport(&problem, &sources, &streams);
        assert_eq!(out.tallies.leaks, 16);
        assert_eq!(out.tallies.collisions, 0);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.lookups, 0);
    }

    #[test]
    fn mixed_bank_with_some_leakers_stays_consistent() {
        use mcs_geom::Vec3;
        let problem = Problem::test_small();
        let mut sources = problem.sample_initial_source(20, 0);
        // Replace half with out-of-geometry births.
        for (i, s) in sources.iter_mut().enumerate().take(10) {
            s.pos = Vec3::new(400.0 + i as f64, 0.0, 0.0);
        }
        let streams = batch_streams(problem.seed, 0, 20);
        let hist = run_histories(&problem, &sources, &streams);
        let (evt, _) = run_event_transport(&problem, &sources, &streams);
        assert!(hist.tallies.leaks >= 10);
        assert_eq!(hist.tallies.leaks, evt.tallies.leaks);
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
        assert_eq!(hist.sites, evt.sites);
    }

    #[test]
    fn near_floor_source_energies_are_handled() {
        // Particles born at the data floor thermal-walk briefly and die
        // by capture without panicking, identically in both engines.
        let problem = Problem::test_small();
        let mut sources = problem.sample_initial_source(12, 0);
        for s in &mut sources {
            s.energy = crate::E_FLOOR * 2.0;
        }
        let streams = batch_streams(problem.seed, 0, 12);
        let hist = run_histories(&problem, &sources, &streams);
        let (evt, _) = run_event_transport(&problem, &sources, &streams);
        assert_eq!(hist.tallies.absorptions + hist.tallies.leaks, 12);
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
    }

    #[test]
    fn empty_bank_is_a_noop() {
        let problem = Problem::test_small();
        let (out, stats) = run_event_transport(&problem, &[], &[]);
        assert_eq!(out.tallies.n_particles, 0);
        assert_eq!(stats.iterations, 0);
    }
}
