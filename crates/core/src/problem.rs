//! Problem assembly: cross sections + geometry + materials + physics.

use mcs_geom::{
    CellRef, CoreSpec, GeomTraversal, Geometry, HmConfig, MaterialRole, TraversalKind, Vec3,
};
use mcs_rng::Lcg63;
use mcs_xs::sab::SabTable;
use mcs_xs::urr::UrrTable;
pub use mcs_xs::GridBackendKind;
use mcs_xs::{LibrarySpec, MacroXs, Material, XsContext};

use crate::particle::SourceSite;
use crate::physics::sample_watt;
use crate::physics::{
    apply_physics, AbsorptionTreatment, MaterialSlots, Physics, SabPhysics, UrrPhysics,
};
use crate::physics::{WATT_A, WATT_B};

/// Which Hoogenboom–Martin fuel inventory to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HmModel {
    /// 34 fuel nuclides.
    Small,
    /// 320 fuel nuclides.
    Large,
}

/// Assembly options for [`Problem::hm`].
#[derive(Debug, Clone)]
pub struct ProblemConfig {
    /// Per-nuclide grid-point density multiplier (1.0 ≈ a thousand points
    /// per heavy nuclide).
    pub grid_density: f64,
    /// Parameterized core geometry (pin → assembly → core generator).
    pub core: CoreSpec,
    /// Geometry lookup treatment (flattened vs nested — bitwise-equivalent
    /// by contract, differing only in traversal work).
    pub traversal: TraversalKind,
    /// Include S(α,β) thermal scattering for hydrogen in water.
    pub enable_sab: bool,
    /// Include URR probability tables for U-235/U-238.
    pub enable_urr: bool,
    /// Free-gas target motion for thermal elastic scattering.
    pub enable_free_gas: bool,
    /// Doppler-broaden the fuel nuclides to this temperature (K);
    /// `0.0` = unbroadened baseline.
    pub fuel_temperature_k: f64,
    /// Energy-grid search backend for all cross-section lookups.
    pub grid_backend: GridBackendKind,
    /// Master seed (library synthesis + transport streams derive from it).
    pub seed: u64,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        Self {
            grid_density: 1.0,
            core: CoreSpec::hm(&HmConfig::default()),
            traversal: TraversalKind::default(),
            enable_sab: true,
            enable_urr: true,
            enable_free_gas: true,
            fuel_temperature_k: 0.0,
            grid_backend: GridBackendKind::Unionized,
            seed: 0x4d43_5f30,
        }
    }
}

impl ProblemConfig {
    /// A fast configuration for unit tests: sparse grids, one assembly,
    /// full physics.
    pub fn test_scale() -> Self {
        Self {
            grid_density: 0.25,
            core: CoreSpec::hm(&HmConfig::single_assembly()),
            ..Self::default()
        }
    }
}

/// A fully assembled transport problem.
#[derive(Debug, Clone)]
pub struct Problem {
    /// The unified cross-section lookup context: library, layouts, and the
    /// pluggable energy-grid backend.
    pub xs: XsContext,
    /// Materials, indexed by the geometry's material ids (0 = zone-0 fuel,
    /// 1 = clad, 2 = water, then extra enrichment zones and the absorber,
    /// per the model's [`MaterialRole`] table).
    pub materials: Vec<Material>,
    /// The geometry.
    pub geometry: Geometry,
    /// The geometry lookup treatment (flattened or nested), with its own
    /// traversal counters. All transport queries route through
    /// [`Problem::find`] / [`Problem::distance_to_boundary`].
    pub traversal: GeomTraversal,
    /// Optional physics.
    pub physics: Physics,
    /// Per-material physics slots, parallel to `materials`.
    pub slots: Vec<MaterialSlots>,
    /// Absorption treatment (analog by default; set to
    /// [`AbsorptionTreatment::survival_default`] for variance reduction).
    pub treatment: AbsorptionTreatment,
    /// Master seed.
    pub seed: u64,
}

impl Problem {
    /// Build a Hoogenboom–Martin problem.
    pub fn hm(model: HmModel, cfg: &ProblemConfig) -> Self {
        let lib_spec = match model {
            HmModel::Small => LibrarySpec::hm_small(),
            HmModel::Large => LibrarySpec::hm_large(),
        }
        .with_grid_density(cfg.grid_density)
        .with_fuel_temperature(cfg.fuel_temperature_k);
        Self::from_config(
            mcs_xs::cache::context_for_spec(&lib_spec, cfg.grid_backend),
            cfg,
        )
    }

    /// Build a small problem for unit tests (tiny nuclide library,
    /// single-assembly geometry).
    pub fn test_small() -> Self {
        Self::test_small_with_backend(GridBackendKind::Unionized)
    }

    /// [`Problem::test_small`] with an explicit grid backend — used by the
    /// cross-backend bit-identity tests.
    pub fn test_small_with_backend(backend: GridBackendKind) -> Self {
        let cfg = ProblemConfig {
            grid_backend: backend,
            ..ProblemConfig::test_scale()
        };
        let spec = LibrarySpec::tiny().with_grid_density(cfg.grid_density);
        Self::from_config(mcs_xs::cache::context_for_spec(&spec, backend), &cfg)
    }

    /// Assemble around an already built lookup context (normally a
    /// counter-fresh clone from [`mcs_xs::cache`]); geometry, materials,
    /// and optional physics come from `cfg`. This is the single assembly
    /// path — the catalog ([`crate::catalog::build`]) and the historic
    /// constructors both land here.
    pub(crate) fn from_config(xs: XsContext, cfg: &ProblemConfig) -> Self {
        let library = xs.lib();
        let model = cfg.core.build();
        let materials: Vec<Material> = model
            .roles
            .iter()
            .map(|role| match *role {
                MaterialRole::Fuel { enrichment } => {
                    Material::hm_fuel_enriched(library, enrichment)
                }
                MaterialRole::Clad => Material::hm_clad(library),
                MaterialRole::Water => Material::hm_water(library),
                MaterialRole::Absorber => Material::hm_absorber(library),
            })
            .collect();
        let geometry = model.geometry;
        let traversal = GeomTraversal::new(cfg.traversal, &geometry);

        let mut physics = Physics::none();
        physics.free_gas = cfg.enable_free_gas;
        if cfg.enable_sab {
            physics.sab = Some(SabPhysics {
                nuclide: library.known.h1,
                table: SabTable::synthesize(cfg.seed ^ 0x5ab),
                temperature: 293.6,
            });
        }
        if cfg.enable_urr {
            physics.urr = vec![
                UrrPhysics {
                    nuclide: library.known.u238,
                    table: UrrTable::synthesize(cfg.seed ^ 0x238, 8),
                },
                UrrPhysics {
                    nuclide: library.known.u235,
                    table: UrrTable::synthesize(cfg.seed ^ 0x235, 8),
                },
            ];
        }
        let slots = materials
            .iter()
            .map(|m| MaterialSlots::build(m, &physics))
            .collect();

        Self {
            xs,
            materials,
            geometry,
            traversal,
            physics,
            slots,
            treatment: AbsorptionTreatment::Analog,
            seed: cfg.seed,
        }
    }

    /// Locate a point, routed through the configured traversal treatment.
    /// Bitwise-equivalent to `geometry.find(p)` under either treatment;
    /// records `geom.*` traversal counters.
    #[inline]
    pub fn find(&self, p: Vec3) -> Option<CellRef> {
        self.traversal.find(&self.geometry, p)
    }

    /// Distance to the nearest surface or lattice wall along `dir`, routed
    /// through the configured traversal treatment (bitwise-equivalent to
    /// `geometry.distance_to_boundary`).
    #[inline]
    pub fn distance_to_boundary(&self, p: Vec3, dir: Vec3) -> f64 {
        self.traversal.distance_to_boundary(&self.geometry, p, dir)
    }

    /// Macroscopic cross section with optional physics, scalar kernel
    /// (the history path's `calculate_xs()`).
    #[inline]
    pub fn macro_xs(&self, mat_id: u32, e: f64, rng: &mut Lcg63) -> MacroXs {
        let mat = &self.materials[mat_id as usize];
        let mut xs = self.xs.macro_xs(mat, e);
        if self.physics.any() {
            apply_physics(
                &self.xs,
                mat,
                e,
                &self.physics,
                &self.slots[mat_id as usize],
                rng,
                &mut xs,
            );
        }
        xs
    }

    /// Macroscopic cross section with optional physics, vectorized inner
    /// loop (the event path's banked kernel). Identical RNG consumption to
    /// [`Problem::macro_xs`].
    #[inline]
    pub fn macro_xs_vector(&self, mat_id: u32, e: f64, rng: &mut Lcg63) -> MacroXs {
        let mat = &self.materials[mat_id as usize];
        let mut xs = self.xs.macro_xs_simd(mat, e);
        if self.physics.any() {
            apply_physics(
                &self.xs,
                mat,
                e,
                &self.physics,
                &self.slots[mat_id as usize],
                rng,
                &mut xs,
            );
        }
        xs
    }

    /// Sample `n` initial source sites: positions uniform over fuel
    /// regions (rejection against the bounding box), energies from the
    /// Watt spectrum. Deterministic in the problem seed and `stream_salt`.
    pub fn sample_initial_source(&self, n: usize, stream_salt: u64) -> Vec<SourceSite> {
        let mut rng = Lcg63::new(self.seed ^ stream_salt ^ 0x5085);
        let (lo, hi) = self.geometry.bounds;
        let span = hi - lo;
        let mut out = Vec::with_capacity(n);
        let mut guard = 0u64;
        while out.len() < n {
            guard += 1;
            assert!(
                guard < 100_000_000,
                "source sampling failed to find fuel; geometry misconfigured?"
            );
            let p = Vec3::new(
                lo.x + span.x * rng.next_uniform(),
                lo.y + span.y * rng.next_uniform(),
                lo.z + span.z * rng.next_uniform(),
            );
            match self.find(p) {
                Some(c) if self.materials[c.material as usize].is_fissionable() => {
                    let energy = sample_watt(&mut rng, WATT_A, WATT_B);
                    out.push(SourceSite { pos: p, energy });
                }
                _ => {}
            }
        }
        out
    }

    /// Number of materials.
    pub fn n_materials(&self) -> usize {
        self.materials.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_problem_assembles() {
        let p = Problem::test_small();
        assert_eq!(p.n_materials(), 3);
        let grid = p.xs.union_grid().expect("default backend is unionized");
        assert!(grid.n_points() > 100);
        assert_eq!(grid.n_nuclides(), p.xs.lib().len());
        assert!(p.physics.sab.is_some());
        assert_eq!(p.physics.urr.len(), 2);
        // Fuel contains the URR nuclides; water contains the sab nuclide.
        assert!(p.slots[0].urr.iter().all(|s| s.is_some()));
        assert!(p.slots[2].sab.is_some());
        assert!(p.slots[1].sab.is_none());
    }

    #[test]
    fn macro_xs_scalar_and_vector_agree_without_physics_draws() {
        let p = Problem::test_small();
        // Outside the URR and thermal ranges neither path draws RNG.
        let e = 0.5;
        let mut r1 = Lcg63::new(11);
        let mut r2 = Lcg63::new(11);
        let a = p.macro_xs(0, e, &mut r1);
        let b = p.macro_xs_vector(0, e, &mut r2);
        assert!(a.max_rel_diff(&b) < 1e-12);
        assert_eq!(r1, r2, "rng consumption must match");
    }

    #[test]
    fn urr_range_consumes_identical_draws_both_paths() {
        let p = Problem::test_small();
        let e = 5.0e-3; // inside URR
        let mut r1 = Lcg63::new(77);
        let mut r2 = Lcg63::new(77);
        let a = p.macro_xs(0, e, &mut r1);
        let b = p.macro_xs_vector(0, e, &mut r2);
        assert_eq!(r1, r2);
        assert!(a.max_rel_diff(&b) < 1e-10);
    }

    #[test]
    fn sab_enhances_water_at_thermal() {
        let p = Problem::test_small();
        let e = 1.0e-9;
        let mut rng = Lcg63::new(1);
        let with = p.macro_xs(2, e, &mut rng);
        // Compare against the raw context lookup (no physics).
        let raw = p.xs.macro_xs(&p.materials[2], e);
        assert!(with.elastic > raw.elastic * 1.5, "sab enhancement missing");
        assert!((with.absorption - raw.absorption).abs() < 1e-12);
    }

    #[test]
    fn all_backends_give_bitwise_identical_macro_xs_with_physics() {
        let problems: Vec<Problem> = GridBackendKind::ALL
            .iter()
            .map(|&k| Problem::test_small_with_backend(k))
            .collect();
        // Span thermal (S(α,β)), URR, and fast energies.
        for &e in &[1.0e-9, 5.0e-3, 0.5, 2.0] {
            for mat_id in 0..3u32 {
                let mut rngs: Vec<Lcg63> = (0..problems.len()).map(|_| Lcg63::new(42)).collect();
                let xs: Vec<MacroXs> = problems
                    .iter()
                    .zip(rngs.iter_mut())
                    .map(|(p, r)| p.macro_xs(mat_id, e, r))
                    .collect();
                for other in &xs[1..] {
                    assert_eq!(xs[0].total.to_bits(), other.total.to_bits());
                    assert_eq!(xs[0].nu_fission.to_bits(), other.nu_fission.to_bits());
                    assert_eq!(xs[0].elastic.to_bits(), other.elastic.to_bits());
                }
                for r in &rngs[1..] {
                    assert_eq!(&rngs[0], r, "rng consumption must match across backends");
                }
            }
        }
    }

    #[test]
    fn initial_source_sites_are_in_fuel() {
        let p = Problem::test_small();
        let sites = p.sample_initial_source(64, 0);
        assert_eq!(sites.len(), 64);
        for s in &sites {
            let c = p.geometry.find(s.pos).unwrap();
            assert_eq!(c.material, mcs_geom::hm::MAT_FUEL);
            assert!(s.energy > 0.0 && s.energy < 30.0);
        }
    }

    #[test]
    fn initial_source_is_deterministic_per_salt() {
        let p = Problem::test_small();
        let a = p.sample_initial_source(16, 3);
        let b = p.sample_initial_source(16, 3);
        let c = p.sample_initial_source(16, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
