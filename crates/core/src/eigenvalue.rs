//! k-eigenvalue batch driver: inactive + active batches with fission-bank
//! resampling.
//!
//! Mirrors OpenMC's power-iteration structure (§III-B1): inactive batches
//! converge the fission source (no tallies kept), active batches
//! accumulate tallies and k statistics. Each batch reports its
//! *calculation rate* (simulated neutrons per second) — the paper's
//! primary performance metric (Fig. 5, Table III).

use std::time::Duration;

use mcs_geom::Vec3;
use mcs_rng::Lcg63;

use crate::event::EventStats;
use crate::mesh::{MeshSpec, MeshStats, MeshTally};
use crate::particle::{Site, SourceSite};
use crate::tally::Tallies;

/// Which transport algorithm drives the batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// History-based (MIMD-style).
    History,
    /// Event-based banking (SIMD-style).
    Event,
}

/// Driver settings.
#[derive(Debug, Clone)]
pub struct EigenvalueSettings {
    /// Particles per batch.
    pub particles: usize,
    /// Source-convergence batches (not tallied).
    pub inactive: usize,
    /// Tallied batches.
    pub active: usize,
    /// Transport algorithm.
    pub mode: TransportMode,
    /// Shannon-entropy mesh (nx, ny, nz) over the geometry bounds.
    pub entropy_mesh: (usize, usize, usize),
    /// Optional user-defined mesh tally, scored during *active* batches
    /// only (which is why the paper distinguishes α_a from α_i).
    pub mesh_tally: Option<MeshSpec>,
}

impl EigenvalueSettings {
    /// A quick test configuration.
    pub fn test_scale() -> Self {
        Self {
            particles: 500,
            inactive: 2,
            active: 3,
            mode: TransportMode::History,
            entropy_mesh: (4, 4, 4),
            mesh_tally: None,
        }
    }
}

/// Per-batch record.
#[derive(Debug, Clone, Copy)]
pub struct BatchResult {
    /// Batch index (0-based over the whole run).
    pub index: usize,
    /// Tallied (active) batch?
    pub active: bool,
    /// Track-length k estimate.
    pub k_track: f64,
    /// Collision k estimate.
    pub k_collision: f64,
    /// Absorption k estimate.
    pub k_absorption: f64,
    /// Shannon entropy of the fission source (bits).
    pub entropy: f64,
    /// Wall time of the batch.
    pub wall: Duration,
    /// Calculation rate, neutrons/second.
    pub rate: f64,
}

/// Result of an eigenvalue run.
#[derive(Debug, Clone)]
pub struct EigenvalueResult {
    /// All batch records, inactive first.
    pub batches: Vec<BatchResult>,
    /// Mean track-length k over active batches.
    pub k_mean: f64,
    /// Standard error of the mean.
    pub k_std: f64,
    /// Merged tallies over active batches.
    pub tallies: Tallies,
    /// The accumulated user-defined mesh tally (if requested).
    pub mesh: Option<MeshTally>,
    /// Per-cell batch statistics for the mesh tally (if requested).
    pub mesh_stats: Option<MeshStats>,
    /// Event-pipeline counters aggregated over every batch (counts sum,
    /// peak bank is the max). `None` under [`TransportMode::History`].
    pub event_stats: Option<EventStats>,
    /// Total wall time.
    pub total_time: Duration,
}

impl EigenvalueResult {
    /// Mean calculation rate over batches matching `active`.
    pub fn mean_rate(&self, active: bool) -> f64 {
        let sel: Vec<f64> = self
            .batches
            .iter()
            .filter(|b| b.active == active)
            .map(|b| b.rate)
            .collect();
        if sel.is_empty() {
            0.0
        } else {
            sel.iter().sum::<f64>() / sel.len() as f64
        }
    }
}

/// Shannon entropy (bits) of fission sites on a mesh over `bounds`.
pub fn shannon_entropy(sites: &[Site], bounds: (Vec3, Vec3), mesh: (usize, usize, usize)) -> f64 {
    if sites.is_empty() {
        return 0.0;
    }
    let (lo, hi) = bounds;
    let span = hi - lo;
    let (nx, ny, nz) = mesh;
    let mut counts = vec![0u64; nx * ny * nz];
    for s in sites {
        let fx = ((s.pos.x - lo.x) / span.x).clamp(0.0, 1.0 - 1e-12);
        let fy = ((s.pos.y - lo.y) / span.y).clamp(0.0, 1.0 - 1e-12);
        let fz = ((s.pos.z - lo.z) / span.z).clamp(0.0, 1.0 - 1e-12);
        let i = (fx * nx as f64) as usize;
        let j = (fy * ny as f64) as usize;
        let k = (fz * nz as f64) as usize;
        counts[(k * ny + j) * nx + i] += 1;
    }
    let total = sites.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Resample `n` source sites from a fission bank (uniformly, with
/// replacement), deterministically in `seed`.
pub fn resample_source(sites: &[Site], n: usize, seed: u64) -> Vec<SourceSite> {
    assert!(
        !sites.is_empty(),
        "fission bank empty: source died out (increase particles or check fuel)"
    );
    let mut rng = Lcg63::new(seed);
    (0..n)
        .map(|_| {
            let idx = ((rng.next_uniform() * sites.len() as f64) as usize).min(sites.len() - 1);
            SourceSite {
                pos: sites[idx].pos,
                energy: sites[idx].energy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, Algorithm, RunPlan, Threaded};
    use crate::problem::Problem;

    /// Engine-plan twin of [`EigenvalueSettings::test_scale`].
    fn test_plan() -> RunPlan {
        RunPlan {
            particles: 500,
            inactive: 2,
            active: 3,
            entropy_mesh: (4, 4, 4),
            ..RunPlan::default()
        }
    }

    fn run_plan(problem: &Problem, plan: &RunPlan) -> EigenvalueResult {
        engine::run_with_problem(problem, plan, &mut Threaded::ambient())
            .into_eigenvalue()
            .result
    }

    #[test]
    fn eigenvalue_run_produces_sane_k() {
        let problem = Problem::test_small();
        let r = run_plan(&problem, &test_plan());
        assert_eq!(r.batches.len(), 5);
        assert_eq!(r.batches.iter().filter(|b| b.active).count(), 3);
        // A tiny single assembly with huge leakage: k in a broad
        // physical window.
        assert!(r.k_mean > 0.05 && r.k_mean < 2.0, "k = {}", r.k_mean);
        assert!(r.tallies.n_particles == 1500);
        for b in &r.batches {
            assert!(b.rate > 0.0);
            assert!(b.entropy >= 0.0);
        }
    }

    #[test]
    fn event_and_history_drivers_agree_statistically() {
        let problem = Problem::test_small();
        let mut plan = test_plan();
        let rh = run_plan(&problem, &plan);
        plan.algorithm = Algorithm::EventBanking;
        let re = run_plan(&problem, &plan);
        // Identical trajectories, resampling, and canonical float-tally
        // reduction ⇒ k per batch matches bit for bit.
        for (a, b) in rh.batches.iter().zip(&re.batches) {
            assert_eq!(
                a.k_track.to_bits(),
                b.k_track.to_bits(),
                "{} vs {}",
                a.k_track,
                b.k_track
            );
        }
        // Pipeline counters surface only from the event driver.
        assert!(rh.event_stats.is_none());
        let es = re.event_stats.expect("event driver reports stats");
        assert!(es.iterations >= 5, "5 batches, ≥1 generation each");
        assert!(es.lookups > 0);
        assert_eq!(es.peak_bank, plan.particles as u64);
    }

    #[test]
    fn grid_backends_produce_bitwise_identical_batches() {
        // The determinism contract of the unified lookup context: every
        // grid backend resolves the same interpolation intervals, so both
        // transport drivers yield bit-identical per-batch k under any of
        // them.
        use crate::problem::GridBackendKind;
        let mut plan = test_plan();
        for mode in [Algorithm::History, Algorithm::EventBanking] {
            plan.algorithm = mode;
            let runs: Vec<EigenvalueResult> = GridBackendKind::ALL
                .iter()
                .map(|&kind| run_plan(&Problem::test_small_with_backend(kind), &plan))
                .collect();
            for other in &runs[1..] {
                assert_eq!(runs[0].k_mean.to_bits(), other.k_mean.to_bits());
                assert_eq!(runs[0].tallies, other.tallies);
                for (a, b) in runs[0].batches.iter().zip(&other.batches) {
                    assert_eq!(
                        a.k_track.to_bits(),
                        b.k_track.to_bits(),
                        "batch {} diverges across backends ({mode:?})",
                        a.index
                    );
                    assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
                }
            }
        }
    }

    #[test]
    fn survival_biasing_agrees_with_analog_k() {
        // Implicit capture is an unbiased game: k agrees with the analog
        // run within combined Monte Carlo noise, while histories live
        // longer (more segments per source particle).
        let analog_problem = Problem::test_small();
        let mut biased_problem = Problem::test_small();
        biased_problem.treatment = crate::physics::AbsorptionTreatment::survival_default();

        let plan = RunPlan {
            particles: 2_000,
            inactive: 2,
            active: 6,
            entropy_mesh: (4, 4, 4),
            ..RunPlan::default()
        };
        let analog = run_plan(&analog_problem, &plan);
        let biased = run_plan(&biased_problem, &plan);
        let sigma = (analog.k_std.powi(2) + biased.k_std.powi(2))
            .sqrt()
            .max(1e-4);
        let diff = (analog.k_mean - biased.k_mean).abs();
        assert!(
            diff < 4.0 * sigma + 0.02,
            "k analog {:.4}±{:.4} vs biased {:.4}±{:.4}",
            analog.k_mean,
            analog.k_std,
            biased.k_mean,
            biased.k_std
        );
        // Survival-biased histories last longer.
        let segs_analog = analog.tallies.segments as f64 / analog.tallies.n_particles as f64;
        let segs_biased = biased.tallies.segments as f64 / biased.tallies.n_particles as f64;
        assert!(
            segs_biased > 1.1 * segs_analog,
            "{segs_biased:.1} vs {segs_analog:.1} segments/particle"
        );
    }

    #[test]
    fn survival_biasing_keeps_event_history_equality() {
        let mut problem = Problem::test_small();
        problem.treatment = crate::physics::AbsorptionTreatment::survival_default();
        let n = 400;
        let sources = problem.sample_initial_source(n, 0);
        let streams = crate::history::batch_streams(problem.seed, 0, n);
        let (hist, _, _) =
            crate::history::run_history_batch(&problem, &sources, &streams, None, false, None);
        let (evt, _, _) = crate::event::event_transport_mesh_impl(
            &problem,
            &sources,
            &streams,
            None,
            &crate::queueing::QueueingConfig::default(),
        );
        assert_eq!(hist.tallies.segments, evt.tallies.segments);
        assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
        assert_eq!(hist.tallies.absorptions, evt.tallies.absorptions);
        assert_eq!(hist.sites, evt.sites);
        let rel = (hist.tallies.k_track - evt.tallies.k_track).abs()
            / hist.tallies.k_track.abs().max(1e-300);
        assert!(rel < 1e-9);
    }

    #[test]
    fn mesh_tally_accumulates_only_active_batches() {
        let problem = Problem::test_small();
        let mut plan = test_plan();
        plan.mesh_tally = Some((4, 4, 2));
        let r = run_plan(&problem, &plan);
        let mesh = r.mesh.expect("mesh requested");
        assert!(mesh.total() > 0.0);
        // Mesh covers the whole geometry, so it captures (almost all of)
        // the active batches' track length. (Tiny shortfall: the paper-
        // thin escape segments beyond the outer boundary.)
        let ratio = mesh.total() / r.tallies.track_length;
        assert!((0.95..=1.0 + 1e-9).contains(&ratio), "ratio = {ratio}");
        // Peak cell is inside the fueled region, not at a corner.
        let (i, j, _, v) = mesh.peak();
        assert!(v > 0.0);
        assert!(i > 0 && i < 3 && j > 0 && j < 3, "peak at edge ({i},{j})");
    }

    #[test]
    fn mesh_tally_identical_between_history_and_event() {
        let problem = Problem::test_small();
        let mut plan = test_plan();
        plan.mesh_tally = Some((4, 4, 2));
        let rh = run_plan(&problem, &plan);
        plan.algorithm = Algorithm::EventBanking;
        let re = run_plan(&problem, &plan);
        let (mh, me) = (rh.mesh.unwrap(), re.mesh.unwrap());
        for (a, b) in mh.bins.iter().zip(&me.bins) {
            let denom = a.abs().max(1e-300);
            assert!((a - b).abs() / denom < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn entropy_of_point_source_is_zero() {
        let s = vec![Site {
            pos: Vec3::new(0.1, 0.1, 0.1),
            energy: 1.0,
            parent: 0,
            seq: 0,
        }];
        let h = shannon_entropy(
            &s,
            (Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0)),
            (4, 4, 4),
        );
        assert_eq!(h, 0.0);
    }

    #[test]
    fn entropy_of_uniform_source_is_near_max() {
        let mut rng = Lcg63::new(5);
        let sites: Vec<Site> = (0..20_000)
            .map(|i| Site {
                pos: Vec3::new(
                    2.0 * rng.next_uniform() - 1.0,
                    2.0 * rng.next_uniform() - 1.0,
                    2.0 * rng.next_uniform() - 1.0,
                ),
                energy: 1.0,
                parent: i,
                seq: 0,
            })
            .collect();
        let h = shannon_entropy(
            &sites,
            (Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0)),
            (4, 4, 4),
        );
        let max = (4.0f64 * 4.0 * 4.0).log2();
        assert!(h > 0.98 * max, "h = {h}, max = {max}");
    }

    #[test]
    fn resample_is_deterministic_and_in_bank() {
        let sites: Vec<Site> = (0..10)
            .map(|i| Site {
                pos: Vec3::new(i as f64, 0.0, 0.0),
                energy: i as f64 + 0.5,
                parent: i,
                seq: 0,
            })
            .collect();
        let a = resample_source(&sites, 20, 99);
        let b = resample_source(&sites, 20, 99);
        assert_eq!(a, b);
        for s in &a {
            assert!(sites.iter().any(|x| x.pos == s.pos && x.energy == s.energy));
        }
    }

    #[test]
    #[should_panic(expected = "fission bank empty")]
    fn resample_empty_bank_panics() {
        resample_source(&[], 10, 1);
    }
}
