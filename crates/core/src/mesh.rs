//! Mesh tallies: user-defined track-length flux scoring on a regular
//! grid.
//!
//! The paper notes (§III-B1) that α differs between inactive and active
//! batches "particularly if user-defined tallies are collected throughout
//! phase space" — this module provides exactly that kind of tally. Scoring
//! uses exact ray traversal (a 3-D DDA): every flight segment deposits its
//! per-cell path lengths, so the sum over the mesh equals the total track
//! length inside the mesh (a conservation property the tests check).

use mcs_geom::Vec3;

/// Mesh geometry specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshSpec {
    /// Lower corner.
    pub lo: Vec3,
    /// Upper corner.
    pub hi: Vec3,
    /// Cells in x.
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
    /// Cells in z.
    pub nz: usize,
}

impl MeshSpec {
    /// A mesh covering the given bounds.
    pub fn covering(bounds: (Vec3, Vec3), nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            lo: bounds.0,
            hi: bounds.1,
            nx,
            ny,
            nz,
        }
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// A track-length mesh tally.
#[derive(Debug, Clone)]
pub struct MeshTally {
    /// The mesh.
    pub spec: MeshSpec,
    /// Per-cell accumulated track length (cm), x-major.
    pub bins: Vec<f64>,
}

impl MeshTally {
    /// Fresh zeroed tally.
    pub fn new(spec: MeshSpec) -> Self {
        Self {
            bins: vec![0.0; spec.n_cells()],
            spec,
        }
    }

    /// Cell index for a point strictly inside the mesh.
    #[inline]
    fn cell_of(&self, p: Vec3) -> Option<(usize, usize, usize)> {
        let s = &self.spec;
        let fx = (p.x - s.lo.x) / (s.hi.x - s.lo.x);
        let fy = (p.y - s.lo.y) / (s.hi.y - s.lo.y);
        let fz = (p.z - s.lo.z) / (s.hi.z - s.lo.z);
        if !(0.0..1.0).contains(&fx) || !(0.0..1.0).contains(&fy) || !(0.0..1.0).contains(&fz) {
            return None;
        }
        Some((
            ((fx * s.nx as f64) as usize).min(s.nx - 1),
            ((fy * s.ny as f64) as usize).min(s.ny - 1),
            ((fz * s.nz as f64) as usize).min(s.nz - 1),
        ))
    }

    #[inline]
    fn flat(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.spec.ny + j) * self.spec.nx + i
    }

    /// Score a flight segment from `p` along unit `dir` for length `d`:
    /// exact per-cell path lengths via 3-D DDA. Portions of the segment
    /// outside the mesh are ignored.
    pub fn score_track(&mut self, p: Vec3, dir: Vec3, d: f64) {
        let s = self.spec;
        // Clip the segment to the mesh box.
        let (mut t0, mut t1) = (0.0f64, d);
        for (x0, x1, px, dx) in [
            (s.lo.x, s.hi.x, p.x, dir.x),
            (s.lo.y, s.hi.y, p.y, dir.y),
            (s.lo.z, s.hi.z, p.z, dir.z),
        ] {
            if dx.abs() < 1e-300 {
                if px < x0 || px >= x1 {
                    return;
                }
                continue;
            }
            let (ta, tb) = ((x0 - px) / dx, (x1 - px) / dx);
            let (ta, tb) = if ta < tb { (ta, tb) } else { (tb, ta) };
            t0 = t0.max(ta);
            t1 = t1.min(tb);
        }
        if t0 >= t1 {
            return;
        }

        // Walk cell boundaries with a DDA.
        let widths = Vec3::new(
            (s.hi.x - s.lo.x) / s.nx as f64,
            (s.hi.y - s.lo.y) / s.ny as f64,
            (s.hi.z - s.lo.z) / s.nz as f64,
        );
        let eps = 1e-12 * (t1 - t0).max(widths.x.min(widths.y).min(widths.z));
        let mut t = t0;
        let mut guard = 0usize;
        let max_steps = 4 * (s.nx + s.ny + s.nz) + 16;
        while t < t1 - eps {
            guard += 1;
            if guard > max_steps {
                break; // numerical corner-case safety valve
            }
            let probe = p + dir * (t + eps);
            let Some((i, j, k)) = self.cell_of(probe) else {
                break;
            };
            // Distance to this cell's exit along each axis.
            let mut t_exit = t1;
            for (axis, (lo, w, n_idx, pc, dc)) in [
                (0usize, (s.lo.x, widths.x, i, p.x, dir.x)),
                (1, (s.lo.y, widths.y, j, p.y, dir.y)),
                (2, (s.lo.z, widths.z, k, p.z, dir.z)),
            ] {
                let _ = axis;
                if dc.abs() < 1e-300 {
                    continue;
                }
                let wall = if dc > 0.0 {
                    lo + (n_idx as f64 + 1.0) * w
                } else {
                    lo + n_idx as f64 * w
                };
                let tw = (wall - pc) / dc;
                if tw > t + eps {
                    t_exit = t_exit.min(tw);
                }
            }
            let t_exit = t_exit.min(t1);
            let idx = self.flat(i, j, k);
            self.bins[idx] += t_exit - t;
            t = t_exit;
        }
    }

    /// Fold another tally (same spec) into this one.
    pub fn merge(&mut self, o: &MeshTally) {
        assert_eq!(self.spec, o.spec);
        for (a, b) in self.bins.iter_mut().zip(&o.bins) {
            *a += b;
        }
    }

    /// Total track length deposited.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// The hottest cell: `(i, j, k, value)`.
    pub fn peak(&self) -> (usize, usize, usize, f64) {
        let (idx, &v) = self
            .bins
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let i = idx % self.spec.nx;
        let j = (idx / self.spec.nx) % self.spec.ny;
        let k = idx / (self.spec.nx * self.spec.ny);
        (i, j, k, v)
    }
}

/// Per-cell batch statistics for a mesh tally: accumulates each active
/// batch's mesh as one observation, yielding cell-wise means and relative
/// standard errors — the uncertainty map every production MC code reports
/// alongside its flux maps.
#[derive(Debug, Clone)]
pub struct MeshStats {
    /// The mesh.
    pub spec: MeshSpec,
    /// Per-cell sum of batch scores.
    pub sum: Vec<f64>,
    /// Per-cell sum of squared batch scores.
    pub sum_sq: Vec<f64>,
    /// Number of batches observed.
    pub n_batches: usize,
}

impl MeshStats {
    /// Fresh accumulator.
    pub fn new(spec: MeshSpec) -> Self {
        Self {
            sum: vec![0.0; spec.n_cells()],
            sum_sq: vec![0.0; spec.n_cells()],
            spec,
            n_batches: 0,
        }
    }

    /// Fold in one batch's mesh tally.
    pub fn observe(&mut self, batch: &MeshTally) {
        assert_eq!(self.spec, batch.spec);
        for ((s, sq), &b) in self.sum.iter_mut().zip(&mut self.sum_sq).zip(&batch.bins) {
            *s += b;
            *sq += b * b;
        }
        self.n_batches += 1;
    }

    /// Per-cell batch means.
    pub fn means(&self) -> Vec<f64> {
        let n = self.n_batches.max(1) as f64;
        self.sum.iter().map(|&s| s / n).collect()
    }

    /// Per-cell relative standard error of the mean (0 where the mean is
    /// zero or fewer than two batches were observed).
    pub fn relative_errors(&self) -> Vec<f64> {
        let n = self.n_batches as f64;
        if self.n_batches < 2 {
            return vec![0.0; self.sum.len()];
        }
        self.sum
            .iter()
            .zip(&self.sum_sq)
            .map(|(&s, &sq)| {
                let mean = s / n;
                if mean <= 0.0 {
                    return 0.0;
                }
                let var = (sq / n - mean * mean).max(0.0) / (n - 1.0);
                var.sqrt() / mean
            })
            .collect()
    }

    /// Maximum relative error over cells whose mean exceeds `floor`
    /// (ignoring nearly-empty cells, whose errors are meaningless).
    pub fn max_relative_error(&self, floor: f64) -> f64 {
        let means = self.means();
        self.relative_errors()
            .iter()
            .zip(&means)
            .filter(|(_, &m)| m > floor)
            .map(|(&e, _)| e)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_mesh(n: usize) -> MeshTally {
        MeshTally::new(MeshSpec {
            lo: Vec3::new(0.0, 0.0, 0.0),
            hi: Vec3::new(1.0, 1.0, 1.0),
            nx: n,
            ny: n,
            nz: n,
        })
    }

    #[test]
    fn track_fully_inside_one_cell() {
        let mut m = unit_mesh(2);
        m.score_track(Vec3::new(0.1, 0.1, 0.1), Vec3::new(1.0, 0.0, 0.0), 0.2);
        assert!((m.total() - 0.2).abs() < 1e-12);
        let (i, j, k, v) = m.peak();
        assert_eq!((i, j, k), (0, 0, 0));
        assert!((v - 0.2).abs() < 1e-12);
    }

    #[test]
    fn track_crossing_cells_conserves_length() {
        let mut m = unit_mesh(4);
        let dir = Vec3::new(1.0, 1.0, 0.3).normalized();
        m.score_track(Vec3::new(0.05, 0.1, 0.2), dir, 0.9);
        assert!((m.total() - 0.9).abs() < 1e-9, "total = {}", m.total());
        // Multiple cells touched.
        assert!(m.bins.iter().filter(|&&b| b > 0.0).count() >= 3);
    }

    #[test]
    fn track_outside_mesh_scores_nothing() {
        let mut m = unit_mesh(2);
        m.score_track(Vec3::new(5.0, 5.0, 5.0), Vec3::new(1.0, 0.0, 0.0), 1.0);
        assert_eq!(m.total(), 0.0);
    }

    #[test]
    fn track_clipped_at_mesh_faces() {
        let mut m = unit_mesh(2);
        // Enters at x=0, exits at x=1; only the inside metre counts.
        m.score_track(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0), 3.0);
        assert!((m.total() - 1.0).abs() < 1e-9);
        // Both x-cells got half each.
        let a = m.bins[m.flat(0, 1, 1)];
        let b = m.bins[m.flat(1, 1, 1)];
        assert!((a - 0.5).abs() < 1e-9 && (b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn axis_parallel_track_on_cell_boundary_is_safe() {
        let mut m = unit_mesh(2);
        // Travels exactly along the x midplane: must not panic, must
        // conserve length.
        m.score_track(Vec3::new(0.0, 0.5, 0.25), Vec3::new(1.0, 0.0, 0.0), 1.0);
        assert!((m.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_bins() {
        let mut a = unit_mesh(2);
        let mut b = unit_mesh(2);
        a.score_track(Vec3::new(0.1, 0.1, 0.1), Vec3::new(1.0, 0.0, 0.0), 0.3);
        b.score_track(Vec3::new(0.1, 0.1, 0.1), Vec3::new(1.0, 0.0, 0.0), 0.4);
        a.merge(&b);
        assert!((a.total() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn stats_relative_errors_shrink_with_batches() {
        // Feed i.i.d. noisy batches; the relative error of the mean must
        // fall like 1/sqrt(n_batches).
        let spec = MeshSpec {
            lo: Vec3::new(0.0, 0.0, 0.0),
            hi: Vec3::new(1.0, 1.0, 1.0),
            nx: 2,
            ny: 1,
            nz: 1,
        };
        let mut rng = mcs_rng::Lcg63::new(17);
        let run = |n_batches: usize, rng: &mut mcs_rng::Lcg63| {
            let mut stats = MeshStats::new(spec);
            for _ in 0..n_batches {
                let mut m = MeshTally::new(spec);
                m.bins[0] = 10.0 + rng.next_uniform();
                m.bins[1] = 5.0 + 0.5 * rng.next_uniform();
                stats.observe(&m);
            }
            stats.max_relative_error(0.0)
        };
        let few = run(8, &mut rng);
        let many = run(512, &mut rng);
        assert!(few > 0.0 && many > 0.0);
        assert!(
            many < few / 3.0,
            "errors should shrink ~8x: few={few:.4} many={many:.4}"
        );
    }

    #[test]
    fn stats_edge_cases_are_safe() {
        let spec = MeshSpec {
            lo: Vec3::new(0.0, 0.0, 0.0),
            hi: Vec3::new(1.0, 1.0, 1.0),
            nx: 1,
            ny: 1,
            nz: 1,
        };
        let mut stats = MeshStats::new(spec);
        assert_eq!(stats.relative_errors(), vec![0.0]);
        let m = MeshTally::new(spec); // all-zero batch
        stats.observe(&m);
        stats.observe(&m);
        assert_eq!(stats.relative_errors(), vec![0.0]); // zero mean ⇒ 0
        assert_eq!(stats.means(), vec![0.0]);
    }

    #[test]
    fn random_tracks_conserve_length_property() {
        let mut rng = mcs_rng::Lcg63::new(31);
        let mut m = unit_mesh(5);
        let mut expected = 0.0;
        for _ in 0..500 {
            // Start inside, direction random, length random but short
            // enough to stay inside (max distance from center to corner
            // keeps some outside — so clip manually by checking).
            let p = Vec3::new(
                0.2 + 0.6 * rng.next_uniform(),
                0.2 + 0.6 * rng.next_uniform(),
                0.2 + 0.6 * rng.next_uniform(),
            );
            let dir = Vec3::isotropic(rng.next_uniform(), rng.next_uniform());
            let d = 0.1 * rng.next_uniform();
            // Segment guaranteed inside: start ≥0.2 from faces, d ≤ 0.1.
            m.score_track(p, dir, d);
            expected += d;
        }
        assert!(
            ((m.total() - expected) / expected).abs() < 1e-9,
            "deposited {} expected {}",
            m.total(),
            expected
        );
    }
}
