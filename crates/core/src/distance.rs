//! The Table-I distance-sampling micro-kernels.
//!
//! Three implementations of "compute `D[j] = −ln(r_j)/X[j]` for a banked
//! array of cross sections", exactly as the paper stages them:
//!
//! * [`sample_distances_naive`] — Algorithm 3: one `rand_r()` call and one
//!   scalar `ln` per element. The serial dependency chain inside `rand_r`
//!   and the per-call overhead make this catastrophic on a
//!   many-slow-core device (Table I: 8,243 s on the MIC).
//! * [`sample_distances_opt1`] — batched counter-based RNG (the VSL
//!   stand-in) filling `R` up front, then a plain scalar loop with libm
//!   `ln` (no manual vectorization).
//! * [`sample_distances_opt2`] — Algorithm 4: batched RNG + explicit
//!   16-lane vector kernel (`load R`, `load X`, `vlog`, `div`, `mul −1`,
//!   `store`) over 64-byte-aligned buffers.
//!
//! All three work in `f32` like the paper's kernels.

use mcs_rng::{NaiveRandR, StreamPartition};
use mcs_simd::math::vln;
use mcs_simd::{AVec32, F32x16};

/// Algorithm 3: per-element `rand_r` + scalar `ln`.
///
/// `seed` plays the role of the thread-private `unsigned int` seed.
pub fn sample_distances_naive(xs: &[f32], out: &mut [f32], seed: u32) {
    assert_eq!(xs.len(), out.len());
    let mut rng = NaiveRandR::new(seed);
    for (x, d) in xs.iter().zip(out.iter_mut()) {
        let r = rng.next_uniform_f32();
        *d = -r.ln() / x;
    }
}

/// Optimized-1: batch-RNG fill, then a plain scalar loop (libm `ln`).
///
/// `partition` provides the pre-filled uniforms buffer semantics of VSL
/// streams: call with a scratch `r` buffer the same length as `xs`.
pub fn sample_distances_opt1(
    xs: &[f32],
    r: &mut [f32],
    out: &mut [f32],
    partition: &mut StreamPartition,
) {
    assert_eq!(xs.len(), out.len());
    assert_eq!(xs.len(), r.len());
    partition.fill_f32(r);
    for j in 0..xs.len() {
        out[j] = -r[j].ln() / xs[j];
    }
}

/// Optimized-2 (Algorithm 4): batch RNG + explicit 16-lane kernel.
pub fn sample_distances_opt2(
    xs: &AVec32,
    r: &mut AVec32,
    out: &mut AVec32,
    partition: &mut StreamPartition,
) {
    assert_eq!(xs.len(), out.len());
    assert_eq!(xs.len(), r.len());
    partition.fill_f32(r.as_mut_slice());

    let n = xs.len();
    let full = n / 16 * 16;
    let x = xs.as_slice();
    let rr = r.as_slice();
    let o = out.as_mut_slice();

    let neg1 = F32x16::splat(-1.0);
    let mut j = 0;
    while j < full {
        // Algorithm 4 lines 12–18, one intrinsic per line.
        let v1 = F32x16::from_slice(&rr[j..]); // _mm512_load_ps(R+j)
        let v2 = F32x16::from_slice(&x[j..]); //  _mm512_load_ps(X+j)
        let v3 = vln(v1); //                      _mm512_log_ps
        let v4 = v3 / v2; //                      _mm512_div_ps
        let v6 = v4 * neg1; //                    _mm512_mul_ps
        v6.write_to_slice(&mut o[j..]); //        _mm512_store_ps
        j += 16;
    }
    // Remainder with the same polynomial log (bit-identical math).
    for jj in full..n {
        o[jj] = -mcs_simd::math::ln_f32(rr[jj]) / x[jj];
    }
}

/// Reference distances for a given uniforms buffer (f64 math, for
/// accuracy tests).
pub fn reference_distances(xs: &[f32], r: &[f32]) -> Vec<f32> {
    xs.iter()
        .zip(r)
        .map(|(&x, &u)| (-(u as f64).ln() / x as f64) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 4096;

    fn xs_buffer() -> AVec32 {
        // Cross sections in a realistic Σ_t range (0.1–2 cm⁻¹).
        AVec32::from_slice(
            &(0..N)
                .map(|i| 0.1 + 1.9 * ((i * 37 % N) as f32 / N as f32))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn naive_produces_positive_distances_with_correct_mean() {
        let xs = vec![0.5f32; N];
        let mut out = vec![0.0f32; N];
        sample_distances_naive(&xs, &mut out, 1);
        assert!(out.iter().all(|&d| d > 0.0));
        // E[-ln U] = 1 ⇒ E[d] = 1/Σ = 2.0.
        let mean = out.iter().map(|&d| d as f64).sum::<f64>() / N as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn opt1_matches_reference_given_same_uniforms() {
        let xs = xs_buffer();
        let mut r = vec![0.0f32; N];
        let mut out = vec![0.0f32; N];
        let mut p = StreamPartition::new(9, 4);
        sample_distances_opt1(xs.as_slice(), &mut r, &mut out, &mut p);
        let want = reference_distances(xs.as_slice(), &r);
        for j in 0..N {
            let rel = ((out[j] - want[j]) / want[j]).abs();
            assert!(rel < 1e-5, "j={j} got={} want={}", out[j], want[j]);
        }
    }

    #[test]
    fn opt2_matches_opt1_within_polynomial_accuracy() {
        let xs = xs_buffer();
        let mut r1 = vec![0.0f32; N];
        let mut out1 = vec![0.0f32; N];
        let mut p1 = StreamPartition::new(42, 8);
        sample_distances_opt1(xs.as_slice(), &mut r1, &mut out1, &mut p1);

        let mut r2 = AVec32::zeros(N);
        let mut out2 = AVec32::zeros(N);
        let mut p2 = StreamPartition::new(42, 8);
        sample_distances_opt2(&xs, &mut r2, &mut out2, &mut p2);

        // Same streams ⇒ same uniforms.
        assert_eq!(r1, r2.as_slice());
        for j in 0..N {
            let rel = ((out1[j] - out2[j]) / out1[j]).abs();
            assert!(rel < 5e-6, "j={j}: {} vs {}", out1[j], out2[j]);
        }
    }

    #[test]
    fn opt2_handles_non_multiple_of_16() {
        let n = 100;
        let xs = AVec32::from_slice(&vec![1.0f32; n]);
        let mut r = AVec32::zeros(n);
        let mut out = AVec32::zeros(n);
        let mut p = StreamPartition::new(7, 2);
        sample_distances_opt2(&xs, &mut r, &mut out, &mut p);
        assert!(out.as_slice().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn successive_iterations_draw_fresh_numbers() {
        let xs = xs_buffer();
        let mut r = AVec32::zeros(N);
        let mut out = AVec32::zeros(N);
        let mut p = StreamPartition::new(3, 4);
        sample_distances_opt2(&xs, &mut r, &mut out, &mut p);
        let first = out.as_slice().to_vec();
        sample_distances_opt2(&xs, &mut r, &mut out, &mut p);
        assert_ne!(first, out.as_slice());
    }
}
