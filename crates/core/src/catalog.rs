//! The model catalog: named problem scenarios with parameter overrides.
//!
//! A [`ModelSpec`] names a catalog entry and
//! optionally overrides a few [`CoreSpec`] parameters; this module maps
//! the spec to a [`ProblemConfig`] + nuclide library and assembles the
//! [`Problem`]. Five entries exist:
//!
//! | name     | library    | geometry                                   |
//! |----------|------------|--------------------------------------------|
//! | `test`   | tiny (7)   | HM single assembly, short axial extent     |
//! | `small`  | HM small   | HM full core, 34 fuel nuclides             |
//! | `large`  | HM large   | HM full core, 320 fuel nuclides            |
//! | `smr`    | HM small   | ExaSMR-style 37-assembly core, 3 zones,    |
//! |          |            | rodded centre                              |
//! | `shield` | tiny (7)   | one assembly in a 5×5 water tank           |
//!
//! `test`, `small`, and `large` are the historic `ModelRef` scenarios:
//! they build **bit-identically** to the pre-catalog problems (same
//! library spec, same geometry construction, same materials), so every
//! golden result carries over unchanged.

use mcs_geom::{CoreSpec, TraversalKind};
use mcs_xs::LibrarySpec;

use crate::engine::ModelSpec;
use crate::problem::{Problem, ProblemConfig};

/// Names of all catalog entries, in presentation order.
pub const NAMES: [&str; 5] = ["test", "small", "large", "smr", "shield"];

/// One-line description per entry, parallel to [`NAMES`].
pub const DESCRIPTIONS: [&str; 5] = [
    "single HM assembly, tiny 7-nuclide library (unit-test scale)",
    "Hoogenboom-Martin full core, 34 fuel nuclides",
    "Hoogenboom-Martin full core, 320 fuel nuclides (the paper's benchmark)",
    "ExaSMR-style SMR: 37 assemblies, 3 enrichment zones, rodded centre",
    "shielding variant: one assembly in a 5x5 deep-water tank",
];

/// Is `name` a catalog entry?
pub fn is_known(name: &str) -> bool {
    NAMES.contains(&name)
}

/// The comma-separated entry list (for error messages and usage text).
pub fn names_joined() -> String {
    NAMES.join(", ")
}

/// The nuclide library a catalog entry loads (before grid-density and
/// temperature adjustments from the [`ProblemConfig`]).
pub fn library_for(name: &str) -> Result<LibrarySpec, String> {
    match name {
        "test" | "shield" => Ok(LibrarySpec::tiny()),
        "small" | "smr" => Ok(LibrarySpec::hm_small()),
        "large" => Ok(LibrarySpec::hm_large()),
        other => Err(unknown_model(other)),
    }
}

/// The standard "no such model" message, naming the valid entries.
pub fn unknown_model(name: &str) -> String {
    format!(
        "unknown model \"{name}\" (valid catalog entries: {})",
        names_joined()
    )
}

/// Resolve a [`ModelSpec`] to the problem configuration it describes
/// (catalog baseline + overrides applied). Cheap — does not build the
/// nuclide library.
pub fn config_for(spec: &ModelSpec) -> Result<ProblemConfig, String> {
    let mut cfg = match spec.name.as_str() {
        "test" => ProblemConfig::test_scale(),
        "small" | "large" => ProblemConfig::default(),
        "smr" => ProblemConfig {
            core: CoreSpec::smr(),
            ..ProblemConfig::default()
        },
        "shield" => ProblemConfig {
            grid_density: 0.25,
            core: CoreSpec::shield(),
            ..ProblemConfig::default()
        },
        other => return Err(unknown_model(other)),
    };
    let o = &spec.overrides;
    if let Some(n) = o.assemblies {
        if n == 0 {
            return Err("model override `assemblies` must be at least 1".into());
        }
        let cap = cfg.core.core_lattice_n * cfg.core.core_lattice_n;
        if n > cap {
            return Err(format!(
                "model override `assemblies = {n}` exceeds the {cap}-position core lattice"
            ));
        }
        cfg.core.n_assemblies = n;
    }
    if let Some(e) = o.enrichment {
        if !(e.is_finite() && e > 0.0) {
            return Err(format!(
                "model override `enrichment = {e}` must be a positive finite multiplier"
            ));
        }
        for z in &mut cfg.core.enrichment_zones {
            *z *= e;
        }
    }
    if let Some(r) = o.rods {
        cfg.core.rods = r;
    }
    if let Some(h) = o.half_height {
        if !(h.is_finite() && h > 0.0) {
            return Err(format!(
                "model override `half_height = {h}` must be a positive length (cm)"
            ));
        }
        cfg.core.half_height = h;
    }
    if cfg.core.n_materials() > 8 {
        return Err(format!(
            "model \"{}\" with overrides needs {} materials; the tally arrays hold 8",
            spec.name,
            cfg.core.n_materials()
        ));
    }
    Ok(cfg)
}

/// Build the problem a [`ModelSpec`] describes under the given traversal
/// treatment. The config is validated by [`config_for`]; library contexts
/// are shared through the process-wide cache, so repeated builds of the
/// same entry are cheap.
pub fn build(spec: &ModelSpec, traversal: TraversalKind) -> Result<Problem, String> {
    let mut cfg = config_for(spec)?;
    cfg.traversal = traversal;
    let lib_spec = library_for(&spec.name)?
        .with_grid_density(cfg.grid_density)
        .with_fuel_temperature(cfg.fuel_temperature_k);
    Ok(Problem::from_config(
        mcs_xs::cache::context_for_spec(&lib_spec, cfg.grid_backend),
        &cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ModelOverrides;

    #[test]
    fn every_entry_has_a_config_and_library() {
        for name in NAMES {
            let spec = ModelSpec::named(name);
            assert!(config_for(&spec).is_ok(), "{name}");
            assert!(library_for(name).is_ok(), "{name}");
        }
        assert_eq!(NAMES.len(), DESCRIPTIONS.len());
    }

    #[test]
    fn unknown_entry_names_the_catalog() {
        let e = config_for(&ModelSpec::named("warp-core")).unwrap_err();
        assert!(e.contains("warp-core"));
        for name in NAMES {
            assert!(e.contains(name), "error should list {name}: {e}");
        }
    }

    #[test]
    fn overrides_reshape_the_core() {
        let spec = ModelSpec {
            name: "shield".into(),
            overrides: ModelOverrides {
                assemblies: Some(5),
                enrichment: Some(1.5),
                rods: Some(mcs_geom::RodPattern::Checkerboard),
                half_height: Some(60.0),
            },
        };
        let cfg = config_for(&spec).expect("valid overrides");
        assert_eq!(cfg.core.n_assemblies, 5);
        assert_eq!(cfg.core.enrichment_zones, vec![1.5]);
        assert_eq!(cfg.core.rods, mcs_geom::RodPattern::Checkerboard);
        assert_eq!(cfg.core.half_height, 60.0);
    }

    #[test]
    fn bad_overrides_are_rejected() {
        let bad = |o: ModelOverrides| {
            config_for(&ModelSpec {
                name: "test".into(),
                overrides: o,
            })
            .unwrap_err()
        };
        assert!(bad(ModelOverrides {
            assemblies: Some(0),
            ..Default::default()
        })
        .contains("assemblies"));
        assert!(bad(ModelOverrides {
            assemblies: Some(999),
            ..Default::default()
        })
        .contains("exceeds"));
        assert!(bad(ModelOverrides {
            enrichment: Some(-1.0),
            ..Default::default()
        })
        .contains("enrichment"));
        assert!(bad(ModelOverrides {
            half_height: Some(0.0),
            ..Default::default()
        })
        .contains("half_height"));
    }

    #[test]
    fn test_entry_matches_the_historic_test_problem() {
        // The catalog path and the historic constructor must agree on
        // every config field that feeds the build.
        let cfg = config_for(&ModelSpec::test()).unwrap();
        let legacy = ProblemConfig::test_scale();
        assert_eq!(cfg.grid_density, legacy.grid_density);
        assert_eq!(cfg.core, legacy.core);
        assert_eq!(cfg.seed, legacy.seed);
    }
}
