//! End-to-end tests for `mcs serve` over a real TCP socket.
//!
//! These exercise the full stack — client codec, server framing,
//! scheduler, engine, cache — and pin the service's core contract:
//! a plan served from cache is `to_bits`-identical to the cold run
//! and costs zero additional cross-section lookups.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use mcs::core::engine::{self, ModelSpec, PolicySpec, RunPlan, Serial};
use mcs::serve::{Client, Priority, Request, Response, ServeConfig, ServedResult, Server, Source};

fn tiny_plan(salt: u64) -> RunPlan {
    RunPlan {
        particles: 64,
        inactive: 1,
        active: 2,
        entropy_mesh: (2, 2, 2),
        seed: Some(0xe2e_000 + salt),
        ..RunPlan::default()
    }
}

fn test_server(cfg: ServeConfig) -> (Server, Client) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let client = Client::connect(server.local_addr()).expect("connect");
    (server, client)
}

#[test]
fn cache_hit_is_bit_identical_and_relookup_free() {
    let (server, mut client) = test_server(ServeConfig::default());
    let plan = tiny_plan(1);

    let (src_cold, cold) = client.run(&plan, Priority::Normal).expect("cold run");
    assert_eq!(src_cold, Source::Run);
    let lookups_after_cold = client.stats().expect("stats").xs_lookups;
    assert!(lookups_after_cold > 0, "a cold run performs xs lookups");

    let (src_hit, hit) = client.run(&plan, Priority::Normal).expect("cache hit");
    assert_eq!(src_hit, Source::Cache);
    // The acceptance contract: bit-identical payload (ServedResult's
    // Eq is over float *bit patterns*), and the engine never ran —
    // the global lookup counter did not move.
    assert_eq!(cold, hit);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.xs_lookups, lookups_after_cold);
    assert_eq!(stats.cold_runs, 1);
    assert_eq!(stats.cache_hits, 1);

    // The served result matches a direct in-process serial run of the
    // same plan, bit for bit: the service adds no numerical noise.
    let report = engine::run_with_problem(&plan.build_problem(), &plan, &mut Serial::new())
        .into_eigenvalue();
    let local = ServedResult::from_report(mcs::serve::plan_hash(&plan), &report);
    assert_eq!(*cold, local);

    server.shutdown();
}

#[test]
fn concurrent_identical_submissions_run_the_engine_once() {
    const N: u64 = 8;
    let plan = tiny_plan(2);

    // Reference cost: one cold run of this exact plan on a fresh
    // server. Determinism makes the lookup count a stable fingerprint.
    let (ref_server, mut ref_client) = test_server(ServeConfig::default());
    ref_client
        .run(&plan, Priority::Normal)
        .expect("reference run");
    let one_run_lookups = ref_client.stats().expect("stats").xs_lookups;
    ref_server.shutdown();

    // Now N identical submissions pipelined while the workers are
    // paused, so every one of them is in flight simultaneously.
    let (server, mut client) = test_server(ServeConfig::default());
    server.scheduler().pause();
    let ids: Vec<u64> = (0..N)
        .map(|_| {
            client
                .submit(&plan, Priority::Normal, false)
                .expect("submit")
        })
        .collect();
    // Stats round-trip as a barrier: it orders this client behind its
    // own pipelined submit frames, so every submission is in flight
    // (not still in the reader's parse queue) when the workers resume.
    client.stats().expect("barrier");
    server.scheduler().resume();

    let mut results = Vec::new();
    for id in ids {
        let (_, result) = client.wait_result(id).expect("result");
        results.push(result);
    }
    for r in &results[1..] {
        assert_eq!(results[0], *r, "all subscribers receive identical bits");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.cold_runs, 1,
        "engine executed once for {N} submissions"
    );
    assert_eq!(stats.coalesced, N - 1);
    assert_eq!(
        stats.xs_lookups, one_run_lookups,
        "xs lookup delta equals exactly one run"
    );
    server.shutdown();
}

#[test]
fn mixed_policy_submissions_share_one_cache_entry() {
    let (server, mut client) = test_server(ServeConfig::default());
    let base = tiny_plan(3);
    let plans = [
        RunPlan {
            policy: PolicySpec::Serial,
            ..base.clone()
        },
        RunPlan {
            policy: PolicySpec::Threaded { threads: 4 },
            ..base.clone()
        },
        RunPlan {
            policy: PolicySpec::Distributed { ranks: 3 },
            ..base
        },
    ];

    let mut results = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let (source, result) = client.run(plan, Priority::Normal).expect("run");
        // The policy is execution advice, not physics: the first
        // submission runs cold, the rest hit the same cache line.
        if i == 0 {
            assert_eq!(source, Source::Run);
        } else {
            assert_eq!(source, Source::Cache);
        }
        results.push(result);
    }
    for r in &results[1..] {
        assert_eq!(results[0], *r);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cold_runs, 1);
    assert_eq!(
        stats.cache_entries, 1,
        "three policies, one canonical entry"
    );
    server.shutdown();
}

#[test]
fn catalog_models_occupy_distinct_cache_lines() {
    // Two catalog models over the same particle budget and seed must
    // never share a cache entry: the plan hash digests the model spec,
    // so "test" and "shield" each run cold once and then hit only
    // their own line.
    let (server, mut client) = test_server(ServeConfig::default());
    let plans = [
        RunPlan {
            model: ModelSpec::test(),
            ..tiny_plan(4)
        },
        RunPlan {
            model: ModelSpec::named("shield"),
            ..tiny_plan(4)
        },
    ];
    assert_ne!(
        mcs::serve::plan_hash(&plans[0]),
        mcs::serve::plan_hash(&plans[1]),
        "model spec must be part of the plan identity"
    );

    let mut cold = Vec::new();
    for plan in &plans {
        let (source, result) = client.run(plan, Priority::Normal).expect("cold run");
        assert_eq!(source, Source::Run);
        cold.push(result);
    }
    assert_ne!(
        cold[0], cold[1],
        "different models must produce different physics"
    );

    // Replays hit the cache — and each model gets *its own* bits back.
    for (plan, expected) in plans.iter().zip(&cold) {
        let (source, result) = client.run(plan, Priority::Normal).expect("cache hit");
        assert_eq!(source, Source::Cache);
        assert_eq!(result, *expected, "cache returned the wrong model's result");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cold_runs, 2, "one engine run per model");
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_entries, 2, "no cross-model sharing");
    server.shutdown();
}

#[test]
fn buffered_rejections_do_not_starve_an_earlier_wait() {
    // Regression test: with the workers paused, overflow submissions
    // are rejected synchronously, so the socket holds Rejected frames
    // for *later* ids ahead of the Result for id 0. `wait_result(0)`
    // must buffer those terminal events once and keep reading fresh
    // frames — an earlier client looped over its own pending buffer
    // and spun forever on the first non-matching Rejected.
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    };
    let (server, mut client) = test_server(cfg);
    server.scheduler().pause();
    let ids: Vec<u64> = (0..6)
        .map(|salt| {
            client
                .submit(&tiny_plan(10 + salt), Priority::Normal, false)
                .expect("submit")
        })
        .collect();
    // Barrier before resuming, so the admitted/rejected split is exact
    // (see concurrent_identical_submissions_run_the_engine_once). The
    // rejections it reads past land in the client's pending buffer —
    // exactly the state the original bug spun on.
    client.stats().expect("barrier");
    server.scheduler().resume();

    // The client now holds buffered Rejected events for ids 2..6;
    // waiting on id 0 must skip over them and read fresh frames.
    let (source, _) = client.wait_result(ids[0]).expect("first admitted result");
    assert_eq!(source, Source::Run);

    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for &id in &ids[1..] {
        match client.wait_result(id) {
            Ok(_) => admitted += 1,
            Err(mcs::serve::ClientError::Rejected(_)) => rejected += 1,
            Err(e) => panic!("unexpected client error: {e}"),
        }
    }
    assert_eq!(admitted, 1, "queue cap admits exactly two distinct plans");
    assert_eq!(rejected, 4, "the four overflow submissions are refused");
    server.shutdown();
}

#[test]
fn garbage_frame_gets_typed_error_and_connection_survives() {
    let (server, _client) = test_server(ServeConfig::default());

    // Raw socket: the Client won't emit malformed frames, so speak the
    // wire format by hand.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    writeln!(writer, "{{\"op\":\"launch-missiles\"}}").expect("write");
    writeln!(writer, "this is not even json").expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    for _ in 0..2 {
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert!(
            matches!(Response::parse(line.trim_end()), Ok(Response::Error { .. })),
            "bad frame answered with a typed error, got: {line}"
        );
    }

    // The same connection still serves well-formed requests.
    writeln!(writer, "{}", Request::Stats.to_line()).expect("write");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(matches!(
        Response::parse(line.trim_end()),
        Ok(Response::Stats(_))
    ));
    server.shutdown();
}
