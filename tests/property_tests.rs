//! Property-based integration tests over the public API.

use mcs::geom::{hm_core, HmConfig, Vec3};
use mcs::rng::{Lcg63, Philox4x32};
use mcs::simd::math::{exp_f32, ln_f32};
use mcs::simd::{F32x16, F64x8};
use mcs::xs::grid::lower_bound_index;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lcg_skip_equals_stepping(seed in any::<u64>(), n in 0u64..5_000) {
        let mut seq = Lcg63::new(seed);
        for _ in 0..n {
            seq.next_state();
        }
        let jumped = Lcg63::new(seed).skipped(n);
        prop_assert_eq!(seq.state(), jumped.state());
    }

    #[test]
    fn philox_streams_never_collide_early(s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let mut a = Philox4x32::new(s1);
        let mut b = Philox4x32::new(s2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        prop_assert_ne!(va, vb);
    }

    #[test]
    fn vector_reduce_sum_matches_scalar(vals in prop::array::uniform16(-1e6f32..1e6f32)) {
        let v = F32x16(vals);
        let scalar: f32 = vals.iter().sum();
        // Pairwise-tree vs sequential summation differ by rounding only.
        let diff = (v.reduce_sum() - scalar).abs();
        let scale = vals.iter().map(|x| x.abs()).sum::<f32>().max(1.0);
        prop_assert!(diff <= 1e-3 * scale);
    }

    #[test]
    fn vector_ops_match_lanewise_scalar(a in prop::array::uniform8(-1e9f64..1e9f64),
                                        b in prop::array::uniform8(1e-9f64..1e9f64)) {
        let va = F64x8(a);
        let vb = F64x8(b);
        let sum = va + vb;
        let quot = va / vb;
        for i in 0..8 {
            prop_assert_eq!(sum[i], a[i] + b[i]);
            prop_assert_eq!(quot[i], a[i] / b[i]);
        }
    }

    #[test]
    fn simd_ln_exp_roundtrip_on_transport_domain(u in 1e-11f64..0.999_999) {
        // The domain distance sampling uses: uniforms in (0,1).
        let x = u as f32;
        let rt = exp_f32(ln_f32(x));
        prop_assert!(((rt - x) / x).abs() < 1e-5);
    }

    #[test]
    fn lower_bound_brackets_its_query(
        mut pts in prop::collection::vec(1e-11f64..20.0, 2..200),
        q in 1e-11f64..20.0,
    ) {
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        prop_assume!(pts.len() >= 2);
        let i = lower_bound_index(&pts, q);
        prop_assert!(i + 1 < pts.len());
        // Within the table's range, the interval brackets the query.
        if q >= pts[0] && q < *pts.last().unwrap() {
            prop_assert!(pts[i] <= q && q < pts[i + 1] || (q - pts[i]).abs() < 1e-300);
        }
    }

    #[test]
    fn isotropic_direction_is_unit(x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let d = Vec3::isotropic(x1, x2);
        prop_assert!((d.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elastic_scatter_energy_within_kinematic_limits(
        e in 1e-9f64..20.0,
        awr in 0.999f64..240.0,
        mu in -1.0f64..1.0,
    ) {
        let (e_out, mu_lab) = mcs::core::physics::elastic_kinematics(e, awr, mu);
        let alpha = ((awr - 1.0) / (awr + 1.0)).powi(2);
        prop_assert!(e_out >= alpha * e - 1e-12 * e);
        prop_assert!(e_out <= e * (1.0 + 1e-12));
        prop_assert!((-1.0..=1.0).contains(&mu_lab));
    }
}

#[test]
fn geometry_ray_positions_always_resolve_after_nudge() {
    // A long pseudo-random ray walk through the full-core geometry never
    // lands in an unresolvable position while inside the root box.
    let g = hm_core(&HmConfig::default());
    let mut rng = Lcg63::new(77);
    for trial in 0..50 {
        let mut p = Vec3::new(
            200.0 * (rng.next_uniform() - 0.5),
            200.0 * (rng.next_uniform() - 0.5),
            100.0 * (rng.next_uniform() - 0.5),
        );
        let dir = Vec3::isotropic(rng.next_uniform(), rng.next_uniform());
        let mut steps = 0;
        while g.find(p).is_some() {
            let d = g.distance_to_boundary(p, dir);
            assert!(d.is_finite() && d >= 0.0, "trial {trial}");
            p += dir * (d + mcs::geom::BOUNDARY_EPS);
            steps += 1;
            assert!(steps < 100_000, "trial {trial}: ray stuck");
        }
    }
}

// ---------------------------------------------------------------------
// Statepoint serialization: round-trip fidelity and truncation safety.

use mcs::core::particle::SourceSite;
use mcs::core::statepoint::Statepoint;
use mcs::core::tally::Tallies;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Finite only: NaN breaks PartialEq round-trip equality, and the
    // engine never tallies non-finite values.
    -1e15f64..1e15
}

fn arb_source() -> impl Strategy<Value = SourceSite> {
    (finite_f64(), finite_f64(), finite_f64(), 1e-11f64..20.0).prop_map(|(x, y, z, e)| SourceSite {
        pos: Vec3::new(x, y, z),
        energy: e,
    })
}

fn arb_tallies() -> impl Strategy<Value = Tallies> {
    (
        prop::array::uniform8(any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
    )
        .prop_map(
            |(by_mat, (np, seg, col), (abs, fis, leak), (tl, kt, kc, ka))| {
                let mut t = Tallies {
                    n_particles: np as u64,
                    segments: seg as u64,
                    collisions: col as u64,
                    absorptions: abs as u64,
                    fissions: fis as u64,
                    leaks: leak as u64,
                    track_length: tl,
                    k_track: kt,
                    k_collision: kc,
                    k_absorption: ka,
                    ..Default::default()
                };
                for (i, &m) in by_mat.iter().enumerate() {
                    t.segments_by_material[i] = m as u64;
                    t.collisions_by_material[i] = (m as u64).rotate_left(7);
                    t.absorptions_by_material[i] = (m as u64).wrapping_mul(3);
                    t.fissions_by_material[i] = (m as u64) ^ 0x5a5a;
                }
                t
            },
        )
}

fn arb_statepoint() -> impl Strategy<Value = Statepoint> {
    (
        any::<u64>(),
        0usize..2_000,
        prop::collection::vec(arb_source(), 0..64),
        prop::collection::vec(finite_f64(), 0..32),
        arb_tallies(),
    )
        .prop_map(
            |(seed, completed_batches, source, k_history, tallies)| Statepoint {
                seed,
                completed_batches,
                source,
                k_history,
                tallies,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn statepoint_roundtrips_bitwise(sp in arb_statepoint()) {
        // Arbitrary batch counts, bank sizes, and tally shapes survive
        // write→read with every field (floats included) bit-exact.
        let mut buf = Vec::new();
        sp.write_to(&mut buf).unwrap();
        let back = Statepoint::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&back, &sp);
        // And the float payloads really are to_bits-identical, not just
        // PartialEq-close.
        for (a, b) in sp.k_history.iter().zip(&back.k_history) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(sp.tallies.k_track.to_bits(), back.tallies.k_track.to_bits());
    }

    #[test]
    fn truncated_statepoint_errors_never_panics(sp in arb_statepoint(), cut in 0.0f64..1.0) {
        let mut buf = Vec::new();
        sp.write_to(&mut buf).unwrap();
        // Cut the stream at an arbitrary interior byte: every prefix
        // must surface io::Error — reads past the end, bad counts, or a
        // checksum mismatch — and never panic or return a statepoint.
        let len = ((buf.len() - 1) as f64 * cut) as usize;
        prop_assert!(Statepoint::read_from(&mut buf[..len].as_ref()).is_err());
    }

    #[test]
    fn garbage_magic_is_rejected(junk in prop::collection::vec(any::<u8>(), 0..256)) {
        // A stream that does not open with the magic is refused up
        // front, whatever else it contains.
        prop_assume!(junk.len() < 8 || &junk[..8] != b"MCSSTPT\x01");
        prop_assert!(Statepoint::read_from(&mut junk.as_slice()).is_err());
    }
}
