//! Cross-crate integration: machine models driven by real measured
//! transport counts reproduce the paper's headline ratios.

use mcs::cluster::{strong_scaling, weak_scaling, CommModel, NodeSpec};
use mcs::core::engine::{transport_batch, BatchRequest, Threaded};
use mcs::core::history::batch_streams;
use mcs::core::problem::Problem;
use mcs::core::tally::Tallies;
use mcs::device::native::{shape_of, NativeModel, TransportKind};
use mcs::device::workload::ProblemShape;
use mcs::device::{MachineSpec, SymmetricModel};

fn measured_counts(scale: f64) -> Tallies {
    let problem = Problem::test_small();
    let n = 400;
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let mut t = out.tallies;
    t.n_particles = (t.n_particles as f64 * scale) as u64;
    t.segments = (t.segments as f64 * scale) as u64;
    t.collisions = (t.collisions as f64 * scale) as u64;
    for i in 0..8 {
        t.segments_by_material[i] = (t.segments_by_material[i] as f64 * scale) as u64;
        t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * scale) as u64;
    }
    t
}

fn hm_large_shape() -> ProblemShape {
    ProblemShape {
        nuclides_per_material: vec![325, 1, 3],
        union_points: 130_000,
        full_physics: true,
    }
}

#[test]
fn alpha_and_symmetric_pipeline_reproduce_table3_shape() {
    let t = measured_counts(250.0); // ~1e5 particles
    let shape = hm_large_shape();
    let cpu = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
    let mic = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
    let r_cpu = cpu.calc_rate(&shape, &t);
    let r_mic = mic.calc_rate(&shape, &t);
    let alpha = r_cpu / r_mic;
    assert!((0.5..0.8).contains(&alpha), "alpha = {alpha:.3}");

    // Table III: balanced CPU+2MIC ≈ 4× CPU-only.
    let m = SymmetricModel::new(&[("cpu", r_cpu), ("mic0", r_mic), ("mic1", r_mic)]);
    let headline = m.balanced_rate(100_000) / r_cpu;
    assert!((3.0..5.5).contains(&headline), "headline = {headline:.2}");
    // Balanced ≥ original, ≤ ideal.
    assert!(m.balanced_rate(100_000) >= m.original_rate(100_000));
    assert!(m.balanced_rate(100_000) <= m.ideal() * (1.0 + 1e-9));
}

#[test]
fn measured_rates_feed_cluster_scaling_with_paper_shapes() {
    let t = measured_counts(250.0);
    let shape = hm_large_shape();
    let r_cpu = NativeModel::new(MachineSpec::host_e5_2680(), TransportKind::HistoryScalar)
        .calc_rate(&shape, &t);
    let r_mic = NativeModel::new(MachineSpec::mic_se10p(), TransportKind::HistoryScalar)
        .calc_rate(&shape, &t);
    let comm = CommModel::fdr_infiniband();
    let node = NodeSpec::with_one_mic(r_cpu, r_mic);

    let strong = strong_scaling(&node, &[4, 128, 1024], 10_000_000, &comm);
    assert!(
        strong[1].efficiency > 0.90,
        "128-node eff {}",
        strong[1].efficiency
    );
    assert!(
        strong[2].efficiency < strong[1].efficiency,
        "tail must appear"
    );

    let weak = weak_scaling(&node, &[1, 16, 128, 1024], 1_000_000, &comm);
    for p in &weak {
        assert!(
            p.efficiency > 0.93,
            "weak eff {} at {}",
            p.efficiency,
            p.nodes
        );
    }
}

#[test]
fn banked_kind_beats_scalar_kind_on_wide_machines_only_sometimes() {
    // On the MIC, the banked lookups win big; on the narrow host, the win
    // is modest — both directions of the paper's trade-off.
    let t = measured_counts(250.0);
    let shape = ProblemShape {
        full_physics: false,
        ..hm_large_shape()
    };
    let mic_scalar = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
    let mic_banked = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::EventBanked);
    let host_scalar = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
    let host_banked = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::EventBanked);

    let mic_gain = mic_scalar.batch_time(&shape, &t) / mic_banked.batch_time(&shape, &t);
    let host_gain = host_scalar.batch_time(&shape, &t) / host_banked.batch_time(&shape, &t);
    assert!(mic_gain > 2.0, "mic gain {mic_gain:.2}");
    assert!(host_gain > 1.0, "host gain {host_gain:.2}");
    assert!(
        mic_gain > host_gain,
        "vector width should matter more on the MIC"
    );
}

#[test]
fn offload_breakdown_consistent_with_real_problem_bytes() {
    use mcs::device::OffloadModel;
    let problem = Problem::test_small();
    let shape = shape_of(&problem);
    let model = OffloadModel::jlse();
    let grid_bytes = (problem.xs.index_bytes() + problem.xs.data_bytes()) as f64;
    let b = model.breakdown(&shape, 10_000, grid_bytes);
    assert!(b.bank_bytes > 0.0);
    assert!(b.transfer_bank_s > b.banking_host_s);
    assert!(b.transfer_grid_s > 0.0);
    assert!(b.compute_device_s > 0.0 && b.compute_host_s > 0.0);
}
