//! The reactor-physics payoff of Doppler broadening: the negative fuel
//! temperature coefficient. Heating the fuel broadens U-238's resonances,
//! weakening their self-shielding and increasing epithermal capture, so
//! k_eff must drop — the basic passive-safety feedback of every thermal
//! reactor, emerging here from the synthetic data + transport stack with
//! no dedicated modeling.

use mcs::core::eigenvalue::{run_eigenvalue, EigenvalueSettings, TransportMode};
use mcs::core::problem::{HmModel, Problem, ProblemConfig};
use mcs::core::TransportMode as _;

fn k_at_fuel_temperature(t_k: f64) -> (f64, f64) {
    let cfg = ProblemConfig {
        fuel_temperature_k: t_k,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let r = run_eigenvalue(
        &problem,
        &EigenvalueSettings {
            particles: 2_500,
            inactive: 2,
            active: 4,
            mode: TransportMode::History,
            entropy_mesh: (8, 8, 4),
            mesh_tally: None,
        },
    );
    (r.k_mean, r.k_std)
}

#[test]
fn fuel_heating_reduces_k_doppler_feedback() {
    let (k_cold, s_cold) = k_at_fuel_temperature(0.0);
    let (k_hot, s_hot) = k_at_fuel_temperature(2400.0);
    let sigma = (s_cold * s_cold + s_hot * s_hot).sqrt().max(1e-4);
    println!("k(cold) = {k_cold:.4} ± {s_cold:.4}, k(2400K) = {k_hot:.4} ± {s_hot:.4}");
    assert!(
        k_hot < k_cold - 1.0 * sigma,
        "Doppler defect missing: cold {k_cold:.4}±{s_cold:.4} vs hot {k_hot:.4}±{s_hot:.4}"
    );
}
