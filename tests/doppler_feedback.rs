//! The reactor-physics payoff of Doppler broadening: the negative fuel
//! temperature coefficient. Heating the fuel broadens U-238's resonances,
//! weakening their self-shielding and increasing epithermal capture, so
//! k_eff must drop — the basic passive-safety feedback of every thermal
//! reactor, emerging here from the synthetic data + transport stack with
//! no dedicated modeling.

use mcs::core::engine::{run_with_problem, RunPlan, Threaded};
use mcs::core::problem::{HmModel, Problem, ProblemConfig};

fn k_at_fuel_temperature(t_k: f64) -> (f64, f64) {
    let cfg = ProblemConfig {
        fuel_temperature_k: t_k,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let plan = RunPlan {
        particles: 2_500,
        inactive: 2,
        active: 4,
        entropy_mesh: (8, 8, 4),
        ..RunPlan::default()
    };
    let r = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    (r.k_mean, r.k_std)
}

#[test]
fn fuel_heating_reduces_k_doppler_feedback() {
    let (k_cold, s_cold) = k_at_fuel_temperature(0.0);
    let (k_hot, s_hot) = k_at_fuel_temperature(2400.0);
    let sigma = (s_cold * s_cold + s_hot * s_hot).sqrt().max(1e-4);
    println!("k(cold) = {k_cold:.4} ± {s_cold:.4}, k(2400K) = {k_hot:.4} ± {s_hot:.4}");
    assert!(
        k_hot < k_cold - 1.0 * sigma,
        "Doppler defect missing: cold {k_cold:.4}±{s_cold:.4} vs hot {k_hot:.4}±{s_hot:.4}"
    );
}
