//! Cross-crate integration: the two transport algorithms over the full
//! problem stack (synthetic data → unionized grid → geometry → physics),
//! driven through the unified engine.

use mcs::core::eigenvalue::shannon_entropy;
use mcs::core::engine::{
    run, run_with_problem, transport_batch, Algorithm, BatchRequest, ModelSpec, RunPlan, Threaded,
};
use mcs::core::history::batch_streams;
use mcs::core::problem::Problem;

fn small_problem() -> Problem {
    Problem::test_small()
}

#[test]
fn event_and_history_trajectories_identical_full_physics() {
    let problem = small_problem();
    assert!(problem.physics.any(), "full physics must be on");
    let n = 600;
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);

    let hist = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let evt = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest {
            algorithm: Algorithm::EventBanking,
            ..BatchRequest::default()
        },
        &mut Threaded::ambient(),
    )
    .outcome;

    assert_eq!(hist.tallies.segments, evt.tallies.segments);
    assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
    assert_eq!(hist.tallies.absorptions, evt.tallies.absorptions);
    assert_eq!(hist.tallies.fissions, evt.tallies.fissions);
    assert_eq!(hist.tallies.leaks, evt.tallies.leaks);
    assert_eq!(hist.sites, evt.sites);
}

#[test]
fn eigenvalue_is_deterministic_across_runs() {
    let problem = small_problem();
    let plan = RunPlan {
        particles: 400,
        inactive: 1,
        active: 2,
        entropy_mesh: (4, 4, 4),
        ..RunPlan::default()
    };
    let a = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    let b = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    assert_eq!(a.k_mean, b.k_mean);
    for (x, y) in a.batches.iter().zip(&b.batches) {
        assert_eq!(x.k_track, y.k_track);
        assert_eq!(x.entropy, y.entropy);
    }
}

#[test]
fn neutron_balance_holds_every_batch() {
    let problem = small_problem();
    let n = 500;
    for batch in 0..3u64 {
        let sources = problem.sample_initial_source(n, batch);
        let streams = batch_streams(problem.seed, batch, n);
        let out = transport_batch(
            &problem,
            &sources,
            &streams,
            &BatchRequest::default(),
            &mut Threaded::ambient(),
        )
        .outcome;
        let t = out.tallies;
        assert_eq!(t.n_particles, n as u64);
        assert_eq!(t.absorptions + t.leaks, n as u64, "batch {batch}");
        assert!(t.segments >= t.collisions);
        assert!(t.collisions >= t.absorptions);
        assert!(t.fissions <= t.absorptions);
        let mat_sum: u64 = t.segments_by_material.iter().sum();
        assert_eq!(mat_sum, t.segments);
    }
}

#[test]
fn full_core_hm_small_is_near_critical() {
    // The headline physics check: the Hoogenboom–Martin-like core with
    // the synthesized library sits near criticality. Uses the Small model
    // (34 fuel nuclides) to keep the test under a minute. The plan builds
    // the problem itself (the `small` catalog entry), exactly as
    // `mcs run --plan` would.
    let plan = RunPlan {
        model: ModelSpec::small(),
        particles: 2_000,
        inactive: 3,
        active: 4,
        entropy_mesh: (8, 8, 4),
        ..RunPlan::default()
    };
    let r = run(&plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    // The Small model runs slightly supercritical (~1.15): with only 34
    // fuel nuclides it lacks the extra 286 fission-product/minor-actinide
    // absorbers whose ladders trim H.M. Large to k ≈ 1.00.
    assert!(
        (0.85..1.25).contains(&r.k_mean),
        "full-core k = {:.4} ± {:.4} not near critical",
        r.k_mean,
        r.k_std
    );
    // All three estimators agree within a few sigma of MC noise.
    let last = r.batches.last().unwrap();
    assert!((last.k_track - last.k_collision).abs() / last.k_track < 0.1);
}

#[test]
fn entropy_converges_across_inactive_batches() {
    let problem = small_problem();
    let plan = RunPlan {
        particles: 1_500,
        inactive: 5,
        active: 2,
        entropy_mesh: (8, 8, 4),
        ..RunPlan::default()
    };
    let r = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    // Entropy is finite and positive once the source spreads.
    for b in &r.batches {
        assert!(b.entropy.is_finite() && b.entropy > 0.0);
    }
}

#[test]
fn shannon_entropy_respects_bounds_mesh() {
    use mcs::core::particle::Site;
    use mcs::geom::Vec3;
    // Sites outside the bounds clamp into edge boxes without panicking.
    let sites = vec![
        Site {
            pos: Vec3::new(-99.0, 0.0, 0.0),
            energy: 1.0,
            parent: 0,
            seq: 0,
        },
        Site {
            pos: Vec3::new(99.0, 0.0, 0.0),
            energy: 1.0,
            parent: 1,
            seq: 0,
        },
    ];
    let h = shannon_entropy(
        &sites,
        (Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0)),
        (2, 2, 2),
    );
    assert!((h - 1.0).abs() < 1e-12); // two equally occupied boxes
}

#[test]
fn thread_count_does_not_change_results() {
    let problem = small_problem();
    let n = 500;
    let sources = problem.sample_initial_source(n, 9);
    let streams = batch_streams(problem.seed, 9, n);
    // Dedicated engine pools: 1 worker vs 8 workers.
    let single = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::new(1),
    )
    .outcome;
    let multi = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::new(8),
    )
    .outcome;
    assert_eq!(single.tallies, multi.tallies);
    assert_eq!(single.sites, multi.sites);
}
