//! Cross-crate determinism contract of the parallel event pipeline:
//! identical results for any thread count, and identical trajectories to
//! the history engine — the properties the ablation bench relies on when
//! it compares serial and parallel timings.

use mcs::core::event::{run_event_transport, run_event_transport_mesh, run_event_transport_serial};
use mcs::core::history::{batch_streams, run_histories_mesh};
use mcs::core::mesh::MeshSpec;
use mcs::core::problem::Problem;

#[test]
fn event_pipeline_thread_count_invariant() {
    let problem = Problem::test_small();
    let n = 600;
    let sources = problem.sample_initial_source(n, 2);
    let streams = batch_streams(problem.seed, 0, n);
    let spec = MeshSpec::covering(problem.geometry.bounds, 4, 4, 2);

    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| run_event_transport_mesh(&problem, &sources, &streams, Some(spec)))
    };

    let (out1, stats1, mesh1) = run(1);
    for threads in [2, 4, 8] {
        let (outn, statsn, meshn) = run(threads);
        // Full outcome bitwise identical: integer and float tallies,
        // and the banked fission sites in order.
        assert_eq!(out1.tallies, outn.tallies, "{threads} threads");
        assert_eq!(out1.sites, outn.sites, "{threads} threads");
        assert_eq!(
            mesh1.as_ref().unwrap().bins,
            meshn.as_ref().unwrap().bins,
            "{threads} threads"
        );
        assert_eq!(stats1.iterations, statsn.iterations);
        assert_eq!(stats1.lookups, statsn.lookups);
        assert_eq!(stats1.peak_bank, statsn.peak_bank);
    }

    // The dedicated serial entry point is the same algorithm pinned to
    // one worker; it must agree bitwise too.
    let (out_serial, _) = run_event_transport_serial(&problem, &sources, &streams);
    assert_eq!(out_serial.tallies, out1.tallies);
    assert_eq!(out_serial.sites, out1.sites);
}

#[test]
fn parallel_event_still_matches_history_trajectories() {
    // The multithreaded pipeline preserves the event/history trajectory
    // equivalence: per-particle RNG streams mean neither the stage
    // batching nor the thread count can change any particle's walk.
    let problem = Problem::test_small();
    let n = 500;
    let sources = problem.sample_initial_source(n, 7);
    let streams = batch_streams(problem.seed, 2, n);
    let spec = MeshSpec::covering(problem.geometry.bounds, 4, 4, 2);

    let (hist, hmesh) = run_histories_mesh(&problem, &sources, &streams, Some(spec));
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let (evt, _, emesh) =
        pool.install(|| run_event_transport_mesh(&problem, &sources, &streams, Some(spec)));

    assert_eq!(hist.tallies.segments, evt.tallies.segments);
    assert_eq!(hist.tallies.collisions, evt.tallies.collisions);
    assert_eq!(hist.tallies.absorptions, evt.tallies.absorptions);
    assert_eq!(hist.tallies.fissions, evt.tallies.fissions);
    assert_eq!(hist.tallies.leaks, evt.tallies.leaks);
    assert_eq!(hist.sites, evt.sites);
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-300);
    assert!(rel(hist.tallies.track_length, evt.tallies.track_length) < 1e-9);
    assert!(rel(hist.tallies.k_track, evt.tallies.k_track) < 1e-9);
    for (a, b) in hmesh.unwrap().bins.iter().zip(&emesh.unwrap().bins) {
        assert!((a - b).abs() / a.abs().max(1e-300) < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn serial_entry_point_counters_match_parallel() {
    // EventStats counters feed the device offload model; they must be
    // identical however many threads executed the pipeline.
    let problem = Problem::test_small();
    let n = 350;
    let sources = problem.sample_initial_source(n, 9);
    let streams = batch_streams(problem.seed, 4, n);
    let (_, serial) = run_event_transport_serial(&problem, &sources, &streams);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    let (_, parallel) = pool.install(|| run_event_transport(&problem, &sources, &streams));
    assert_eq!(serial.iterations, parallel.iterations);
    assert_eq!(serial.lookups, parallel.lookups);
    assert_eq!(serial.peak_bank, parallel.peak_bank);
    assert_eq!(serial.peak_bank, n as u64);
}
