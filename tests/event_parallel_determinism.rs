//! Cross-crate determinism contract of the parallel event pipeline:
//! identical results for any thread count, and identical trajectories to
//! the history engine — the properties the ablation bench relies on when
//! it compares serial and parallel timings. All entry points go through
//! the unified engine's `transport_batch`.

use mcs::core::engine::{transport_batch, Algorithm, BatchOutput, BatchRequest, Serial, Threaded};
use mcs::core::history::batch_streams;
use mcs::core::mesh::MeshSpec;
use mcs::core::problem::Problem;

#[test]
fn event_pipeline_thread_count_invariant() {
    let problem = Problem::test_small();
    let n = 600;
    let sources = problem.sample_initial_source(n, 2);
    let streams = batch_streams(problem.seed, 0, n);
    let spec = MeshSpec::covering(problem.geometry.bounds, 4, 4, 2);

    let run = |threads: usize| -> BatchOutput {
        transport_batch(
            &problem,
            &sources,
            &streams,
            &BatchRequest {
                algorithm: Algorithm::EventBanking,
                mesh: Some(spec),
                ..BatchRequest::default()
            },
            &mut Threaded::new(threads),
        )
    };

    let one = run(1);
    let stats1 = one.event_stats.unwrap();
    for threads in [2, 4, 8] {
        let multi = run(threads);
        // Full outcome bitwise identical: integer and float tallies,
        // and the banked fission sites in order.
        assert_eq!(
            one.outcome.tallies, multi.outcome.tallies,
            "{threads} threads"
        );
        assert_eq!(one.outcome.sites, multi.outcome.sites, "{threads} threads");
        assert_eq!(
            one.mesh.as_ref().unwrap().bins,
            multi.mesh.as_ref().unwrap().bins,
            "{threads} threads"
        );
        let statsn = multi.event_stats.unwrap();
        assert_eq!(stats1.iterations, statsn.iterations);
        assert_eq!(stats1.lookups, statsn.lookups);
        assert_eq!(stats1.peak_bank, statsn.peak_bank);
    }

    // The dedicated serial policy is the same algorithm pinned to one
    // worker; it must agree bitwise too.
    let serial = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest {
            algorithm: Algorithm::EventBanking,
            ..BatchRequest::default()
        },
        &mut Serial::new(),
    );
    assert_eq!(serial.outcome.tallies, one.outcome.tallies);
    assert_eq!(serial.outcome.sites, one.outcome.sites);
}

#[test]
fn parallel_event_still_matches_history_trajectories() {
    // The multithreaded pipeline preserves the event/history trajectory
    // equivalence: per-particle RNG streams mean neither the stage
    // batching nor the thread count can change any particle's walk.
    let problem = Problem::test_small();
    let n = 500;
    let sources = problem.sample_initial_source(n, 7);
    let streams = batch_streams(problem.seed, 2, n);
    let spec = MeshSpec::covering(problem.geometry.bounds, 4, 4, 2);

    let hist = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest {
            mesh: Some(spec),
            ..BatchRequest::default()
        },
        &mut Threaded::ambient(),
    );
    let evt = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest {
            algorithm: Algorithm::EventBanking,
            mesh: Some(spec),
            ..BatchRequest::default()
        },
        &mut Threaded::new(4),
    );

    let (h, e) = (&hist.outcome, &evt.outcome);
    assert_eq!(h.tallies.segments, e.tallies.segments);
    assert_eq!(h.tallies.collisions, e.tallies.collisions);
    assert_eq!(h.tallies.absorptions, e.tallies.absorptions);
    assert_eq!(h.tallies.fissions, e.tallies.fissions);
    assert_eq!(h.tallies.leaks, e.tallies.leaks);
    assert_eq!(h.sites, e.sites);
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-300);
    assert!(rel(h.tallies.track_length, e.tallies.track_length) < 1e-9);
    assert!(rel(h.tallies.k_track, e.tallies.k_track) < 1e-9);
    for (a, b) in hist.mesh.unwrap().bins.iter().zip(&evt.mesh.unwrap().bins) {
        assert!((a - b).abs() / a.abs().max(1e-300) < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn serial_entry_point_counters_match_parallel() {
    // EventStats counters feed the device offload model; they must be
    // identical however many threads executed the pipeline.
    let problem = Problem::test_small();
    let n = 350;
    let sources = problem.sample_initial_source(n, 9);
    let streams = batch_streams(problem.seed, 4, n);
    let req = BatchRequest {
        algorithm: Algorithm::EventBanking,
        ..BatchRequest::default()
    };
    let serial = transport_batch(&problem, &sources, &streams, &req, &mut Serial::new())
        .event_stats
        .unwrap();
    let parallel = transport_batch(&problem, &sources, &streams, &req, &mut Threaded::new(8))
        .event_stats
        .unwrap();
    assert_eq!(serial.iterations, parallel.iterations);
    assert_eq!(serial.lookups, parallel.lookups);
    assert_eq!(serial.peak_bank, parallel.peak_bank);
    assert_eq!(serial.peak_bank, n as u64);
}
