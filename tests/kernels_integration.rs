//! Cross-crate integration: the SIMD lookup kernels against the scalar
//! reference over the real H.M. problem stack, and the Table-I distance
//! kernels end to end.

use mcs::core::distance::{
    reference_distances, sample_distances_naive, sample_distances_opt1, sample_distances_opt2,
};
use mcs::core::problem::Problem;
use mcs::rng::{Lcg63, StreamPartition};
use mcs::simd::AVec32;
use mcs::xs::{GridBackendKind, MacroXs};

fn probe_energies(n: usize) -> Vec<f64> {
    let mut rng = Lcg63::new(0x9e3);
    let lo = mcs::xs::E_MIN.ln();
    let hi = mcs::xs::E_MAX.ln();
    (0..n)
        .map(|_| (lo + (hi - lo) * rng.next_uniform()).exp())
        .collect()
}

#[test]
fn all_lookup_kernels_agree_over_every_material() {
    let problem = Problem::test_small();
    let energies = probe_energies(512);
    for mat in &problem.materials {
        let mut scalar = vec![MacroXs::default(); energies.len()];
        let mut simd = vec![MacroXs::default(); energies.len()];
        let mut outer = vec![MacroXs::default(); energies.len()];
        problem.xs.batch_macro_xs(mat, &energies, &mut scalar);
        problem.xs.batch_macro_xs_simd(mat, &energies, &mut simd);
        problem
            .xs
            .batch_macro_xs_outer_simd(mat, &energies, &mut outer);
        for i in 0..energies.len() {
            assert!(
                scalar[i].max_rel_diff(&simd[i]) < 1e-11,
                "{} e={} inner-simd",
                mat.name,
                energies[i]
            );
            assert!(
                scalar[i].max_rel_diff(&outer[i]) < 1e-11,
                "{} e={} outer-simd",
                mat.name,
                energies[i]
            );
        }
    }
}

#[test]
fn lookup_kernels_preserve_reaction_consistency() {
    // Σ_t = Σ_s + Σ_a and Σ_f ≤ Σ_a at every probed energy, via the
    // vectorized path.
    let problem = Problem::test_small();
    let energies = probe_energies(256);
    let mut out = vec![MacroXs::default(); energies.len()];
    problem
        .xs
        .batch_macro_xs_simd(&problem.materials[0], &energies, &mut out);
    for xs in &out {
        assert!(xs.total > 0.0);
        assert!((xs.total - (xs.elastic + xs.inelastic + xs.absorption)).abs() < 1e-9 * xs.total);
        assert!(xs.inelastic >= 0.0);
        assert!(xs.fission <= xs.absorption + 1e-12);
        assert!(xs.nu_fission >= xs.fission); // ν ≥ 1 where fission exists
    }
}

#[test]
fn distance_kernels_agree_and_have_exponential_statistics() {
    let n = 65_536;
    let sigma = 0.75f32;
    let xs = AVec32::filled(n, sigma);

    // opt1 and opt2 with the same streams see the same uniforms.
    let mut r1 = vec![0.0f32; n];
    let mut out1 = vec![0.0f32; n];
    let mut p1 = StreamPartition::new(11, 4);
    sample_distances_opt1(xs.as_slice(), &mut r1, &mut out1, &mut p1);

    let mut r2 = AVec32::zeros(n);
    let mut out2 = AVec32::zeros(n);
    let mut p2 = StreamPartition::new(11, 4);
    sample_distances_opt2(&xs, &mut r2, &mut out2, &mut p2);

    let want = reference_distances(xs.as_slice(), &r1);
    for i in (0..n).step_by(97) {
        assert!(((out1[i] - want[i]) / want[i]).abs() < 1e-5);
        assert!(((out2[i] - want[i]) / want[i]).abs() < 1e-5);
    }

    // Exponential distribution: mean 1/Σ, variance 1/Σ².
    let mean = out2.as_slice().iter().map(|&d| d as f64).sum::<f64>() / n as f64;
    let var = out2
        .as_slice()
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let expect = 1.0 / sigma as f64;
    assert!((mean - expect).abs() / expect < 0.02, "mean {mean}");
    assert!(
        (var - expect * expect).abs() / (expect * expect) < 0.05,
        "var {var}"
    );

    // Naive kernel: same statistics from a different generator.
    let mut out3 = vec![0.0f32; n];
    sample_distances_naive(xs.as_slice(), &mut out3, 1234);
    let mean3 = out3.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
    assert!((mean3 - expect).abs() / expect < 0.03, "naive mean {mean3}");
}

#[test]
fn every_grid_backend_equals_per_nuclide_search_end_to_end() {
    for kind in GridBackendKind::ALL {
        let problem = Problem::test_small_with_backend(kind);
        for &e in probe_energies(200).iter() {
            for mat in &problem.materials {
                let direct = problem.xs.macro_xs_direct(mat, e);
                let via_backend = problem.xs.macro_xs(mat, e);
                assert_eq!(
                    direct.total.to_bits(),
                    via_backend.total.to_bits(),
                    "{} {} e={e}",
                    kind.name(),
                    mat.name
                );
                assert!(direct.max_rel_diff(&via_backend) < 1e-13);
            }
        }
    }
}
