//! Kill-and-resume determinism: the fault-injection layer's core
//! contract, end to end.
//!
//! A distributed job that loses ranks mid-run — or loses *every* rank
//! and restarts from its last checkpoint — must finish with final k-eff
//! and tallies **bit-identical** (`f64::to_bits`) to the uninterrupted
//! run. This extends the workspace's canonical-reduction guarantee
//! across process death: RNG streams are keyed by global particle index,
//! driver-chosen rank splits are chunk-aligned, and the tally all-reduce
//! folds per-chunk partials in global index order, so neither
//! redistribution nor restart can perturb a single bit.

use std::sync::Arc;

use mcs::cluster::{
    resume_distributed_eigenvalue, run_distributed_eigenvalue, DistributedSettings,
};
use mcs::core::eigenvalue::{run_eigenvalue, EigenvalueSettings, TransportMode};
use mcs::core::problem::Problem;
use mcs::core::statepoint::resume_eigenvalue;
use mcs::core::tally::Tallies;
use mcs::faults::FaultPlan;

const N: usize = 600;
const INACTIVE: usize = 2;
const ACTIVE: usize = 4;

fn problem() -> Arc<Problem> {
    Arc::new(Problem::test_small())
}

fn settings() -> DistributedSettings {
    DistributedSettings {
        checkpoint_every: Some(2),
        ..DistributedSettings::simple(N, INACTIVE, ACTIVE)
    }
}

fn serial_settings() -> EigenvalueSettings {
    EigenvalueSettings {
        particles: N,
        inactive: INACTIVE,
        active: ACTIVE,
        mode: TransportMode::History,
        entropy_mesh: (8, 8, 4),
        mesh_tally: None,
    }
}

/// `to_bits` equality on k-eff and all four float tallies.
fn assert_bitwise(label: &str, k_a: f64, t_a: &Tallies, k_b: f64, t_b: &Tallies) {
    assert_eq!(
        k_a.to_bits(),
        k_b.to_bits(),
        "{label}: k-eff {k_a} vs {k_b}"
    );
    for (name, a, b) in [
        ("track_length", t_a.track_length, t_b.track_length),
        ("k_track", t_a.k_track, t_b.k_track),
        ("k_collision", t_a.k_collision, t_b.k_collision),
        ("k_absorption", t_a.k_absorption, t_b.k_absorption),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: {name} {a} vs {b}");
    }
    assert_eq!(t_a, t_b, "{label}: integer tallies diverged");
}

#[test]
fn kill_then_resume_is_bitwise_identical_across_rank_counts() {
    let p = problem();
    // The reference: an uninterrupted serial run.
    let serial = run_eigenvalue(&p, &serial_settings());

    for n_ranks in [1usize, 2, 4] {
        // Healthy uninterrupted distributed run, same rank count.
        let healthy = run_distributed_eigenvalue(&p, n_ranks, &settings());
        assert!(healthy.completed);
        assert_bitwise(
            &format!("{n_ranks} ranks healthy vs serial"),
            healthy.k_mean,
            &healthy.tallies,
            serial.k_mean,
            &serial.tallies,
        );

        // Kill every rank at batch 3 (after the batch-2 checkpoint): the
        // job aborts, leaving a checkpoint at completed_batches = 2.
        let mut killed_settings = settings();
        let mut plan = FaultPlan::new(42 + n_ranks as u64);
        for r in 0..n_ranks {
            plan = plan.with_rank_death(r, 3);
        }
        killed_settings.fault_plan = Some(plan);
        let killed = run_distributed_eigenvalue(&p, n_ranks, &killed_settings);
        assert!(!killed.completed, "{n_ranks} ranks: job should have died");
        let cp = killed.checkpoints.last().expect("checkpoint written");
        assert_eq!(cp.completed_batches, 2);

        // Resume path A: the distributed runtime, same rank count.
        let resumed = resume_distributed_eigenvalue(&p, n_ranks, &settings(), cp);
        assert!(resumed.completed);
        assert_bitwise(
            &format!("{n_ranks} ranks resumed vs serial"),
            resumed.k_mean,
            &resumed.tallies,
            serial.k_mean,
            &serial.tallies,
        );

        // Resume path B: the *serial* driver consumes the distributed
        // checkpoint — the statepoint format and semantics are shared.
        let serial_resumed = resume_eigenvalue(&p, &serial_settings(), cp);
        assert_bitwise(
            &format!("{n_ranks} ranks -> serial resume"),
            serial_resumed.k_mean,
            &serial_resumed.tallies,
            serial.k_mean,
            &serial.tallies,
        );
    }
}

#[test]
fn partial_death_degrades_without_losing_a_bit() {
    let p = problem();
    let healthy = run_distributed_eigenvalue(&p, 4, &settings());

    // Kill rank 0 specifically: the result must come from a surviving
    // higher-numbered rank, still bit-identical.
    let mut s = settings();
    s.fault_plan = Some(FaultPlan::new(7).with_rank_death(0, 2));
    let degraded = run_distributed_eigenvalue(&p, 4, &s);
    assert!(degraded.completed);
    assert_eq!(degraded.fault_log.n_deaths(), 1);
    assert_bitwise(
        "rank-0 death",
        degraded.k_mean,
        &degraded.tallies,
        healthy.k_mean,
        &healthy.tallies,
    );

    // Two staggered deaths out of four ranks.
    let mut s = settings();
    s.fault_plan = Some(
        FaultPlan::new(9)
            .with_rank_death(1, 2)
            .with_rank_death(3, 4),
    );
    let degraded = run_distributed_eigenvalue(&p, 4, &s);
    assert!(degraded.completed);
    assert_eq!(degraded.fault_log.n_deaths(), 2);
    assert_bitwise(
        "staggered deaths",
        degraded.k_mean,
        &degraded.tallies,
        healthy.k_mean,
        &healthy.tallies,
    );
    // Dead ranks carry no particles after their deaths.
    for b in &degraded.batches {
        if b.index >= 2 {
            assert_eq!(b.assignments[1], 0);
        }
        if b.index >= 4 {
            assert_eq!(b.assignments[3], 0);
        }
        assert_eq!(b.assignments.iter().sum::<u64>(), N as u64);
    }
}

#[test]
fn resume_with_a_different_rank_count_is_still_bitwise() {
    // The checkpoint is rank-count agnostic: die with 4 ranks, resume
    // with 2 (or 1), and the bits still match the uninterrupted run.
    let p = problem();
    let healthy = run_distributed_eigenvalue(&p, 4, &settings());

    let mut s = settings();
    let mut plan = FaultPlan::new(1);
    for r in 0..4 {
        plan = plan.with_rank_death(r, 4);
    }
    s.fault_plan = Some(plan);
    let killed = run_distributed_eigenvalue(&p, 4, &s);
    assert!(!killed.completed);
    let cp = killed.checkpoints.last().unwrap();

    for resume_ranks in [1usize, 2] {
        let resumed = resume_distributed_eigenvalue(&p, resume_ranks, &settings(), cp);
        assert!(resumed.completed);
        assert_bitwise(
            &format!("resume with {resume_ranks} ranks"),
            resumed.k_mean,
            &resumed.tallies,
            healthy.k_mean,
            &healthy.tallies,
        );
    }
}

#[test]
fn same_fault_seed_replays_the_same_run() {
    use mcs::faults::FaultSpec;
    let spec = FaultSpec {
        n_ranks: 4,
        n_batches: INACTIVE + ACTIVE,
        death_p: 0.3,
        straggler_p: 0.2,
        straggler_range: (1.5, 3.0),
        transfer_corrupt_p: 0.0,
        transfer_timeout_p: 0.0,
    };
    let plan_a = FaultPlan::generate(123, &spec);
    let plan_b = FaultPlan::generate(123, &spec);
    assert_eq!(plan_a, plan_b, "same seed must replay the same schedule");

    let p = problem();
    let mut s = settings();
    s.fault_plan = Some(plan_a);
    let run_a = run_distributed_eigenvalue(&p, 4, &s);
    s.fault_plan = Some(plan_b);
    let run_b = run_distributed_eigenvalue(&p, 4, &s);
    // Identical fault schedule → identical fault log and identical runs
    // (deaths and all), whatever the schedule turned out to be.
    assert_eq!(run_a.fault_log.records.len(), run_b.fault_log.records.len());
    assert_eq!(run_a.fault_log.n_deaths(), run_b.fault_log.n_deaths());
    assert_eq!(run_a.completed, run_b.completed);
    assert_eq!(run_a.k_mean.to_bits(), run_b.k_mean.to_bits());
    assert_eq!(run_a.tallies, run_b.tallies);
}
