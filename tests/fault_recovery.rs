//! Kill-and-resume determinism: the fault-injection layer's core
//! contract, end to end, driven through the unified engine.
//!
//! A distributed job that loses ranks mid-run — or loses *every* rank
//! and restarts from its last checkpoint — must finish with final k-eff
//! and tallies **bit-identical** (`f64::to_bits`) to the uninterrupted
//! run. This extends the workspace's canonical-reduction guarantee
//! across process death: RNG streams are keyed by global particle index,
//! driver-chosen rank splits are chunk-aligned, and the tally all-reduce
//! folds per-chunk partials in global index order, so neither
//! redistribution nor restart can perturb a single bit.

use mcs::cluster::DistributedPolicy;
use mcs::core::engine::{
    resume_with_problem, run_with_problem, PolicySpec, RunPlan, RunReport, Threaded,
};
use mcs::core::problem::Problem;
use mcs::core::statepoint::Statepoint;
use mcs::core::tally::Tallies;
use mcs::faults::FaultPlan;

const N: usize = 600;
const INACTIVE: usize = 2;
const ACTIVE: usize = 4;

fn problem() -> Problem {
    Problem::test_small()
}

fn dist_plan(ranks: usize) -> RunPlan {
    RunPlan {
        particles: N,
        inactive: INACTIVE,
        active: ACTIVE,
        entropy_mesh: (8, 8, 4),
        checkpoint_every: Some(2),
        policy: PolicySpec::Distributed { ranks },
        ..RunPlan::default()
    }
}

fn serial_plan() -> RunPlan {
    RunPlan {
        particles: N,
        inactive: INACTIVE,
        active: ACTIVE,
        entropy_mesh: (8, 8, 4),
        ..RunPlan::default()
    }
}

/// Run `plan` distributed over `ranks` simulated MPI ranks, returning
/// the report plus the policy (for fault logs and decomposition records).
fn run_dist(
    p: &Problem,
    ranks: usize,
    faults: Option<FaultPlan>,
) -> (RunReport, DistributedPolicy) {
    let mut policy = DistributedPolicy::new(ranks).with_fault_plan(faults);
    let report = run_with_problem(p, &dist_plan(ranks), &mut policy).into_eigenvalue();
    (report, policy)
}

fn resume_dist(p: &Problem, ranks: usize, cp: &Statepoint) -> RunReport {
    let mut policy = DistributedPolicy::new(ranks);
    resume_with_problem(p, &dist_plan(ranks), &mut policy, cp)
}

/// `to_bits` equality on k-eff and all four float tallies.
fn assert_bitwise(label: &str, k_a: f64, t_a: &Tallies, k_b: f64, t_b: &Tallies) {
    assert_eq!(
        k_a.to_bits(),
        k_b.to_bits(),
        "{label}: k-eff {k_a} vs {k_b}"
    );
    for (name, a, b) in [
        ("track_length", t_a.track_length, t_b.track_length),
        ("k_track", t_a.k_track, t_b.k_track),
        ("k_collision", t_a.k_collision, t_b.k_collision),
        ("k_absorption", t_a.k_absorption, t_b.k_absorption),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: {name} {a} vs {b}");
    }
    assert_eq!(t_a, t_b, "{label}: integer tallies diverged");
}

#[test]
fn kill_then_resume_is_bitwise_identical_across_rank_counts() {
    let p = problem();
    // The reference: an uninterrupted thread-local run of the same plan.
    let serial = run_with_problem(&p, &serial_plan(), &mut Threaded::ambient())
        .into_eigenvalue()
        .result;

    for n_ranks in [1usize, 2, 4] {
        // Healthy uninterrupted distributed run, same rank count.
        let (healthy, _) = run_dist(&p, n_ranks, None);
        assert!(healthy.completed);
        assert_bitwise(
            &format!("{n_ranks} ranks healthy vs serial"),
            healthy.result.k_mean,
            &healthy.result.tallies,
            serial.k_mean,
            &serial.tallies,
        );

        // Kill every rank at batch 3 (after the batch-2 checkpoint): the
        // job aborts, leaving a checkpoint at completed_batches = 2.
        let mut fault = FaultPlan::new(42 + n_ranks as u64);
        for r in 0..n_ranks {
            fault = fault.with_rank_death(r, 3);
        }
        let (killed, _) = run_dist(&p, n_ranks, Some(fault));
        assert!(!killed.completed, "{n_ranks} ranks: job should have died");
        let cp = killed.checkpoints.last().expect("checkpoint written");
        assert_eq!(cp.completed_batches, 2);

        // Resume path A: the distributed policy, same rank count.
        let resumed = resume_dist(&p, n_ranks, cp);
        assert!(resumed.completed);
        assert_bitwise(
            &format!("{n_ranks} ranks resumed vs serial"),
            resumed.result.k_mean,
            &resumed.result.tallies,
            serial.k_mean,
            &serial.tallies,
        );

        // Resume path B: a *thread-local* policy consumes the distributed
        // checkpoint — the statepoint format and semantics are shared.
        let serial_resumed =
            resume_with_problem(&p, &serial_plan(), &mut Threaded::ambient(), cp).result;
        assert_bitwise(
            &format!("{n_ranks} ranks -> serial resume"),
            serial_resumed.k_mean,
            &serial_resumed.tallies,
            serial.k_mean,
            &serial.tallies,
        );
    }
}

#[test]
fn partial_death_degrades_without_losing_a_bit() {
    let p = problem();
    let (healthy, _) = run_dist(&p, 4, None);

    // Kill rank 0 specifically: the result must come from a surviving
    // higher-numbered rank, still bit-identical.
    let (degraded, mut policy) = run_dist(&p, 4, Some(FaultPlan::new(7).with_rank_death(0, 2)));
    assert!(degraded.completed);
    assert_eq!(policy.take_fault_log().n_deaths(), 1);
    assert_bitwise(
        "rank-0 death",
        degraded.result.k_mean,
        &degraded.result.tallies,
        healthy.result.k_mean,
        &healthy.result.tallies,
    );

    // Two staggered deaths out of four ranks.
    let (degraded, mut policy) = run_dist(
        &p,
        4,
        Some(
            FaultPlan::new(9)
                .with_rank_death(1, 2)
                .with_rank_death(3, 4),
        ),
    );
    assert!(degraded.completed);
    let log = policy.take_fault_log();
    assert_eq!(log.n_deaths(), 2);
    assert_bitwise(
        "staggered deaths",
        degraded.result.k_mean,
        &degraded.result.tallies,
        healthy.result.k_mean,
        &healthy.result.tallies,
    );
    // Dead ranks carry no particles after their deaths.
    for d in policy.details() {
        if d.index >= 2 {
            assert_eq!(d.assignments[1], 0);
        }
        if d.index >= 4 {
            assert_eq!(d.assignments[3], 0);
        }
        assert_eq!(d.assignments.iter().sum::<u64>(), N as u64);
    }
}

#[test]
fn resume_with_a_different_rank_count_is_still_bitwise() {
    // The checkpoint is rank-count agnostic: die with 4 ranks, resume
    // with 2 (or 1), and the bits still match the uninterrupted run.
    let p = problem();
    let (healthy, _) = run_dist(&p, 4, None);

    let mut fault = FaultPlan::new(1);
    for r in 0..4 {
        fault = fault.with_rank_death(r, 4);
    }
    let (killed, _) = run_dist(&p, 4, Some(fault));
    assert!(!killed.completed);
    let cp = killed.checkpoints.last().unwrap();

    for resume_ranks in [1usize, 2] {
        let resumed = resume_dist(&p, resume_ranks, cp);
        assert!(resumed.completed);
        assert_bitwise(
            &format!("resume with {resume_ranks} ranks"),
            resumed.result.k_mean,
            &resumed.result.tallies,
            healthy.result.k_mean,
            &healthy.result.tallies,
        );
    }
}

#[test]
fn same_fault_seed_replays_the_same_run() {
    use mcs::faults::FaultSpec;
    let spec = FaultSpec {
        n_ranks: 4,
        n_batches: INACTIVE + ACTIVE,
        death_p: 0.3,
        straggler_p: 0.2,
        straggler_range: (1.5, 3.0),
        transfer_corrupt_p: 0.0,
        transfer_timeout_p: 0.0,
    };
    let plan_a = FaultPlan::generate(123, &spec);
    let plan_b = FaultPlan::generate(123, &spec);
    assert_eq!(plan_a, plan_b, "same seed must replay the same schedule");

    let p = problem();
    let (run_a, mut pol_a) = run_dist(&p, 4, Some(plan_a));
    let (run_b, mut pol_b) = run_dist(&p, 4, Some(plan_b));
    // Identical fault schedule → identical fault log and identical runs
    // (deaths and all), whatever the schedule turned out to be.
    let (log_a, log_b) = (pol_a.take_fault_log(), pol_b.take_fault_log());
    assert_eq!(log_a.records.len(), log_b.records.len());
    assert_eq!(log_a.n_deaths(), log_b.n_deaths());
    assert_eq!(run_a.completed, run_b.completed);
    assert_eq!(run_a.result.k_mean.to_bits(), run_b.result.k_mean.to_bits());
    assert_eq!(run_a.result.tallies, run_b.result.tallies);
}
