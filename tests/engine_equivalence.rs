//! The unified engine's headline contract, checked as a matrix: every
//! execution policy — serial, dedicated thread pools, simulated MPI
//! ranks — produces **bit-identical** results for the same `RunPlan`,
//! for both transport algorithms. Plus the declarative-plan guarantees:
//! TOML round-tripping is lossless, and a plan replayed from its TOML
//! form reproduces the original run to the last bit.
//!
//! A second matrix covers stage-2 particle queueing: every queueing
//! mode, on every energy-grid backend, under serial and threaded
//! execution, reproduces the unqueued serial run bit-for-bit — the
//! "queueing reorders lookups, never results" contract the ablation
//! bench's speedups rest on.

use mcs::cluster::DistributedPolicy;
use mcs::core::engine::{
    resume_with_problem, run_batches, run_with_problem, Algorithm, DeviceOverrides, DeviceRef,
    ExecutionPolicy, ModelOverrides, ModelSpec, PolicySpec, RunMode, RunPlan, Serial, Threaded,
};
use mcs::core::problem::{GridBackendKind, Problem};
use mcs::core::queueing::{QueueingConfig, QueueingMode};
use mcs::core::tally::Tallies;
use mcs::core::{RodPattern, TraversalKind};
use proptest::prelude::*;

fn plan_for(algorithm: Algorithm) -> RunPlan {
    RunPlan {
        algorithm,
        particles: 600,
        inactive: 2,
        active: 3,
        entropy_mesh: (4, 4, 4),
        ..RunPlan::default()
    }
}

/// Every policy the engine ships, with a label for failure messages.
fn all_policies() -> Vec<(&'static str, Box<dyn ExecutionPolicy>)> {
    vec![
        ("serial", Box::new(Serial::new())),
        ("threaded-2", Box::new(Threaded::new(2))),
        ("threaded-4", Box::new(Threaded::new(4))),
        ("distributed-1", Box::new(DistributedPolicy::new(1))),
        ("distributed-2", Box::new(DistributedPolicy::new(2))),
        ("distributed-4", Box::new(DistributedPolicy::new(4))),
    ]
}

/// `to_bits` equality on k-eff and all four float tallies.
fn assert_bitwise(label: &str, k_a: f64, t_a: &Tallies, k_b: f64, t_b: &Tallies) {
    assert_eq!(
        k_a.to_bits(),
        k_b.to_bits(),
        "{label}: k-eff {k_a} vs {k_b}"
    );
    for (name, a, b) in [
        ("track_length", t_a.track_length, t_b.track_length),
        ("k_track", t_a.k_track, t_b.k_track),
        ("k_collision", t_a.k_collision, t_b.k_collision),
        ("k_absorption", t_a.k_absorption, t_b.k_absorption),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: {name} {a} vs {b}");
    }
    assert_eq!(t_a, t_b, "{label}: integer tallies diverged");
}

#[test]
fn every_policy_reproduces_serial_bitwise_for_both_algorithms() {
    let problem = Problem::test_small();
    for algorithm in [Algorithm::History, Algorithm::EventBanking] {
        let plan = plan_for(algorithm);
        let reference = run_with_problem(&problem, &plan, &mut Serial::new())
            .into_eigenvalue()
            .result;
        for (label, mut policy) in all_policies() {
            let got = run_with_problem(&problem, &plan, policy.as_mut())
                .into_eigenvalue()
                .result;
            assert_bitwise(
                &format!("{label} / {algorithm:?}"),
                got.k_mean,
                &got.tallies,
                reference.k_mean,
                &reference.tallies,
            );
        }
    }
}

#[test]
fn heterogeneous_device_splits_reproduce_serial_bitwise() {
    // The device catalog's heterogeneous symmetric mode: each rank is a
    // different accelerator, the initial split is α-balanced by modeled
    // rate — and because the split stays CHUNK-aligned and the
    // all-reduce is chunk-keyed, k-eff and every tally must still equal
    // the serial run to the last bit, for any device mix.
    use mcs::device::catalog::device;
    use mcs::device::TransportKind;

    let problem = Problem::test_small();
    let mixes: [&[&str]; 3] = [
        &["host-e5-2687w", "knc-7120a"],
        &["host-e5-2687w", "knc-7120a", "knc-7120a"],
        &["a100", "gpu-max-1100", "mi250x", "host-e5-2687w"],
    ];
    for algorithm in [Algorithm::History, Algorithm::EventBanking] {
        let plan = plan_for(algorithm);
        let reference = run_with_problem(&problem, &plan, &mut Serial::new())
            .into_eigenvalue()
            .result;
        for mix in mixes {
            let devices: Vec<_> = mix.iter().map(|n| device(n).unwrap()).collect();
            let mut policy = DistributedPolicy::new(devices.len())
                .with_devices(&devices, TransportKind::HistoryScalar);
            let got = run_with_problem(&problem, &plan, &mut policy)
                .into_eigenvalue()
                .result;
            assert_bitwise(
                &format!("devices {mix:?} / {algorithm:?}"),
                got.k_mean,
                &got.tallies,
                reference.k_mean,
                &reference.tallies,
            );
            assert!(policy.describe().contains(mix[0]));
        }
    }
}

#[test]
fn queueing_is_bitwise_invisible_across_backends_and_policies() {
    // For each energy-grid backend: the serial, queueing-off run is the
    // reference; every queueing mode (with and without the fuel split,
    // at two bin widths) under serial AND threaded execution must
    // reproduce it to the last bit. Queueing is a lookup-order knob.
    let configs: Vec<(String, QueueingConfig)> = QueueingMode::ALL
        .iter()
        .flat_map(|&mode| {
            [(false, 4096usize), (true, 4096), (true, 64)]
                .into_iter()
                .map(move |(fuel_split, energy_bins)| {
                    (
                        format!("{}/bins={energy_bins}/fuel={fuel_split}", mode.name()),
                        QueueingConfig {
                            mode,
                            energy_bins,
                            fuel_split,
                        },
                    )
                })
        })
        .collect();

    for backend in GridBackendKind::ALL {
        let problem = Problem::test_small_with_backend(backend);
        let reference_plan = RunPlan {
            queueing: QueueingConfig {
                mode: QueueingMode::Off,
                ..QueueingConfig::default()
            },
            ..plan_for(Algorithm::EventBanking)
        };
        let reference = run_with_problem(&problem, &reference_plan, &mut Serial::new())
            .into_eigenvalue()
            .result;

        for (name, queueing) in &configs {
            let plan = RunPlan {
                queueing: *queueing,
                ..plan_for(Algorithm::EventBanking)
            };
            let policies: [(&str, Box<dyn ExecutionPolicy>); 2] = [
                ("serial", Box::new(Serial::new())),
                ("threaded-4", Box::new(Threaded::new(4))),
            ];
            for (plabel, mut policy) in policies {
                let got = run_with_problem(&problem, &plan, policy.as_mut())
                    .into_eigenvalue()
                    .result;
                assert_bitwise(
                    &format!("{} / {name} / {plabel}", backend.name()),
                    got.k_mean,
                    &got.tallies,
                    reference.k_mean,
                    &reference.tallies,
                );
            }
        }
    }
}

#[test]
fn kill_and_resume_through_the_engine_is_an_identity() {
    // Run batches [0, 3) under one policy, carry the statepoint across a
    // simulated process death, and finish the plan under a *different*
    // policy: final k and tallies must match the uninterrupted run
    // bit-for-bit, including across a disk round-trip.
    let problem = Problem::test_small();
    let plan = plan_for(Algorithm::History);
    let uninterrupted = run_with_problem(&problem, &plan, &mut Threaded::new(2))
        .into_eigenvalue()
        .result;

    let partial = run_batches(&problem, &plan, &mut Serial::new(), 0, 3, None);
    let path = std::env::temp_dir().join("mcs_engine_equivalence.statepoint");
    partial.statepoint.save(&path).expect("write statepoint");
    let sp = mcs::core::statepoint::Statepoint::load(&path).expect("read statepoint");
    let _ = std::fs::remove_file(&path);
    assert_eq!(sp.completed_batches, 3);

    let resumed = resume_with_problem(&problem, &plan, &mut DistributedPolicy::new(2), &sp).result;
    assert_bitwise(
        "serial[0,3) -> distributed-2 resume",
        resumed.k_mean,
        &resumed.tallies,
        uninterrupted.k_mean,
        &uninterrupted.tallies,
    );
}

#[test]
fn a_plan_replayed_from_its_toml_form_reproduces_the_run_bitwise() {
    let plan = RunPlan {
        particles: 400,
        inactive: 1,
        active: 2,
        entropy_mesh: (4, 4, 4),
        mesh_tally: Some((4, 4, 2)),
        ..RunPlan::default()
    };
    let replayed = RunPlan::from_toml(&plan.to_toml()).expect("round-trip");
    assert_eq!(plan, replayed);

    let problem = Problem::test_small();
    let a = run_with_problem(&problem, &plan, &mut Serial::new())
        .into_eigenvalue()
        .result;
    let b = run_with_problem(&problem, &replayed, &mut Serial::new())
        .into_eigenvalue()
        .result;
    assert_bitwise("toml replay", a.k_mean, &a.tallies, b.k_mean, &b.tallies);
    // The mesh tally replays bitwise too.
    let (ma, mb) = (a.mesh.unwrap(), b.mesh.unwrap());
    for (x, y) in ma.bins.iter().zip(&mb.bins) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// The traversal seam's engine-level contract: for catalog models, the
/// flattened and nested treatments produce bit-identical eigenvalue
/// results under every execution policy. (`small`/`large` share the
/// `test` geometry family; the full HM core shape is covered at the
/// geometry level by `mcs-geom`'s traversal property tests.)
#[test]
fn traversal_treatments_are_bitwise_equivalent_across_policies() {
    for model in ["test", "shield"] {
        let plan = RunPlan {
            model: ModelSpec::named(model),
            particles: 400,
            inactive: 1,
            active: 2,
            entropy_mesh: (4, 4, 4),
            ..RunPlan::default()
        };
        let reference = run_with_problem(&plan.build_problem(), &plan, &mut Serial::new())
            .into_eigenvalue()
            .result;
        for treatment in TraversalKind::ALL {
            let plan = RunPlan {
                traversal: treatment,
                ..plan.clone()
            };
            let problem = plan.build_problem();
            for (label, mut policy) in all_policies() {
                let got = run_with_problem(&problem, &plan, policy.as_mut())
                    .into_eigenvalue()
                    .result;
                assert_bitwise(
                    &format!("{model} / {} / {label}", treatment.name()),
                    got.k_mean,
                    &got.tallies,
                    reference.k_mean,
                    &reference.tallies,
                );
            }
        }
    }
}

/// Model overrides flow through the whole plan path: a rodded,
/// re-enriched shield variant builds, runs, and is bit-identical when
/// replayed from its TOML form under a different treatment.
#[test]
fn overridden_model_replays_bitwise_from_toml_across_treatments() {
    let plan = RunPlan {
        model: ModelSpec {
            name: "shield".into(),
            overrides: ModelOverrides {
                assemblies: Some(5),
                rods: Some(RodPattern::Center),
                enrichment: Some(1.25),
                ..Default::default()
            },
        },
        particles: 300,
        inactive: 1,
        active: 2,
        entropy_mesh: (4, 4, 4),
        ..RunPlan::default()
    };
    let a = run_with_problem(&plan.build_problem(), &plan, &mut Serial::new())
        .into_eigenvalue()
        .result;
    let replayed = RunPlan {
        traversal: TraversalKind::Nested,
        ..RunPlan::from_toml(&plan.to_toml()).expect("round-trip")
    };
    let b = run_with_problem(&replayed.build_problem(), &replayed, &mut Threaded::new(2))
        .into_eigenvalue()
        .result;
    assert_bitwise(
        "override replay / nested",
        a.k_mean,
        &a.tallies,
        b.k_mean,
        &b.tallies,
    );
}

fn arb_plan() -> impl Strategy<Value = RunPlan> {
    (
        (
            0u8..5,
            any::<bool>(),
            any::<bool>(),
            1usize..1_000_000,
            (any::<bool>(), any::<u64>()),
        ),
        (
            0usize..100,
            0usize..100,
            any::<bool>(),
            (1usize..32, 1usize..32, 1usize..32),
        ),
        (
            (any::<bool>(), (1usize..32, 1usize..32, 1usize..32)),
            any::<bool>(),
            (any::<bool>(), 1usize..64),
            1usize..1_000_000,
        ),
        (0u8..3, 0usize..32, 1usize..16),
        (
            (0u8..3, 0u32..15, any::<bool>()),
            (any::<bool>(), 0u8..5, 0u8..3),
        ),
        (
            0usize..6,
            (any::<bool>(), 1usize..512),
            (any::<bool>(), 0.5f64..5.0),
            (any::<bool>(), 1.0f64..4000.0),
            (any::<bool>(), 0.5f64..100.0),
        ),
    )
        .prop_map(
            |(
                (model, algorithm, mode, particles, (has_seed, seed)),
                (inactive, active, survival, entropy_mesh),
                ((has_mesh, mesh), spectrum, (has_cp, cp_every), max_chain),
                (policy_kind, threads, ranks),
                ((queue_mode, queue_bins_log2, fuel_split), (nested, override_kind, rod_kind)),
                (
                    device,
                    (has_cores, cores),
                    (has_clock, clock),
                    (has_dram, dram),
                    (has_link, link),
                ),
            )| {
                RunPlan {
                    model: ModelSpec {
                        name: ["test", "small", "large", "smr", "shield"][model as usize].into(),
                        // Overrides valid for every catalog entry, so the
                        // parse-time validation in `from_toml` passes.
                        overrides: match override_kind {
                            0 => ModelOverrides::default(),
                            1 => ModelOverrides {
                                assemblies: Some(1),
                                ..Default::default()
                            },
                            2 => ModelOverrides {
                                enrichment: Some(1.25),
                                ..Default::default()
                            },
                            3 => ModelOverrides {
                                half_height: Some(42.5),
                                ..Default::default()
                            },
                            _ => ModelOverrides {
                                rods: Some(match rod_kind {
                                    0 => RodPattern::None,
                                    1 => RodPattern::Center,
                                    _ => RodPattern::Checkerboard,
                                }),
                                ..Default::default()
                            },
                        },
                    },
                    traversal: if nested {
                        TraversalKind::Nested
                    } else {
                        TraversalKind::Flattened
                    },
                    algorithm: if algorithm {
                        Algorithm::History
                    } else {
                        Algorithm::EventBanking
                    },
                    mode: if mode {
                        RunMode::Eigenvalue
                    } else {
                        RunMode::FixedSource
                    },
                    particles,
                    inactive,
                    active,
                    seed: has_seed.then_some(seed),
                    survival,
                    entropy_mesh,
                    mesh_tally: has_mesh.then_some(mesh),
                    spectrum,
                    checkpoint_every: has_cp.then_some(cp_every),
                    max_chain,
                    policy: match policy_kind {
                        0 => PolicySpec::Serial,
                        1 => PolicySpec::Threaded { threads },
                        _ => PolicySpec::Distributed { ranks },
                    },
                    queueing: QueueingConfig {
                        mode: match queue_mode {
                            0 => QueueingMode::Off,
                            1 => QueueingMode::Material,
                            _ => QueueingMode::MaterialEnergy,
                        },
                        // Power of two, as `validate` demands of TOML input.
                        energy_bins: 1usize << queue_bins_log2,
                        fuel_split,
                    },
                    // Device refs round-trip sparsely: the default name with
                    // no overrides must serialize to nothing at all, and the
                    // float overrides lean on Display's shortest-round-trip
                    // formatting for losslessness.
                    device: DeviceRef {
                        name: [
                            "host-e5-2687w",
                            "host-e5-2680",
                            "knc-7120a",
                            "knl-projection",
                            "gpu-max-1100",
                            "a100",
                        ][device]
                            .into(),
                        overrides: DeviceOverrides {
                            cores: has_cores.then_some(cores),
                            clock_ghz: has_clock.then_some(clock),
                            dram_gb_s: has_dram.then_some(dram),
                            link_gb_s: has_link.then_some(link),
                        },
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every expressible plan survives a TOML round-trip unchanged —
    /// the property `mcs run --plan` relies on for bit-identical replay.
    #[test]
    fn run_plan_toml_round_trip_is_lossless(plan in arb_plan()) {
        let text = plan.to_toml();
        let back = RunPlan::from_toml(&text)
            .unwrap_or_else(|e| panic!("unparseable plan:\n{text}\n{e}"));
        prop_assert_eq!(&plan, &back, "round-trip changed the plan:\n{}", text);
        // Serialization is deterministic: a second trip is a fixed point.
        prop_assert_eq!(text, back.to_toml());
    }
}
