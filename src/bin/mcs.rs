//! `mcs` — command-line driver for the unified transport engine.
//!
//! ```text
//! mcs run    --plan FILE.toml [--dry-run]
//! mcs run    [--model NAME] [--particles N] [--inactive I]
//!            [--active A] [--mode history|event] [--survival]
//!            [--traversal flattened|nested]
//!            [--assemblies N] [--enrichment F] [--rods PATTERN]
//!            [--half-height CM]
//!            [--mesh NX,NY,NZ] [--spectrum FILE.csv]
//!            [--policy serial|threaded:N|distributed:N]
//!            [--queueing off|material|material+energy] [--queue-bins N]
//!            [--fuel-split] [--statepoint FILE] [--resume FILE]
//!            [--device NAME] [--device-cores N] [--device-clock GHZ]
//!            [--device-dram GB_S] [--device-link GB_S]
//! mcs models
//! mcs devices
//! mcs info   [--model NAME]
//! mcs plot   [--model NAME] [--width N] [--z Z]
//! mcs fixed  [--model NAME] [--particles N]
//! mcs serve  [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//! ```
//!
//! `NAME` is a model-catalog entry (`mcs models` lists them); `--device`
//! names a device-catalog entry (`mcs devices` lists them) whose analytic
//! machine model prices the run — physics always executes on the host,
//! bit-identically, whatever device is selected. Every run
//! is a [`RunPlan`] executed by `mcs_core::engine::run` under an
//! execution policy; the flag form builds the plan on the fly, the
//! `--plan` form loads a TOML plan file and replays it bit-identically.
//!
//! Examples:
//!
//! ```sh
//! mcs run --model small --particles 5000 --inactive 5 --active 10
//! mcs run --model smr --rods checkerboard --enrichment 1.1
//! mcs run --model test --mode event --survival --mesh 17,17,4
//! mcs run --model shield --traversal nested
//! mcs run --plan plan.toml --dry-run         # resolve + print, no transport
//! mcs run --model test --statepoint cp.bin   # save after the run plan
//! mcs run --model test --resume cp.bin       # continue bit-exactly
//! ```

use std::process::ExitCode;

use mcs::cluster::DistributedPolicy;
use mcs::core::engine::{
    self, Algorithm, BatchObserver, BatchProgress, DeviceRef, ExecutionPolicy, ModelOverrides,
    ModelSpec, PolicySpec, RunMode, RunOutput, RunPlan, RunReport,
};
use mcs::core::statepoint::Statepoint;
use mcs::core::{catalog, Problem, QueueingConfig, QueueingMode, RodPattern, TraversalKind};
use mcs::device::catalog as devices;
use mcs::serve::scheduler::ServeConfig;

struct Args {
    command: String,
    model: String,
    overrides: ModelOverrides,
    traversal: TraversalKind,
    particles: usize,
    inactive: usize,
    active: usize,
    algorithm: Algorithm,
    survival: bool,
    mesh: Option<(usize, usize, usize)>,
    spectrum: Option<String>,
    statepoint: Option<String>,
    resume: Option<String>,
    policy: PolicySpec,
    queueing: QueueingConfig,
    device: DeviceRef,
    plan: Option<String>,
    dry_run: bool,
    width: usize,
    z: f64,
    addr: String,
    serve: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: mcs run --plan FILE.toml [--dry-run]\n\
         \x20      mcs <run|info|plot|fixed> [--model NAME] [--particles N]\n\
         \x20          [--inactive I] [--active A] [--mode history|event]\n\
         \x20          [--survival] [--traversal flattened|nested]\n\
         \x20          [--assemblies N] [--enrichment F]\n\
         \x20          [--rods none|center|checkerboard] [--half-height CM]\n\
         \x20          [--mesh NX,NY,NZ] [--spectrum FILE.csv]\n\
         \x20          [--policy serial|threaded:N|distributed:N]\n\
         \x20          [--queueing off|material|material+energy] [--queue-bins N]\n\
         \x20          [--fuel-split] [--statepoint FILE] [--resume FILE]\n\
         \x20      mcs models\n\
         \x20      mcs serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]\n\
         model catalog: {}",
        catalog::names_joined()
    );
    std::process::exit(2);
}

fn parse_policy(raw: &str) -> PolicySpec {
    match raw.split_once(':') {
        None => match raw {
            "serial" => PolicySpec::Serial,
            "threaded" => PolicySpec::Threaded { threads: 0 },
            _ => usage(),
        },
        Some((kind, n)) => {
            let n: usize = n.parse().unwrap_or_else(|_| usage());
            match kind {
                "threaded" => PolicySpec::Threaded { threads: n },
                "distributed" => PolicySpec::Distributed { ranks: n },
                _ => usage(),
            }
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        model: "test".into(),
        overrides: ModelOverrides::default(),
        traversal: TraversalKind::default(),
        particles: 2_000,
        inactive: 3,
        active: 5,
        algorithm: Algorithm::History,
        survival: false,
        mesh: None,
        spectrum: None,
        statepoint: None,
        resume: None,
        policy: PolicySpec::Threaded { threads: 0 },
        queueing: QueueingConfig::default(),
        device: DeviceRef::default(),
        plan: None,
        dry_run: false,
        width: 80,
        z: 0.0,
        addr: "127.0.0.1:7171".into(),
        serve: ServeConfig::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    args.command = argv[0].clone();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => args.model = value(&mut i),
            "--traversal" => {
                args.traversal = TraversalKind::from_name(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--assemblies" => {
                args.overrides.assemblies = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--enrichment" => {
                args.overrides.enrichment = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--rods" => {
                args.overrides.rods =
                    Some(RodPattern::from_name(&value(&mut i)).unwrap_or_else(|| usage()))
            }
            "--half-height" => {
                args.overrides.half_height = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--particles" => args.particles = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--inactive" => args.inactive = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--active" => args.active = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                args.algorithm = match value(&mut i).as_str() {
                    "history" => Algorithm::History,
                    "event" => Algorithm::EventBanking,
                    _ => usage(),
                }
            }
            "--survival" => args.survival = true,
            "--mesh" => {
                let v = value(&mut i);
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|p| p.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parts.len() != 3 {
                    usage();
                }
                args.mesh = Some((parts[0], parts[1], parts[2]));
            }
            "--spectrum" => args.spectrum = Some(value(&mut i)),
            "--statepoint" => args.statepoint = Some(value(&mut i)),
            "--resume" => args.resume = Some(value(&mut i)),
            "--policy" => args.policy = parse_policy(&value(&mut i)),
            "--queueing" => {
                args.queueing.mode =
                    QueueingMode::from_name(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--queue-bins" => {
                args.queueing.energy_bins = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fuel-split" => args.queueing.fuel_split = true,
            "--device" => args.device.name = value(&mut i),
            "--device-cores" => {
                args.device.overrides.cores =
                    Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--device-clock" => {
                args.device.overrides.clock_ghz =
                    Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--device-dram" => {
                args.device.overrides.dram_gb_s =
                    Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--device-link" => {
                args.device.overrides.link_gb_s =
                    Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--plan" => args.plan = Some(value(&mut i)),
            "--addr" => args.addr = value(&mut i),
            "--workers" => args.serve.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => {
                args.serve.queue_cap = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--cache-cap" => {
                args.serve.cache_cap = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--dry-run" => args.dry_run = true,
            "--width" => args.width = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--z" => args.z = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    if let Err(e) = args.queueing.validate() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    // The plan parser carries device names as data (mcs-core cannot see
    // the catalog); the CLI is where a bad name or override fails fast.
    if let Err(e) = devices::resolve(&args.device) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    args
}

/// Resolve `--model` + override flags to a [`ModelSpec`], validating the
/// name and the override values against the catalog up front.
fn model_spec(args: &Args) -> ModelSpec {
    let spec = ModelSpec {
        name: args.model.clone(),
        overrides: args.overrides,
    };
    if let Err(e) = catalog::config_for(&spec) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    spec
}

/// The plan the flag form of `mcs run`/`mcs fixed` describes.
fn plan_from_args(args: &Args, mode: RunMode) -> RunPlan {
    RunPlan {
        model: model_spec(args),
        traversal: args.traversal,
        algorithm: args.algorithm,
        mode,
        particles: args.particles,
        inactive: args.inactive,
        active: args.active,
        survival: args.survival,
        mesh_tally: args.mesh,
        spectrum: args.spectrum.is_some(),
        policy: args.policy,
        queueing: args.queueing,
        device: args.device.clone(),
        ..RunPlan::default()
    }
}

/// Instantiate the execution policy a spec describes. The CLI links
/// `mcs-cluster`, so unlike `engine::policy_for` it can also build the
/// distributed policy.
fn build_policy(spec: PolicySpec) -> Box<dyn ExecutionPolicy> {
    match spec {
        PolicySpec::Distributed { ranks } => Box::new(DistributedPolicy::new(ranks)),
        other => engine::policy_for(other),
    }
}

/// List the model catalog: names, descriptions, libraries.
fn cmd_models() {
    println!("model catalog ({} entries):", catalog::NAMES.len());
    for (name, desc) in catalog::NAMES.iter().zip(catalog::DESCRIPTIONS.iter()) {
        println!("  {name:<8} {desc}");
    }
    println!(
        "\noverride flags: --assemblies N, --enrichment F, --rods none|center|checkerboard,\n\
         \x20               --half-height CM; lookup treatment: --traversal flattened|nested"
    );
}

/// List the device catalog: per-entry structure plus the modeled rate
/// on the reference workload under the entry's default transport, with
/// the calibration ratio against the published rate for fitted entries.
fn cmd_devices() {
    println!("device catalog ({} entries):", devices::NAMES.len());
    println!(
        "  {:<14} {:<11} {:>5} {:>6} {:>8} {:>12}  calibration",
        "name", "class", "cores", "GHz", "GB/s", "rate(n/s)"
    );
    for dev in devices::all() {
        let rate = dev.modeled_native_rate(dev.default_transport());
        let calib = match dev.calibration_ratio() {
            Some(r) => format!("{r:.2}x published"),
            None => "paper-exact".to_string(),
        };
        println!(
            "  {:<14} {:<11} {:>5} {:>6.2} {:>8.0} {:>12.0}  {calib}",
            dev.id,
            dev.class.name(),
            dev.machine.cores,
            dev.machine.clock_ghz,
            dev.machine.dram_gb_s,
            rate
        );
    }
    println!();
    for dev in devices::all() {
        println!("  {:<14} {}", dev.id, dev.description);
    }
    println!(
        "\noverride flags: --device-cores N, --device-clock GHZ, --device-dram GB_S,\n\
         \x20               --device-link GB_S (scales both PCIe/fabric bandwidths)"
    );
}

fn cmd_info(args: &Args) {
    let plan = plan_from_args(args, RunMode::Eigenvalue);
    let problem = plan.build_problem();
    println!("model:          {}", plan.model.spec_string());
    println!("traversal:      {}", plan.traversal.name());
    println!(
        "nuclides:       {} ({} fuel)",
        problem.xs.lib().len(),
        problem.xs.lib().n_fuel
    );
    println!(
        "grid points:    {} ({})",
        problem.xs.search_points(),
        problem.xs.backend_kind().name()
    );
    println!(
        "grid size:      {:.1} MB index + {:.1} MB pointwise",
        problem.xs.index_bytes() as f64 / 1e6,
        problem.xs.data_bytes() as f64 / 1e6
    );
    println!(
        "geometry:       {} cells, {} surfaces, {} lattices",
        problem.geometry.cells.len(),
        problem.geometry.surfaces.len(),
        problem.geometry.lattices.len()
    );
    let (lo, hi) = problem.geometry.bounds;
    println!(
        "bounds:         [{:.1},{:.1}] x [{:.1},{:.1}] x [{:.1},{:.1}] cm",
        lo.x, hi.x, lo.y, hi.y, lo.z, hi.z
    );
    println!(
        "physics:        sab={} urr={} free_gas={} treatment={:?}",
        problem.physics.sab.is_some(),
        !problem.physics.urr.is_empty(),
        problem.physics.free_gas,
        problem.treatment
    );
}

/// Streams the per-batch table as batches complete, through the
/// engine's [`BatchObserver`] seam — the run is visible while it
/// executes instead of being replayed from the finished report.
#[derive(Default)]
struct LiveBatchPrinter {
    header_printed: bool,
}

impl BatchObserver for LiveBatchPrinter {
    fn on_batch(&mut self, progress: BatchProgress<'_>) {
        if !self.header_printed {
            self.header_printed = true;
            println!(
                "{:>6} {:>9} {:>10} {:>9} {:>10}",
                "batch", "kind", "k_track", "entropy", "rate(n/s)"
            );
        }
        let b = progress.batch;
        println!(
            "{:>6} {:>9} {:>10.5} {:>9.3} {:>10.0}",
            b.index,
            if b.active { "active" } else { "inactive" },
            b.k_track,
            b.entropy,
            b.rate
        );
    }

    fn on_checkpoint(&mut self, statepoint: &Statepoint) {
        println!(
            "{:>6} {:>9} checkpoint after batch {}",
            "", "", statepoint.completed_batches
        );
    }
}

/// Post-run summary (the batch table already streamed live).
fn print_report(report: &RunReport, spectrum_path: Option<&str>) {
    let result = &report.result;
    println!("\nk-effective = {:.5} ± {:.5}", result.k_mean, result.k_std);
    let t = &result.tallies;
    println!(
        "tallies: {} segments, {} collisions, {} absorptions, {} fissions, {} leaks",
        t.segments, t.collisions, t.absorptions, t.fissions, t.leaks
    );

    if let Some(stats) = &result.mesh_stats {
        let floor = stats.means().iter().sum::<f64>() / stats.spec.n_cells() as f64 * 0.1;
        println!(
            "mesh tally: {} cells, max relative error {:.2}% (cells above 10% of mean)",
            stats.spec.n_cells(),
            stats.max_relative_error(floor) * 100.0
        );
    }

    if !report.completed {
        println!(
            "RUN INCOMPLETE: {}",
            report.halt_reason.as_deref().unwrap_or("policy halt")
        );
    }

    if let Some(spectrum) = &report.spectrum {
        match spectrum_path {
            Some(path) => {
                let mut out = String::from("energy_mev,flux_per_lethargy\n");
                for (c, v) in spectrum.bin_centers().iter().zip(spectrum.per_lethargy()) {
                    out.push_str(&format!("{c:.6e},{v:.6e}\n"));
                }
                std::fs::write(path, out).expect("write spectrum csv");
                println!("wrote spectrum to {path}");
            }
            None => println!(
                "spectrum pass: {} bins, total weighted track {:.4e}",
                spectrum.bins.len(),
                spectrum.total()
            ),
        }
    }
}

fn print_fixed(r: &mcs::core::fixed_source::FixedSourceResult) {
    let t = &r.tallies;
    println!(
        "histories: {} source + {} progeny = {} total",
        r.source_particles, r.progeny, t.n_particles
    );
    println!("net multiplication M = {:.4}", r.multiplication());
    println!(
        "implied k = 1 - 1/M = {:.4}",
        1.0 - 1.0 / r.multiplication()
    );
    println!(
        "tallies: {} collisions, {} absorptions, {} fissions, {} leaks",
        t.collisions, t.absorptions, t.fissions, t.leaks
    );
    if r.truncated_chains > 0 {
        println!(
            "WARNING: {} chains hit the generation cap (system near or above critical)",
            r.truncated_chains
        );
    }
}

/// Execute a plan (from a file or from flags) and print the outcome.
fn execute_plan(plan: &RunPlan, args: &Args) {
    let problem = plan.build_problem();
    let mut policy = build_policy(plan.policy);

    if let Some(path) = &args.resume {
        let sp = Statepoint::load(path).unwrap_or_else(|e| {
            eprintln!("error: cannot load statepoint {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "resuming from {path} (after batch {})",
            sp.completed_batches
        );
        let mut printer = LiveBatchPrinter::default();
        let report = engine::resume_with_problem_observed(
            &problem,
            plan,
            policy.as_mut(),
            &sp,
            &mut printer,
        );
        print_report(&report, args.spectrum.as_deref());
        return;
    }

    let mut printer = LiveBatchPrinter::default();
    match engine::run_with_problem_observed(&problem, plan, policy.as_mut(), &mut printer) {
        RunOutput::Eigenvalue(report) => {
            if let Some(path) = &args.statepoint {
                report.statepoint.save(path).expect("write statepoint");
                println!(
                    "wrote statepoint to {path} (after batch {})",
                    report.statepoint.completed_batches
                );
            }
            print_report(&report, args.spectrum.as_deref());
        }
        RunOutput::FixedSource(r) => print_fixed(&r),
    }
}

fn cmd_run(args: &Args) {
    let plan = match &args.plan {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read plan {path}: {e}");
                std::process::exit(1);
            });
            RunPlan::from_toml(&text).unwrap_or_else(|e| {
                eprintln!("error: invalid plan {path}: {e}");
                std::process::exit(1);
            })
        }
        None => plan_from_args(args, RunMode::Eigenvalue),
    };

    if args.dry_run {
        // Summary to stderr, plan TOML alone to stdout, so
        // `mcs run ... --dry-run > plan.toml` writes a loadable plan.
        eprint!("{}", plan.describe());
        print!("{}", plan.to_toml());
        return;
    }
    execute_plan(&plan, args);
}

/// ASCII material map of a z-slice through the geometry (OpenMC's `plot`
/// in spirit): `.` water, `#` fuel, `:` clad, space = outside.
fn cmd_plot(args: &Args) {
    let problem: Problem = plan_from_args(args, RunMode::Eigenvalue).build_problem();
    let (lo, hi) = problem.geometry.bounds;
    let w = args.width.max(10);
    let aspect = (hi.y - lo.y) / (hi.x - lo.x);
    let h = ((w as f64 * aspect) / 2.0).round() as usize; // terminal cells ~1:2
    println!(
        "z = {} slice, {:.1} x {:.1} cm ({}x{} chars):",
        args.z,
        hi.x - lo.x,
        hi.y - lo.y,
        w,
        h
    );
    for row in 0..h {
        let y = hi.y - (row as f64 + 0.5) / h as f64 * (hi.y - lo.y);
        let mut line = String::with_capacity(w);
        for col in 0..w {
            let x = lo.x + (col as f64 + 0.5) / w as f64 * (hi.x - lo.x);
            let ch = match problem
                .find(mcs::geom::Vec3::new(x, y, args.z))
                .map(|c| problem.materials[c.material as usize].name.as_str())
            {
                Some("fuel") => '#',
                Some("clad") => ':',
                Some("water") => '.',
                Some("absorber") => 'X',
                Some(_) => '?',
                None => ' ',
            };
            line.push(ch);
        }
        println!("{line}");
    }
    println!("legend: '#' fuel, ':' clad, '.' water, 'X' absorber");
}

/// Fixed-source run: external Watt source in fuel, full fission chains.
fn cmd_fixed(args: &Args) {
    let plan = plan_from_args(args, RunMode::FixedSource);
    println!(
        "fixed-source run: {} source particles, full fission chains...",
        args.particles
    );
    execute_plan(&plan, args);
}

/// Long-running plan-execution service (see `mcs::serve`): hash-keyed
/// result cache, in-flight dedupe, bounded prioritized scheduling.
fn cmd_serve(args: &Args) {
    if let Err(e) = mcs::serve::server::serve_forever(args.addr.as_str(), args.serve) {
        eprintln!("error: cannot serve on {}: {e}", args.addr);
        std::process::exit(1);
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "models" => cmd_models(),
        "devices" => cmd_devices(),
        "info" => cmd_info(&args),
        "plot" => cmd_plot(&args),
        "fixed" => cmd_fixed(&args),
        "serve" => cmd_serve(&args),
        _ => usage(),
    }
    ExitCode::SUCCESS
}
