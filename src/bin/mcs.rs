//! `mcs` — command-line driver for the transport engine.
//!
//! ```text
//! mcs run   [--model test|small|large] [--particles N] [--inactive I]
//!           [--active A] [--mode history|event] [--survival]
//!           [--mesh NX,NY,NZ] [--spectrum FILE.csv]
//!           [--statepoint FILE] [--resume FILE]
//! mcs info  [--model test|small|large]
//! mcs plot  [--model test|small|large] [--width N] [--z Z]
//! mcs fixed [--model test|small|large] [--particles N]
//! ```
//!
//! Examples:
//!
//! ```sh
//! mcs run --model small --particles 5000 --inactive 5 --active 10
//! mcs run --model test --mode event --survival --mesh 17,17,4
//! mcs run --model test --statepoint cp.bin        # save after the run plan
//! mcs run --model test --resume cp.bin            # continue bit-exactly
//! ```

use std::process::ExitCode;

use mcs::core::eigenvalue::{run_eigenvalue, EigenvalueSettings, TransportMode};
use mcs::core::history::{batch_streams, run_histories_spectrum};
use mcs::core::physics::AbsorptionTreatment;
use mcs::core::problem::{HmModel, ProblemConfig};
use mcs::core::statepoint::{resume_eigenvalue, run_eigenvalue_checkpointed, Statepoint};
use mcs::core::{MeshSpec, Problem};

struct Args {
    command: String,
    model: String,
    particles: usize,
    inactive: usize,
    active: usize,
    mode: TransportMode,
    survival: bool,
    mesh: Option<(usize, usize, usize)>,
    spectrum: Option<String>,
    statepoint: Option<String>,
    resume: Option<String>,
    width: usize,
    z: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: mcs <run|info|plot|fixed> [--model test|small|large] [--particles N]\n\
         \x20          [--inactive I] [--active A] [--mode history|event]\n\
         \x20          [--survival] [--mesh NX,NY,NZ] [--spectrum FILE.csv]\n\
         \x20          [--statepoint FILE] [--resume FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        model: "test".into(),
        particles: 2_000,
        inactive: 3,
        active: 5,
        mode: TransportMode::History,
        survival: false,
        mesh: None,
        spectrum: None,
        statepoint: None,
        resume: None,
        width: 80,
        z: 0.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    args.command = argv[0].clone();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => args.model = value(&mut i),
            "--particles" => args.particles = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--inactive" => args.inactive = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--active" => args.active = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                args.mode = match value(&mut i).as_str() {
                    "history" => TransportMode::History,
                    "event" => TransportMode::Event,
                    _ => usage(),
                }
            }
            "--survival" => args.survival = true,
            "--mesh" => {
                let v = value(&mut i);
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|p| p.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parts.len() != 3 {
                    usage();
                }
                args.mesh = Some((parts[0], parts[1], parts[2]));
            }
            "--spectrum" => args.spectrum = Some(value(&mut i)),
            "--statepoint" => args.statepoint = Some(value(&mut i)),
            "--resume" => args.resume = Some(value(&mut i)),
            "--width" => args.width = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--z" => args.z = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn build_problem(args: &Args) -> Problem {
    let mut problem = match args.model.as_str() {
        "test" => Problem::test_small(),
        "small" => Problem::hm(HmModel::Small, &ProblemConfig::default()),
        "large" => Problem::hm(HmModel::Large, &ProblemConfig::default()),
        _ => usage(),
    };
    if args.survival {
        problem.treatment = AbsorptionTreatment::survival_default();
    }
    problem
}

fn cmd_info(args: &Args) {
    let problem = build_problem(args);
    println!("model:          {}", args.model);
    println!(
        "nuclides:       {} ({} fuel)",
        problem.xs.lib().len(),
        problem.xs.lib().n_fuel
    );
    println!(
        "grid points:    {} ({})",
        problem.xs.search_points(),
        problem.xs.backend_kind().name()
    );
    println!(
        "grid size:      {:.1} MB index + {:.1} MB pointwise",
        problem.xs.index_bytes() as f64 / 1e6,
        problem.xs.data_bytes() as f64 / 1e6
    );
    println!(
        "geometry:       {} cells, {} surfaces, {} lattices",
        problem.geometry.cells.len(),
        problem.geometry.surfaces.len(),
        problem.geometry.lattices.len()
    );
    let (lo, hi) = problem.geometry.bounds;
    println!(
        "bounds:         [{:.1},{:.1}] x [{:.1},{:.1}] x [{:.1},{:.1}] cm",
        lo.x, hi.x, lo.y, hi.y, lo.z, hi.z
    );
    println!(
        "physics:        sab={} urr={} free_gas={} treatment={:?}",
        problem.physics.sab.is_some(),
        !problem.physics.urr.is_empty(),
        problem.physics.free_gas,
        problem.treatment
    );
}

fn cmd_run(args: &Args) {
    let problem = build_problem(args);
    let settings = EigenvalueSettings {
        particles: args.particles,
        inactive: args.inactive,
        active: args.active,
        mode: args.mode,
        entropy_mesh: (8, 8, 4),
        mesh_tally: args
            .mesh
            .map(|(nx, ny, nz)| MeshSpec::covering(problem.geometry.bounds, nx, ny, nz)),
    };

    let result = if let Some(path) = &args.resume {
        let sp = Statepoint::load(path).unwrap_or_else(|e| {
            eprintln!("error: cannot load statepoint {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "resuming from {path} (after batch {})",
            sp.completed_batches
        );
        resume_eigenvalue(&problem, &settings, &sp)
    } else if let Some(path) = &args.statepoint {
        // Checkpointing run: same physics as run_eigenvalue, plus a
        // statepoint written at the end of the plan.
        let total = settings.inactive + settings.active;
        let (batches, sp) = run_eigenvalue_checkpointed(&problem, &settings, total);
        sp.save(path).expect("write statepoint");
        println!(
            "wrote statepoint to {path} (after batch {})",
            sp.completed_batches
        );
        summarize(batches, &sp, &settings)
    } else {
        run_eigenvalue(&problem, &settings)
    };

    println!(
        "{:>6} {:>9} {:>10} {:>9} {:>10}",
        "batch", "kind", "k_track", "entropy", "rate(n/s)"
    );
    for b in &result.batches {
        println!(
            "{:>6} {:>9} {:>10.5} {:>9.3} {:>10.0}",
            b.index,
            if b.active { "active" } else { "inactive" },
            b.k_track,
            b.entropy,
            b.rate
        );
    }
    println!("\nk-effective = {:.5} ± {:.5}", result.k_mean, result.k_std);
    let t = &result.tallies;
    println!(
        "tallies: {} segments, {} collisions, {} absorptions, {} fissions, {} leaks",
        t.segments, t.collisions, t.absorptions, t.fissions, t.leaks
    );

    if let Some(stats) = &result.mesh_stats {
        let floor = stats.means().iter().sum::<f64>() / stats.spec.n_cells() as f64 * 0.1;
        println!(
            "mesh tally: {} cells, max relative error {:.2}% (cells above 10% of mean)",
            stats.spec.n_cells(),
            stats.max_relative_error(floor) * 100.0
        );
    }

    if let Some(path) = &args.spectrum {
        // One dedicated batch for the spectrum, from the converged source.
        let sources = problem.sample_initial_source(args.particles, 0);
        let streams = batch_streams(problem.seed, 0, args.particles);
        let (_, spectrum) = run_histories_spectrum(&problem, &sources, &streams);
        let mut out = String::from("energy_mev,flux_per_lethargy\n");
        for (c, v) in spectrum.bin_centers().iter().zip(spectrum.per_lethargy()) {
            out.push_str(&format!("{c:.6e},{v:.6e}\n"));
        }
        std::fs::write(path, out).expect("write spectrum csv");
        println!("wrote spectrum to {path}");
    }
}

/// Build a result summary from a checkpointed run's batch records.
fn summarize(
    batches: Vec<mcs::core::eigenvalue::BatchResult>,
    sp: &Statepoint,
    settings: &EigenvalueSettings,
) -> mcs::core::eigenvalue::EigenvalueResult {
    let active_ks: Vec<f64> = sp
        .k_history
        .iter()
        .enumerate()
        .filter(|(i, _)| *i >= settings.inactive)
        .map(|(_, &k)| k)
        .collect();
    let k_mean = active_ks.iter().sum::<f64>() / active_ks.len().max(1) as f64;
    let k_std = if active_ks.len() > 1 {
        let var = active_ks
            .iter()
            .map(|k| (k - k_mean) * (k - k_mean))
            .sum::<f64>()
            / (active_ks.len() - 1) as f64;
        (var / active_ks.len() as f64).sqrt()
    } else {
        0.0
    };
    mcs::core::eigenvalue::EigenvalueResult {
        batches,
        k_mean,
        k_std,
        tallies: sp.tallies,
        mesh: None,
        mesh_stats: None,
        event_stats: None,
        total_time: std::time::Duration::ZERO,
    }
}

/// ASCII material map of a z-slice through the geometry (OpenMC's `plot`
/// in spirit): `.` water, `#` fuel, `:` clad, space = outside.
fn cmd_plot(args: &Args) {
    let problem = build_problem(args);
    let (lo, hi) = problem.geometry.bounds;
    let w = args.width.max(10);
    let aspect = (hi.y - lo.y) / (hi.x - lo.x);
    let h = ((w as f64 * aspect) / 2.0).round() as usize; // terminal cells ~1:2
    println!(
        "z = {} slice, {:.1} x {:.1} cm ({}x{} chars):",
        args.z,
        hi.x - lo.x,
        hi.y - lo.y,
        w,
        h
    );
    for row in 0..h {
        let y = hi.y - (row as f64 + 0.5) / h as f64 * (hi.y - lo.y);
        let mut line = String::with_capacity(w);
        for col in 0..w {
            let x = lo.x + (col as f64 + 0.5) / w as f64 * (hi.x - lo.x);
            let ch = match problem
                .geometry
                .find(mcs::geom::Vec3::new(x, y, args.z))
                .map(|c| c.material)
            {
                Some(0) => '#',
                Some(1) => ':',
                Some(2) => '.',
                Some(_) => '?',
                None => ' ',
            };
            line.push(ch);
        }
        println!("{line}");
    }
    println!("legend: '#' fuel, ':' clad, '.' water");
}

/// Fixed-source run: external Watt source in fuel, full fission chains.
fn cmd_fixed(args: &Args) {
    use mcs::core::fixed_source::{run_fixed_source, FixedSourceSettings, SourceDef};
    let problem = build_problem(args);
    let settings = FixedSourceSettings {
        particles: args.particles,
        source: SourceDef::FuelWatt,
        max_chain: 100_000,
    };
    println!(
        "fixed-source run: {} source particles, full fission chains...",
        args.particles
    );
    let r = run_fixed_source(&problem, &settings);
    let t = &r.tallies;
    println!(
        "histories: {} source + {} progeny = {} total",
        r.source_particles, r.progeny, t.n_particles
    );
    println!("net multiplication M = {:.4}", r.multiplication());
    println!(
        "implied k = 1 - 1/M = {:.4}",
        1.0 - 1.0 / r.multiplication()
    );
    println!(
        "tallies: {} collisions, {} absorptions, {} fissions, {} leaks",
        t.collisions, t.absorptions, t.fissions, t.leaks
    );
    if r.truncated_chains > 0 {
        println!(
            "WARNING: {} chains hit the generation cap (system near or above critical)",
            r.truncated_chains
        );
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "info" => cmd_info(&args),
        "plot" => cmd_plot(&args),
        "fixed" => cmd_fixed(&args),
        _ => usage(),
    }
    ExitCode::SUCCESS
}
