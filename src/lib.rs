//! # mcs — SIMD algorithms for Monte Carlo simulations of nuclear reactor cores
//!
//! A from-scratch Rust reproduction of Ozog, Malony & Siegel,
//! *"A Performance Analysis of SIMD Algorithms for Monte Carlo Simulations
//! of Nuclear Reactor Cores"* (IPPS 2015): a continuous-energy Monte Carlo
//! neutron transport engine with both **history-based** (MIMD-style) and
//! **event-based/banking** (SIMD-style) algorithms, portable SIMD kernels
//! for the hot computations, an analytic Xeon-Phi-class coprocessor model
//! with the paper's three execution modes (offload / native / symmetric),
//! and a cluster model for the distributed scaling studies.
//!
//! This facade crate re-exports the workspace libraries under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rng`] | `mcs-rng` | skip-ahead LCG, Philox streams, batched uniforms |
//! | [`simd`] | `mcs-simd` | `F32x16`/`F64x8`, vectorized `ln`/`exp`, aligned buffers |
//! | [`xs`] | `mcs-xs` | synthetic nuclide libraries, unionized grid, SoA/AoS layouts, lookup kernels |
//! | [`geom`] | `mcs-geom` | CSG + lattices, Hoogenboom–Martin full core |
//! | [`core`] | `mcs-core` | history & event transport, k-eigenvalue driver, tallies, load balancing, Table-I kernels |
//! | [`device`] | `mcs-device` | machine model, PCIe, offload/native/symmetric execution |
//! | [`cluster`] | `mcs-cluster` | strong/weak scaling with heterogeneous ranks |
//! | [`prof`] | `mcs-prof` | TAU-like instrumentation |
//! | [`multipole`] | `mcs-multipole` | windowed multipole / RSBench equivalent |
//! | [`faults`] | `mcs-faults` | seeded fault injection: rank deaths, stragglers, transfer faults |
//! | [`serve`] | `mcs-serve` | plan-execution service: canonical plan hash, result cache, dedupe, line-protocol TCP server (`mcs serve`) |
//!
//! ## Quickstart
//!
//! Every run is a declarative [`core::engine::RunPlan`] executed by the
//! unified engine under an execution policy (serial, threaded, or — via
//! `mcs::cluster::DistributedPolicy` — simulated MPI ranks):
//!
//! ```
//! use mcs::core::engine::{run, RunPlan, Serial};
//!
//! // A reduced single-assembly problem (a full H.M. core works the same
//! // way with `model: ModelSpec::large()`).
//! let plan = RunPlan {
//!     particles: 500,
//!     inactive: 2,
//!     active: 3,
//!     entropy_mesh: (4, 4, 4),
//!     ..RunPlan::default()
//! };
//! let report = run(&plan, &mut Serial::new()).into_eigenvalue();
//! assert!(report.result.k_mean > 0.0);
//! println!(
//!     "k-effective = {:.5} ± {:.5}",
//!     report.result.k_mean, report.result.k_std
//! );
//! ```
//!
//! Plans round-trip through TOML (`RunPlan::to_toml` / `from_toml`), so
//! the same run can be replayed bit-identically with `mcs run --plan`.

#![warn(missing_docs)]

pub use mcs_cluster as cluster;
pub use mcs_core as core;
pub use mcs_device as device;
pub use mcs_faults as faults;
pub use mcs_geom as geom;
pub use mcs_multipole as multipole;
pub use mcs_prof as prof;
pub use mcs_rng as rng;
pub use mcs_serve as serve;
pub use mcs_simd as simd;
pub use mcs_xs as xs;
