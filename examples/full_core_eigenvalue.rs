//! Full-core scenario: the Hoogenboom–Martin benchmark that the paper's
//! evaluation simulates — 241 assemblies, 17×17 pin lattices, the
//! 320-nuclide "H.M. Large" fuel inventory, full S(α,β)/URR physics.
//!
//! Runs a k-eigenvalue calculation, watching the Shannon entropy of the
//! fission source converge across inactive batches, then reports the
//! active-batch k and the calculation rate (the paper's central metric).
//!
//! ```sh
//! cargo run --release --example full_core_eigenvalue
//! # bigger batches:
//! MCS_PARTICLES=20000 cargo run --release --example full_core_eigenvalue
//! ```

use mcs::core::engine::{run_with_problem, ModelSpec, RunPlan, Threaded};
use mcs::core::problem::{HmModel, ProblemConfig};
use mcs::core::Problem;

fn main() {
    let particles: usize = std::env::var("MCS_PARTICLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);

    println!("building the H.M. Large problem (full core, 320 fuel nuclides)...");
    let t0 = std::time::Instant::now();
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    println!(
        "built in {:.2?}: {} nuclides, {} union-grid points, grid {:.0} MB",
        t0.elapsed(),
        problem.xs.lib().len(),
        problem.xs.search_points(),
        problem.xs.index_bytes() as f64 / 1e6
    );
    println!(
        "geometry: {} cells, {} surfaces, {} lattices; core bounds {:.1} cm across",
        problem.geometry.cells.len(),
        problem.geometry.surfaces.len(),
        problem.geometry.lattices.len(),
        problem.geometry.bounds.1.x - problem.geometry.bounds.0.x,
    );

    let plan = RunPlan {
        model: ModelSpec::large(),
        particles,
        inactive: 4,
        active: 6,
        entropy_mesh: (16, 16, 8),
        ..RunPlan::default()
    };
    println!(
        "\nrunning {} batches x {} particles (history-based)...\n",
        plan.total_batches(),
        plan.particles
    );
    let result = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;

    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "batch", "kind", "k_track", "k_coll", "k_abs", "entropy", "rate(n/s)"
    );
    for b in &result.batches {
        println!(
            "{:>6} {:>9} {:>10.5} {:>10.5} {:>10.5} {:>9.3} {:>10.0}",
            b.index,
            if b.active { "active" } else { "inactive" },
            b.k_track,
            b.k_collision,
            b.k_absorption,
            b.entropy,
            b.rate
        );
    }

    println!(
        "\nk-effective (track-length) = {:.5} ± {:.5}",
        result.k_mean, result.k_std
    );
    let t = &result.tallies;
    println!(
        "active tallies: {} collisions, {} absorptions, {} fissions, {} leaks, {:.3e} cm tracked",
        t.collisions, t.absorptions, t.fissions, t.leaks, t.track_length
    );
    println!(
        "mean calculation rate: {:.0} n/s (this host, single process)",
        result.mean_rate(true)
    );

    // Entropy should have settled: the last inactive batch within noise
    // of the active-batch mean.
    let active_h: Vec<f64> = result
        .batches
        .iter()
        .filter(|b| b.active)
        .map(|b| b.entropy)
        .collect();
    let mean_h = active_h.iter().sum::<f64>() / active_h.len() as f64;
    println!("fission-source entropy settled at {mean_h:.3} bits");
}
