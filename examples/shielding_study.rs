//! Shielding-style scenario: fixed-source mode with a leakage spectrum.
//!
//! A fast point source sits in the assembly centre; the run follows every
//! history (and its subcritical fission progeny) and tallies the energy
//! spectrum of the neutrons that escape — the observable a shielding
//! analysis cares about. Raising the soluble-boron loading hardens the
//! leak spectrum by eating the thermalized population.
//!
//! ```sh
//! cargo run --release --example shielding_study
//! ```

use mcs::core::engine::{ExecutionPolicy, Threaded};
use mcs::core::fixed_source::{FixedSourceSettings, SourceDef};
use mcs::core::Problem;
use mcs::geom::Vec3;

fn run_with_boron(boron: f64, label: &str) {
    let mut problem = Problem::test_small();
    // Override the water's B-10 loading (index 2 in hm_water).
    let water = &mut problem.materials[2];
    let b_slot = 2; // (h1, o16, b10)
    water.densities[b_slot] = boron;

    let settings = FixedSourceSettings {
        particles: 10_000,
        source: SourceDef::Point {
            pos: Vec3::new(0.63, 0.63, 0.0), // a central fuel pin
            energy: 2.0,
        },
        max_chain: 100_000,
    };
    // Custom sources go through the policy layer directly (the RunPlan
    // TOML form only describes the standard fuel-Watt source).
    let r = Threaded::ambient()
        .run_fixed_source(&problem, &settings)
        .expect("thread-local policies support fixed-source mode");
    let t = &r.tallies;
    let leak_frac = t.leaks as f64 / t.n_particles as f64;
    println!(
        "\n[{label}] B-10 = {boron:.1e} atoms/(b·cm): M = {:.3}, {} histories, leak fraction {:.3}",
        r.multiplication(),
        t.n_particles,
        leak_frac
    );

    // ASCII leak spectrum (per lethargy, coarse).
    let pl = r.leak_spectrum.per_lethargy();
    let cs = r.leak_spectrum.bin_centers();
    let max = pl.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    println!("  leak spectrum (flux/lethargy):");
    for (c, v) in cs.iter().zip(&pl).step_by(8) {
        let stars = (v / max * 40.0) as usize;
        println!("  {:9.2e} MeV |{}", c, "*".repeat(stars));
    }
    let thermal: f64 = cs
        .iter()
        .zip(&r.leak_spectrum.bins)
        .filter(|(&c, _)| c < 1e-6)
        .map(|(_, &b)| b)
        .sum();
    println!(
        "  thermal (<1 eV) share of leakage: {:.1}%",
        thermal / r.leak_spectrum.total().max(1e-300) * 100.0
    );
}

fn main() {
    println!("fixed-source shielding study: 2 MeV point source in a fuel pin");
    run_with_boron(3.0e-6, "nominal boron");
    run_with_boron(6.0e-5, "20x boron (poisoned water)");
    println!(
        "\nmore absorber → harder leak spectrum and weaker multiplication:\n\
         the thermal share of the leakage collapses while the fast\n\
         uncollided component survives."
    );
}
