//! Heterogeneous-cluster scenario: symmetric-mode load balancing and a
//! distributed scaling study — the paper's §III-B on a laptop.
//!
//! A real transport run measures the problem's per-particle structure;
//! the machine models turn that into per-rank calculation rates for a
//! host CPU and a coprocessor; then the symmetric-mode model shows what
//! static vs α-balanced particle assignment does to the aggregate rate
//! (Table III), and the cluster model runs the strong-scaling study
//! (Fig. 6) for the node composition of your choice.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use mcs::cluster::{strong_scaling, CommModel, NodeSpec};
use mcs::core::engine::{transport_batch, BatchRequest, Threaded};
use mcs::core::history::batch_streams;
use mcs::core::problem::{HmModel, ProblemConfig};
use mcs::core::Problem;
use mcs::device::native::{shape_of, NativeModel, TransportKind};
use mcs::device::{catalog, SymmetricModel};

fn main() {
    println!("measuring the H.M. Large per-particle structure...");
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let n = 2_000;
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let shape = shape_of(&problem);

    // Scale the measured counts to a production batch so fixed per-batch
    // costs amortize realistically.
    let mut t = out.tallies;
    let f = 100_000.0 / n as f64;
    t.n_particles = 100_000;
    t.segments = (t.segments as f64 * f) as u64;
    t.collisions = (t.collisions as f64 * f) as u64;
    for i in 0..8 {
        t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
        t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
    }

    let cpu = NativeModel::new(
        catalog::machine("host-e5-2687w"),
        TransportKind::HistoryScalar,
    );
    let mic = NativeModel::new(catalog::machine("knc-7120a"), TransportKind::HistoryScalar);
    let r_cpu = cpu.calc_rate(&shape, &t);
    let r_mic = mic.calc_rate(&shape, &t);
    println!(
        "rank rates: CPU {:.0} n/s, MIC {:.0} n/s  →  α = {:.2}\n",
        r_cpu,
        r_mic,
        r_cpu / r_mic
    );

    // --- symmetric mode on one node (Table III's story) ----------------
    let job = SymmetricModel::new(&[("cpu", r_cpu), ("mic0", r_mic), ("mic1", r_mic)]);
    let n_total = 100_000;
    println!("symmetric mode, CPU + 2 MICs, {n_total} particles/batch:");
    println!(
        "  even split (OpenMC default): {:>9.0} n/s",
        job.original_rate(n_total)
    );
    println!(
        "  α-balanced split (Eq. 3):    {:>9.0} n/s",
        job.balanced_rate(n_total)
    );
    println!("  ideal:                       {:>9.0} n/s", job.ideal());
    let split = job.balanced_split(n_total);
    println!(
        "  balanced assignment: cpu={}, mic0={}, mic1={}",
        split[0], split[1], split[2]
    );

    // --- strong scaling across a cluster (Fig. 6's story) --------------
    let comm = CommModel::fdr_infiniband();
    let node = NodeSpec::with_two_mics(r_cpu, r_mic);
    println!("\nstrong scaling, N = 1e7, nodes of [CPU + 2 MIC]:");
    println!(
        "{:>8} {:>14} {:>16} {:>12}",
        "nodes", "batch (s)", "rate (n/s)", "efficiency"
    );
    for p in strong_scaling(&node, &[4, 16, 64, 256, 1024], 10_000_000, &comm) {
        println!(
            "{:>8} {:>14.3} {:>16.0} {:>11.1}%",
            p.nodes,
            p.batch_time,
            p.rate,
            p.efficiency * 100.0
        );
    }
    println!(
        "\nthe tail at large node counts is Fig. 5's knee: too few particles per\n\
         rank, the MIC's effective rate collapses, and the static α split is no\n\
         longer balanced — exactly the paper's 1,024-node observation."
    );
}
