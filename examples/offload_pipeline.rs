//! Offload scenario: run the event-based (banking) engine and walk its
//! kernels through the coprocessor offload pipeline — the paper's
//! *offload execution model* (§II-B, §III-A3).
//!
//! The event transport really runs (on this host) and its instrumented
//! stage counts drive the offload cost model: how long to bank the
//! particles, ship the bank over PCIe, and compute the banked lookups on
//! the device vs recomputing them on the host.
//!
//! ```sh
//! cargo run --release --example offload_pipeline
//! ```

use mcs::core::engine::{transport_batch, Algorithm, BatchRequest, Threaded};
use mcs::core::history::batch_streams;
use mcs::core::problem::{HmModel, ProblemConfig};
use mcs::core::Problem;
use mcs::device::native::shape_of;
use mcs::device::{catalog, OffloadModel};

fn main() {
    // The paper's micro-benchmarks strip S(α,β)/URR to vectorize.
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let n = 20_000;

    println!("running event-based transport of {n} particles (H.M. Small)...");
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);
    let t0 = std::time::Instant::now();
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest {
            algorithm: Algorithm::EventBanking,
            ..BatchRequest::default()
        },
        &mut Threaded::ambient(),
    );
    let (outcome, stats) = (out.outcome, out.event_stats.expect("event-banking stats"));
    let wall = t0.elapsed();

    println!("\nevent-loop execution (measured on this host):");
    println!("  event generations:   {}", stats.iterations);
    println!("  total XS lookups:    {}", stats.lookups);
    println!("  peak bank size:      {}", stats.peak_bank);
    println!(
        "  outcome:             {} collisions, {} absorbed, {} leaked, k_track = {:.5}",
        outcome.tallies.collisions,
        outcome.tallies.absorptions,
        outcome.tallies.leaks,
        outcome.tallies.k_track_estimate()
    );
    println!(
        "  wall time:           {wall:.2?} ({:.0} n/s on this host)",
        n as f64 / wall.as_secs_f64()
    );
    println!(
        "
measured stage breakdown (this host):"
    );
    let total = stats.total_seconds();
    for (name, secs) in mcs::core::event::EventStats::STAGE_NAMES
        .iter()
        .zip(stats.stage_seconds)
    {
        println!(
            "  {:<16} {:>9.3} ms  ({:>4.1}%)",
            name,
            secs * 1e3,
            secs / total * 100.0
        );
    }

    // Price one banked-lookup round through the offload pipeline.
    let shape = shape_of(&problem);
    let model = OffloadModel::between(
        &catalog::device("host-e5-2687w").expect("default host"),
        &catalog::device("knc-7120a").expect("knc entry"),
    );
    let grid_bytes = (problem.xs.index_bytes() + problem.xs.data_bytes()) as f64;
    let b = model.breakdown(&shape, n, grid_bytes);

    println!("\noffload pipeline for one banked-lookup round of {n} particles (modeled, JLSE):");
    println!(
        "  bank on host:            {:>10.3} ms",
        b.banking_host_s * 1e3
    );
    println!(
        "  ship bank over PCIe:     {:>10.3} ms  ({:.0} MB)",
        b.transfer_bank_s * 1e3,
        b.bank_bytes / 1e6
    );
    println!(
        "  compute lookups on MIC:  {:>10.3} ms",
        b.compute_device_s * 1e3
    );
    println!(
        "  (same lookups on host):  {:>10.3} ms",
        b.compute_host_s * 1e3
    );
    println!(
        "  energy grid upload (once): {:>8.3} ms  ({:.2} GB, amortized over all batches)",
        b.transfer_grid_s * 1e3,
        b.grid_bytes / 1e9
    );

    let raw_offload = b.banking_host_s + b.transfer_bank_s + b.compute_device_s;
    println!(
        "\nun-overlapped offload round = {:.1} ms vs host recompute = {:.1} ms",
        raw_offload * 1e3,
        b.compute_host_s * 1e3
    );
    println!(
        "→ the PCIe transfer dominates (Table II's conclusion); offload pays only\n\
         when the transfer hides behind other generation work via asynchronous\n\
         transfer (§III-A3), or on a socketed successor with no PCIe hop (§V)."
    );
}
