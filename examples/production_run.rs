//! Production-workflow scenario: survival biasing, a flux mesh tally,
//! checkpoint/restart, and the distributed (executed-MPI) runtime — the
//! features a downstream user reaches for once the physics works.
//!
//! ```sh
//! cargo run --release --example production_run
//! ```

use std::sync::Arc;

use mcs::cluster::{run_distributed_eigenvalue, DistributedSettings};
use mcs::core::eigenvalue::run_eigenvalue;
use mcs::core::physics::AbsorptionTreatment;
use mcs::core::statepoint::{resume_eigenvalue, run_eigenvalue_checkpointed, Statepoint};
use mcs::core::{EigenvalueSettings, MeshSpec, Problem, TransportMode};

fn main() {
    let mut problem = Problem::test_small();
    // Variance reduction: implicit capture + Russian roulette.
    problem.treatment = AbsorptionTreatment::survival_default();

    let settings = EigenvalueSettings {
        particles: 3_000,
        inactive: 3,
        active: 5,
        mode: TransportMode::History,
        entropy_mesh: (8, 8, 4),
        // A user-defined flux mesh over the assembly, scored in active
        // batches only.
        mesh_tally: Some(MeshSpec::covering(problem.geometry.bounds, 17, 17, 4)),
    };

    // --- 1. straight-through run with survival biasing + mesh ----------
    println!("[1] survival-biased run with a 17x17x4 flux mesh:");
    let result = run_eigenvalue(&problem, &settings);
    println!(
        "    k = {:.5} ± {:.5}   ({:.1} segments/history — biased histories live long)",
        result.k_mean,
        result.k_std,
        result.tallies.segments as f64 / result.tallies.n_particles as f64
    );
    let mesh = result.mesh.as_ref().unwrap();
    let (i, j, k, v) = mesh.peak();
    println!(
        "    mesh: {:.3e} cm tracked; hottest cell ({i},{j},{k}) with {v:.3e} cm",
        mesh.total()
    );
    // Pin-power-style view: collapse the axial dimension, print one row.
    let row_j = j;
    let mut row = Vec::new();
    for ii in 0..17 {
        let mut s = 0.0;
        for kk in 0..4 {
            s += mesh.bins[(kk * 17 + row_j) * 17 + ii];
        }
        row.push(s);
    }
    let row_max = row.iter().cloned().fold(0.0f64, f64::max);
    let profile: String = row
        .iter()
        .map(|&x| {
            let t = (x / row_max * 9.0) as usize;
            char::from_digit(t as u32, 10).unwrap()
        })
        .collect();
    println!("    radial flux profile through the hot row: {profile}");

    // --- 2. checkpoint and bit-exact restart ---------------------------
    println!("\n[2] checkpoint/restart:");
    let (_, sp) = run_eigenvalue_checkpointed(&problem, &settings, 4);
    let path = std::env::temp_dir().join("mcs_production_example.statepoint");
    sp.save(&path).expect("write statepoint");
    println!(
        "    wrote {} after batch {} ({} source sites)",
        path.display(),
        sp.completed_batches,
        sp.source.len()
    );
    let sp = Statepoint::load(&path).expect("read statepoint");
    let resumed = resume_eigenvalue(&problem, &settings, &sp);
    println!(
        "    resumed k = {:.5} (straight-through k = {:.5}) — bit-exact: {}",
        resumed.k_mean,
        result.k_mean,
        resumed.k_mean == result.k_mean
    );
    assert_eq!(resumed.k_mean, result.k_mean);
    let _ = std::fs::remove_file(path);

    // --- 3. the distributed runtime -------------------------------------
    println!("\n[3] executed MPI-style runtime (4 rank threads, adaptive balancing):");
    let problem = Arc::new(Problem::test_small()); // analog for this one
    let dist = run_distributed_eigenvalue(
        &problem,
        4,
        &DistributedSettings {
            adaptive: true,
            ..DistributedSettings::simple(3_000, 2, 3)
        },
    );
    for b in &dist.batches {
        println!(
            "    batch {} assignments {:?}  k = {:.5}",
            b.index, b.assignments, b.k_track
        );
    }
    println!("    distributed k = {:.5}", dist.k_mean);
}
