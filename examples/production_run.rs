//! Production-workflow scenario: survival biasing, a flux mesh tally,
//! checkpoint/restart, and the distributed (executed-MPI) runtime — the
//! features a downstream user reaches for once the physics works.
//!
//! Every section drives the same unified engine (`mcs::core::engine`):
//! the only thing that changes between a laptop run and the simulated
//! MPI run is the [`ExecutionPolicy`] handed to it.
//!
//! ```sh
//! cargo run --release --example production_run
//! ```

use mcs::cluster::DistributedPolicy;
use mcs::core::engine::{
    resume_with_problem, run_batches, run_with_problem, PolicySpec, RunPlan, Threaded,
};
use mcs::core::physics::AbsorptionTreatment;
use mcs::core::statepoint::Statepoint;
use mcs::core::Problem;

fn main() {
    let mut problem = Problem::test_small();
    // Variance reduction: implicit capture + Russian roulette.
    problem.treatment = AbsorptionTreatment::survival_default();

    let plan = RunPlan {
        particles: 3_000,
        inactive: 3,
        active: 5,
        survival: true,
        entropy_mesh: (8, 8, 4),
        // A user-defined flux mesh over the assembly, scored in active
        // batches only.
        mesh_tally: Some((17, 17, 4)),
        ..RunPlan::default()
    };

    // --- 1. straight-through run with survival biasing + mesh ----------
    println!("[1] survival-biased run with a 17x17x4 flux mesh:");
    let result = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    println!(
        "    k = {:.5} ± {:.5}   ({:.1} segments/history — biased histories live long)",
        result.k_mean,
        result.k_std,
        result.tallies.segments as f64 / result.tallies.n_particles as f64
    );
    let mesh = result.mesh.as_ref().unwrap();
    let (i, j, k, v) = mesh.peak();
    println!(
        "    mesh: {:.3e} cm tracked; hottest cell ({i},{j},{k}) with {v:.3e} cm",
        mesh.total()
    );
    // Pin-power-style view: collapse the axial dimension, print one row.
    let row_j = j;
    let mut row = Vec::new();
    for ii in 0..17 {
        let mut s = 0.0;
        for kk in 0..4 {
            s += mesh.bins[(kk * 17 + row_j) * 17 + ii];
        }
        row.push(s);
    }
    let row_max = row.iter().cloned().fold(0.0f64, f64::max);
    let profile: String = row
        .iter()
        .map(|&x| {
            let t = (x / row_max * 9.0) as usize;
            char::from_digit(t as u32, 10).unwrap()
        })
        .collect();
    println!("    radial flux profile through the hot row: {profile}");

    // --- 2. checkpoint and bit-exact restart ---------------------------
    println!("\n[2] checkpoint/restart:");
    // Run the first 4 batches only; the report's statepoint captures the
    // source bank and k history at the stop point.
    let partial = run_batches(&problem, &plan, &mut Threaded::ambient(), 0, 4, None);
    let sp = partial.statepoint;
    let path = std::env::temp_dir().join("mcs_production_example.statepoint");
    sp.save(&path).expect("write statepoint");
    println!(
        "    wrote {} after batch {} ({} source sites)",
        path.display(),
        sp.completed_batches,
        sp.source.len()
    );
    let sp = Statepoint::load(&path).expect("read statepoint");
    let resumed = resume_with_problem(&problem, &plan, &mut Threaded::ambient(), &sp).result;
    println!(
        "    resumed k = {:.5} (straight-through k = {:.5}) — bit-exact: {}",
        resumed.k_mean,
        result.k_mean,
        resumed.k_mean == result.k_mean
    );
    assert_eq!(resumed.k_mean, result.k_mean);
    let _ = std::fs::remove_file(path);

    // --- 3. the distributed runtime -------------------------------------
    println!("\n[3] executed MPI-style runtime (4 rank threads, adaptive balancing):");
    let problem = Problem::test_small(); // analog for this one
    let plan = RunPlan {
        particles: 3_000,
        inactive: 2,
        active: 3,
        entropy_mesh: (8, 8, 4),
        policy: PolicySpec::Distributed { ranks: 4 },
        ..RunPlan::default()
    };
    let mut policy = DistributedPolicy::new(4).with_adaptive(true);
    let report = run_with_problem(&problem, &plan, &mut policy).into_eigenvalue();
    for (b, d) in report.batches.iter().zip(policy.details()) {
        println!(
            "    batch {} assignments {:?}  k = {:.5}",
            b.index, d.assignments, b.k_track
        );
    }
    println!("    distributed k = {:.5}", report.result.k_mean);
}
