//! Quickstart: build a reduced reactor problem, run a k-eigenvalue
//! calculation with both transport algorithms, and verify they agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mcs::core::eigenvalue::run_eigenvalue;
use mcs::core::{EigenvalueSettings, Problem, TransportMode};

fn main() {
    // A single fuel assembly with the tiny synthetic nuclide library —
    // small enough to run in seconds. `Problem::hm(HmModel::Large, ...)`
    // builds the full 241-assembly core with 320 fuel nuclides.
    let problem = Problem::test_small();
    println!(
        "problem: {} nuclides, {} union grid points, {} materials",
        problem.xs.lib().len(),
        problem.xs.search_points(),
        problem.n_materials()
    );

    let mut settings = EigenvalueSettings {
        particles: 2_000,
        inactive: 3,
        active: 5,
        mode: TransportMode::History,
        entropy_mesh: (8, 8, 4),
        mesh_tally: None,
    };

    // History-based transport (OpenMC's algorithm: one task per particle).
    let hist = run_eigenvalue(&problem, &settings);
    println!("\nhistory-based batches:");
    for b in &hist.batches {
        println!(
            "  batch {:>2} [{}]  k_track = {:.5}  entropy = {:.3}  rate = {:>8.0} n/s",
            b.index,
            if b.active { "active " } else { "inactive" },
            b.k_track,
            b.entropy,
            b.rate
        );
    }
    println!(
        "k-effective = {:.5} ± {:.5}  ({} total histories)",
        hist.k_mean, hist.k_std, hist.tallies.n_particles
    );

    // Event-based transport (the banking algorithm): same physics, same
    // RNG streams, staged SIMD-friendly kernels — identical trajectories.
    settings.mode = TransportMode::Event;
    let evt = run_eigenvalue(&problem, &settings);
    println!(
        "\nevent-based (banking) run: k = {:.5} ± {:.5}",
        evt.k_mean, evt.k_std
    );

    let diff = (hist.k_mean - evt.k_mean).abs();
    assert!(
        diff < 1e-9,
        "algorithms must produce identical trajectories: Δk = {diff:e}"
    );
    println!("\nhistory and event k agree to {diff:.1e} — identical particle trajectories");
}
