//! Quickstart: build a reduced reactor problem, run a k-eigenvalue
//! calculation with both transport algorithms, and verify they agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mcs::core::engine::{run_with_problem, Algorithm, RunPlan, Threaded};
use mcs::core::Problem;

fn main() {
    // A single fuel assembly with the tiny synthetic nuclide library —
    // small enough to run in seconds. `model: ModelSpec::large()` in the plan
    // builds the full 241-assembly core with 320 fuel nuclides.
    let problem = Problem::test_small();
    println!(
        "problem: {} nuclides, {} union grid points, {} materials",
        problem.xs.lib().len(),
        problem.xs.search_points(),
        problem.n_materials()
    );

    let plan = RunPlan {
        particles: 2_000,
        inactive: 3,
        active: 5,
        entropy_mesh: (8, 8, 4),
        ..RunPlan::default()
    };

    // History-based transport (OpenMC's algorithm: one task per particle).
    let hist = run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    println!("\nhistory-based batches:");
    for b in &hist.batches {
        println!(
            "  batch {:>2} [{}]  k_track = {:.5}  entropy = {:.3}  rate = {:>8.0} n/s",
            b.index,
            if b.active { "active " } else { "inactive" },
            b.k_track,
            b.entropy,
            b.rate
        );
    }
    println!(
        "k-effective = {:.5} ± {:.5}  ({} total histories)",
        hist.k_mean, hist.k_std, hist.tallies.n_particles
    );

    // Event-based transport (the banking algorithm): same physics, same
    // RNG streams, staged SIMD-friendly kernels — identical trajectories.
    let evt_plan = RunPlan {
        algorithm: Algorithm::EventBanking,
        ..plan.clone()
    };
    let evt = run_with_problem(&problem, &evt_plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    println!(
        "\nevent-based (banking) run: k = {:.5} ± {:.5}",
        evt.k_mean, evt.k_std
    );

    let diff = (hist.k_mean - evt.k_mean).abs();
    assert!(
        diff < 1e-9,
        "algorithms must produce identical trajectories: Δk = {diff:e}"
    );
    println!("\nhistory and event k agree to {diff:.1e} — identical particle trajectories");
}
